(* A work-stealing deque specialised to the pool's job shape: every job's
   chunk indexes are known up front, so each deque is a contiguous integer
   range [top, bottom) published once and only ever consumed — the owner
   pops from [bottom] (LIFO), thieves steal from [top] (FIFO).

   This is the Chase–Lev deque minus the circular buffer: with no pushes
   after publication there is no growth, no wrap-around, and no ABA — the
   two indexes carry the whole state. Emptiness is monotone once the range
   is drained, which is what lets pool participants exit after a single
   clean all-empty scan. *)

type t = { top : int Atomic.t; bottom : int Atomic.t }

type steal_result =
  | Stolen of int
  | Empty
  | Lost

let make lo hi =
  let lo = min lo hi in
  { top = Atomic.make lo; bottom = Atomic.make hi }

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b > t then Some b
  else if b = t then begin
    (* Last element: race any thief for it by advancing [top]. Whether we
       win or lose, the deque ends in the canonical empty state
       top = bottom = t + 1. *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some b else None
  end
  else begin
    (* Already empty; restore the canonical empty state. *)
    Atomic.set d.bottom t;
    None
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else if Atomic.compare_and_set d.top t (t + 1) then Stolen t
  else Lost

let is_empty d = Atomic.get d.top >= Atomic.get d.bottom

let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)
