(** Character n-grams, their set similarities, and padding.

    n-grams serve two purposes here: Jaccard/Dice similarities as cheap
    alternative operators, and blocking keys for {!Sim_index} so that
    similarity search does not compare every pair of values (the paper
    precomputes similar pairs; blocking is what makes that precomputation
    subquadratic in practice). *)

(** [grams ~n s] is the list of [n]-grams of [s] after padding with [n−1]
    ['#'] on the left and ['$'] on the right, lowercased. A string shorter
    than [n] still yields at least one gram thanks to padding. The empty
    string yields []. *)
val grams : n:int -> string -> string list

(** [gram_set ~n s] is [grams] deduplicated. *)
val gram_set : n:int -> string -> string list

val jaccard : n:int -> string -> string -> float

val dice : n:int -> string -> string -> float
