open Dlearn_relation
open Dlearn_constraints

type system =
  | Castor_nomd
  | Castor_exact
  | Castor_clean
  | Dlearn
  | Dlearn_repaired
  | Dlearn_cfd

let name = function
  | Castor_nomd -> "Castor-NoMD"
  | Castor_exact -> "Castor-Exact"
  | Castor_clean -> "Castor-Clean"
  | Dlearn -> "DLearn"
  | Dlearn_repaired -> "DLearn-Repaired"
  | Dlearn_cfd -> "DLearn-CFD"

let all =
  [ Castor_nomd; Castor_exact; Castor_clean; Dlearn; Dlearn_repaired; Dlearn_cfd ]

let replace_relation db name fresh =
  let db' = Database.create () in
  List.iter
    (fun r ->
      if String.equal (Relation.name r) name then Database.add_relation db' fresh
      else Database.add_relation db' r)
    (Database.relations db);
  db'

let resolve_entities ~sim db (mds : Md.t list) =
  List.fold_left
    (fun db (md : Md.t) ->
      let sim = Md.effective_spec md sim in
      let left = Database.find db md.Md.left_rel in
      let right = Database.find db md.Md.right_rel in
      let ls = Relation.schema left and rs = Relation.schema right in
      let c, d = md.Md.unified in
      let pc = Schema.position ls c and pd = Schema.position rs d in
      let index =
        Dlearn_similarity.Sim_index.of_values ~measure:sim.Md.measure
          (Relation.distinct_values right pd)
      in
      let mapping : (Value.t, Value.t) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun v ->
          if not (Value.is_null v) then
            match
              Dlearn_similarity.Sim_index.query index ~km:1
                ~threshold:sim.Md.threshold (Value.as_string v)
            with
            | (best, _) :: _ -> Hashtbl.replace mapping v (Value.String best)
            | [] -> ())
        (Relation.distinct_values left pc);
      let resolved =
        Relation.map_tuples
          (fun t ->
            match Hashtbl.find_opt mapping (Tuple.get t pc) with
            | Some v -> Tuple.set t pc v
            | None -> t)
          left
      in
      replace_relation db md.Md.left_rel resolved)
    (Database.copy db) mds

let make_context system (config : Config.t) db mds cfds =
  match system with
  | Castor_nomd -> Context.create config db [] []
  | Castor_exact ->
      Context.create { config with Config.exact_matching = true } db mds []
  | Castor_clean ->
      let db' = resolve_entities ~sim:config.Config.sim db mds in
      Context.create { config with Config.exact_matching = true } db' mds []
  | Dlearn -> Context.create config db mds []
  | Dlearn_repaired ->
      let db' = Minimal_repair.repair cfds db in
      Context.create config db' mds []
  | Dlearn_cfd -> Context.create config db mds cfds
