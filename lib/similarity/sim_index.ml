open Dlearn_relation
module Obs = Dlearn_obs.Obs
module Pool = Dlearn_parallel.Pool

(* Candidate-generation counters. Unconditional (like the coverage
   counters): they are the contract the dedup/prefilter tests pin. *)
let candidates_c = Obs.counter "sim_index.candidates"
let measured_c = Obs.counter "sim_index.measured"
let pruned_c = Obs.counter "sim_index.length_pruned"

(* {2 Gram keys}

   A gram is identified by an [int] key rather than an [n]-byte string:
   for [n <= 7] the padded, lowercased window is packed 8 bits per
   character, a bijection onto the gram strings of [Ngram.gram_set] —
   the blocking behaviour is exactly the seed implementation's, without
   allocating one string per window. For [n > 7] the key is the
   structural hash of the gram string; collisions can only add
   candidates, never lose one, and scoring decides, so blocking stays
   sound. *)

let pad_left = '#'
let pad_right = '$'

let gram_keys ~n s =
  if n <= 0 then invalid_arg "Sim_index: n must be positive";
  let len = String.length s in
  if len = 0 then [||]
  else begin
    let count = len + n - 1 in
    let padded_len = len + (2 * (n - 1)) in
    let padded_char i =
      if i < n - 1 then pad_left
      else if i - (n - 1) >= len then pad_right
      else Char.lowercase_ascii (String.unsafe_get s (i - (n - 1)))
    in
    let keys = Array.make count 0 in
    if n <= 7 then begin
      (* Rolling pack: shift one character in per window. *)
      let mask = (1 lsl (8 * n)) - 1 in
      let acc = ref 0 in
      for i = 0 to padded_len - 1 do
        acc := ((!acc lsl 8) lor Char.code (padded_char i)) land mask;
        if i >= n - 1 then keys.(i - (n - 1)) <- !acc
      done
    end
    else begin
      let window = Bytes.create n in
      for w = 0 to count - 1 do
        for j = 0 to n - 1 do
          Bytes.unsafe_set window j (padded_char (w + j))
        done;
        keys.(w) <- Hashtbl.hash (Bytes.to_string window)
      done
    end;
    (* Dedup in place, preserving first-occurrence order: each distinct
       gram must appear exactly once. Quadratic in the gram count, but
       values are short strings — the scan beats sorting, and posting
       content never depends on per-value key order anyway. *)
    let uniq = ref 0 in
    for i = 0 to count - 1 do
      let k = keys.(i) in
      let j = ref 0 in
      while !j < !uniq && keys.(!j) <> k do incr j done;
      if !j = !uniq then begin
        keys.(!uniq) <- k;
        incr uniq
      end
    done;
    if !uniq = count then keys else Array.sub keys 0 !uniq
  end

(* {2 Posting tables}

   An open-addressing table from gram key to posting list, specialized
   to int keys: linear probing over power-of-two arrays, slot hash from
   a Fibonacci multiplicative mix. Compared to a generic [Hashtbl] this
   removes the [caml_hash] call and the [find_opt] option allocation
   from every posting insert and every query probe — the insert loop is
   the index build's hot path. A slot is empty iff its posting list is
   [[]] (present keys always carry at least one id). *)
module Itable = struct
  type t = {
    mutable mask : int;  (** capacity - 1; capacity is a power of two *)
    mutable count : int;
    mutable keys : int array;
    mutable vals : int list array;
  }

  (* Bits 20.. of the product: disjoint from the top bits [shard_of]
     consumes, so keys landing in one shard still spread over slots. *)
  let mix k = (k * 0x9E3779B97F4A7C1) lsr 20

  let create hint =
    let rec cap c = if c >= hint * 2 then c else cap (c * 2) in
    let capacity = cap 64 in
    {
      mask = capacity - 1;
      count = 0;
      keys = Array.make capacity 0;
      vals = Array.make capacity [];
    }

  let slot t k =
    let i = ref (mix k land t.mask) in
    while t.vals.(!i) != [] && t.keys.(!i) <> k do
      i := (!i + 1) land t.mask
    done;
    !i

  let grow t =
    let okeys = t.keys and ovals = t.vals in
    let capacity = (t.mask + 1) * 2 in
    t.mask <- capacity - 1;
    t.keys <- Array.make capacity 0;
    t.vals <- Array.make capacity [];
    Array.iteri
      (fun i ids ->
        if ids != [] then begin
          let j = slot t okeys.(i) in
          t.keys.(j) <- okeys.(i);
          t.vals.(j) <- ids
        end)
      ovals

  let install t i k ids =
    t.keys.(i) <- k;
    t.vals.(i) <- ids;
    t.count <- t.count + 1;
    (* load factor 1/2 *)
    if t.count * 2 > t.mask then grow t

  let add_posting t k id =
    let i = slot t k in
    if t.vals.(i) != [] then t.vals.(i) <- id :: t.vals.(i)
    else install t i k [ id ]

  (* Merge: put [ids] in front of whatever the key already holds. *)
  let prepend t k ids =
    let i = slot t k in
    if t.vals.(i) != [] then t.vals.(i) <- List.append ids t.vals.(i)
    else install t i k ids

  (* [] when absent — present keys always hold a non-empty list. *)
  let find t k = t.vals.(slot t k)

  let iter f t =
    Array.iteri (fun i ids -> if ids != [] then f t.keys.(i) ids) t.vals
end

(* {2 Sharding}

   Postings are partitioned by gram key into [2^shard_bits] independent
   tables, so index construction parallelizes (each shard is merged by
   one pool task) and a query only probes the shard owning each of its
   grams. The shard of a key is a pure function of the key — the top
   bits of the same multiplicative mix, nothing positional — so the
   partition is deterministic and balanced even though low key bytes
   (the last character of a gram) are heavily skewed. *)

let shard_of ~shard_bits k =
  if shard_bits = 0 then 0
  else (k * 0x9E3779B97F4A7C1) lsr (63 - shard_bits) land ((1 lsl shard_bits) - 1)

(* Shard count is a fixed function of the value count only — never of
   [jobs] — so builds at any parallelism produce identical structure. *)
let shard_bits_for nvalues =
  let rec go bits =
    if 1 lsl bits >= 32 || 1 lsl (bits + 12) >= nvalues then bits
    else go (bits + 1)
  in
  if nvalues < 4096 then 0 else go 1

type t = {
  values : string array;  (** sorted distinct *)
  lengths : int array;
  n : int;
  measure : Combined.measure;
  shard_bits : int;
  shards : Itable.t array;
      (** gram key -> posting ids, descending (consed in value order) *)
}

(* {2 Build}

   Postings are canonically stored as descending id lists — what
   consing ids in ascending value order produces. Two build strategies
   yield that same content:

   - {b direct} (sequential pool, or no spare hardware parallelism):
     one pass over the values, consing straight into the shard tables —
     the seed implementation's loop with packed keys instead of gram
     strings.
   - {b chunked} (parallel pool): values are cut into fixed 4096-value
     chunks; each chunk task builds per-shard mini-tables, then one
     merge task per shard walks the chunks in ascending order
     prepending each chunk's (descending) list — so later chunks end
     up in front, reproducing the direct order exactly. Only the merge
     copies postings; the first chunk's lists are shared.

   Chunk boundaries are fixed, the shard function is fixed, and
   [Pool.map] preserves input order, so posting content is identical
   whatever the pool size or steal interleaving — pinned by
   [postings_digest] in the tests. *)

let build_chunk = 4096

(* The chunked build only pays off when the chunk tasks actually run on
   several cores; on a host with no spare hardware parallelism the pool
   inlines every batch anyway, so chunk-and-merge would be pure
   overhead — mirror the pool's own spare-parallelism rule. The env
   knob (precedent: [DLEARN_POOL_FANOUT_NS]) lets tests force either
   strategy to pin that both produce identical content. *)
let use_chunked pool nvalues =
  match Sys.getenv_opt "DLEARN_SIM_CHUNKED" with
  | Some "always" -> true
  | Some "never" -> false
  | _ ->
      nvalues > build_chunk
      && Pool.num_domains pool > 1
      && Domain.recommended_domain_count () > 1

let build_shards pool ~shard_bits (keys_per_value : int array array) =
  let nvalues = Array.length keys_per_value in
  let shard_count = 1 lsl shard_bits in
  let table_hint = max 64 (nvalues * 4 / shard_count) in
  if not (use_chunked pool nvalues) then begin
    let shards = Array.init shard_count (fun _ -> Itable.create table_hint) in
    for i = 0 to nvalues - 1 do
      Array.iter
        (fun k -> Itable.add_posting shards.(shard_of ~shard_bits k) k i)
        keys_per_value.(i)
    done;
    shards
  end
  else begin
    let nchunks = (nvalues + build_chunk - 1) / build_chunk in
    let chunk_hint = max 64 (build_chunk * 4 / shard_count) in
    let chunk_tables =
      Pool.map pool
        (fun c ->
          let lo = c * build_chunk in
          let hi = min nvalues (lo + build_chunk) in
          let tables =
            Array.init shard_count (fun _ -> Itable.create chunk_hint)
          in
          for i = lo to hi - 1 do
            Array.iter
              (fun k -> Itable.add_posting tables.(shard_of ~shard_bits k) k i)
              keys_per_value.(i)
          done;
          tables)
        (Array.init nchunks Fun.id)
    in
    Pool.map pool
      (fun s ->
        let acc = Itable.create table_hint in
        for c = 0 to nchunks - 1 do
          Itable.iter (fun k ids -> Itable.prepend acc k ids) chunk_tables.(c).(s)
        done;
        acc)
      (Array.init shard_count Fun.id)
  end

let pool_for jobs = Pool.get (match jobs with Some j -> max 1 j | None -> 1)

let create ?(n = 3) ?(measure = Combined.default) ?jobs ?shard_bits values =
  let distinct = List.sort_uniq String.compare values in
  let values = Array.of_list distinct in
  let nvalues = Array.length values in
  let shard_bits =
    match shard_bits with
    | Some b ->
        if b < 0 || b > 8 then invalid_arg "Sim_index.create: shard_bits"
        else b
    | None -> shard_bits_for nvalues
  in
  let pool = pool_for jobs in
  Obs.span "sim_index.build" (fun () ->
      let keys_per_value = Pool.map pool (gram_keys ~n) values in
      let shards = build_shards pool ~shard_bits keys_per_value in
      let lengths = Array.map String.length values in
      { values; lengths; n; measure; shard_bits; shards })

let of_values ?n ?measure ?jobs vs =
  let strings =
    List.filter_map
      (fun v -> if Value.is_null v then None else Some (Value.as_string v))
      vs
  in
  create ?n ?measure ?jobs strings

let size t = Array.length t.values
let shard_count t = Array.length t.shards

(* {2 Length-band prefilter}

   An upper bound on the score from lengths alone; candidates whose
   bound falls strictly below the threshold are never scored. Both
   bounds are exact consequences of the measure definitions (operators
   lowercase but never change length):
   - [Paper] averages SWG (≤ 1) with length similarity min/max, so the
     score is at most [(1 + min/max) / 2];
   - [Levenshtein] distance is at least the length difference, so
     similarity is at most [1 - |la - lb| / max la lb].
   Other measures get the trivial bound 1.0 (no pruning). *)
let score_ceiling measure la lb =
  match measure with
  | Combined.Paper ->
      let mn = float_of_int (min la lb) and mx = float_of_int (max la lb) in
      let ratio = if mx = 0.0 then 1.0 else mn /. mx in
      (1.0 +. ratio) /. 2.0
  | Combined.Levenshtein ->
      let mx = max la lb in
      if mx = 0 then 1.0
      else 1.0 -. (float_of_int (abs (la - lb)) /. float_of_int mx)
  | Combined.Smith_waterman | Combined.Jaro_winkler | Combined.Ngram_jaccard _
    ->
      1.0

let take km xs =
  let rec go i = function
    | [] -> []
    | _ when i >= km -> []
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 xs

let rank_and_cut ?(prefilter = true) t ~km ~threshold s candidate_ids =
  let lq = String.length s in
  let scored =
    List.filter_map
      (fun i ->
        if prefilter && score_ceiling t.measure lq t.lengths.(i) < threshold
        then begin
          Obs.incr pruned_c;
          None
        end
        else begin
          Obs.incr measured_c;
          let v = t.values.(i) in
          let score = Combined.similarity ~measure:t.measure s v in
          if score >= threshold then Some (v, score) else None
        end)
      candidate_ids
  in
  let sorted =
    List.sort
      (fun (v1, s1) (v2, s2) ->
        match Float.compare s2 s1 with
        | 0 -> String.compare v1 v2
        | c -> c)
      scored
  in
  take km sorted

let candidate_ids t s =
  let seen = Hashtbl.create 64 in
  let candidates = ref [] in
  Array.iter
    (fun k ->
      List.iter
        (fun i ->
          if not (Hashtbl.mem seen i) then begin
            Hashtbl.add seen i ();
            candidates := i :: !candidates
          end)
        (Itable.find t.shards.(shard_of ~shard_bits:t.shard_bits k) k))
    (gram_keys ~n:t.n s);
  !candidates

let query t ~km ~threshold s =
  let candidates = candidate_ids t s in
  Obs.add candidates_c (List.length candidates);
  rank_and_cut t ~km ~threshold s candidates

(* The brute oracle scores every stored value with no blocking and no
   length prefilter, so equivalence tests validate both at once. *)
let query_brute t ~km ~threshold s =
  rank_and_cut ~prefilter:false t ~km ~threshold s
    (List.init (Array.length t.values) Fun.id)

let match_pairs ?n ?measure ?jobs ~km ~threshold left right =
  let index = create ?n ?measure ?jobs right in
  let left = List.sort_uniq String.compare left in
  let pool = pool_for jobs in
  Obs.span "sim_index.match_pairs" (fun () ->
      let hits =
        Pool.map_list pool
          (fun l ->
            query index ~km ~threshold l
            |> List.map (fun (r, score) -> (l, r, score)))
          left
      in
      List.concat hits)

(* {2 Determinism digest}

   A content digest of the index: values, parameters, and every posting
   list in ascending key order. Two builds of the same inputs must
   digest identically whatever [jobs] was — the shard-parallel
   determinism pin in the tests compares this across pool sizes and
   build strategies. *)
let postings_digest t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (string_of_int t.n);
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int t.shard_bits);
  Buffer.add_char buf '|';
  Array.iter
    (fun v ->
      Buffer.add_string buf v;
      Buffer.add_char buf '\x00')
    t.values;
  let entries = ref [] in
  Array.iter
    (fun shard -> Itable.iter (fun k ids -> entries := (k, ids) :: !entries) shard)
    t.shards;
  let entries =
    List.sort (fun (k1, _) (k2, _) -> Int.compare k1 k2) !entries
  in
  List.iter
    (fun (k, ids) ->
      Buffer.add_string buf (string_of_int k);
      Buffer.add_char buf ':';
      List.iter
        (fun i ->
          Buffer.add_string buf (string_of_int i);
          Buffer.add_char buf ',')
        ids;
      Buffer.add_char buf ';')
    entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))
