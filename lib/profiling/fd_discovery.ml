open Dlearn_relation

type fd = {
  lhs : string list;
  rhs : string;
}

let group_key tuple positions =
  String.concat "\x00"
    (List.map (fun p -> Value.to_string (Tuple.get tuple p)) positions)

let holds relation lhs rhs =
  let schema = Relation.schema relation in
  let lhs_pos = List.map (Schema.position schema) lhs in
  let rhs_pos = Schema.position schema rhs in
  let witness : (string, Value.t) Hashtbl.t = Hashtbl.create 64 in
  let ok = ref true in
  Relation.iter
    (fun _ tuple ->
      if !ok then begin
        let key = group_key tuple lhs_pos in
        let v = Tuple.get tuple rhs_pos in
        match Hashtbl.find_opt witness key with
        | Some v' -> if not (Value.equal v v') then ok := false
        | None -> Hashtbl.add witness key v
      end)
    relation;
  !ok

(* Subsets of [attrs] of exactly size [k], in lexicographic order. *)
let rec subsets k attrs =
  if k = 0 then [ [] ]
  else
    match attrs with
    | [] -> []
    | a :: rest ->
        List.map (fun s -> a :: s) (subsets (k - 1) rest) @ subsets k rest

let discover ?(max_lhs = 2) relation =
  let schema = Relation.schema relation in
  let attrs =
    Array.to_list (Schema.attributes schema)
    |> List.map (fun (a : Schema.attribute) -> a.attr_name)
  in
  let found = ref [] in
  let determined_by_subset lhs rhs =
    List.exists
      (fun f ->
        String.equal f.rhs rhs
        && List.for_all (fun a -> List.mem a lhs) f.lhs
        && List.length f.lhs < List.length lhs)
      !found
  in
  for size = 1 to max_lhs do
    List.iter
      (fun lhs ->
        List.iter
          (fun rhs ->
            if
              (not (List.mem rhs lhs))
              && (not (determined_by_subset lhs rhs))
              && holds relation lhs rhs
            then found := { lhs; rhs } :: !found)
          attrs)
      (subsets size attrs)
  done;
  List.rev !found

let to_cfd ~id relation_name fd =
  Dlearn_constraints.Cfd.fd ~id ~relation:relation_name fd.lhs fd.rhs
