(* The incremental-vs-from-scratch equivalence suite.

   The incremental coverage engine (docs/COVERAGE.md) promises that
   verdict caching, generalization-monotone inheritance and score-bound
   pruning never change a learned definition or a coverage count. This
   suite pins that promise: Bitset unit tests against a sorted-list
   model, degenerate-input tests for the batch API, and a QCheck
   differential property running [Learner.learn] with
   [Config.incremental_coverage] on (at 1, 2 and 4 domains) and off,
   over random example multisets on MD and CFD repair spaces — the
   definitions and the per-clause (pos, neg) stats must be identical. *)

open Dlearn_relation
open Dlearn_constraints
open Dlearn_logic
open Dlearn_core
module Bitset = Cover_set.Bitset

let sv s = Value.String s

(* ------------------------------------------------------------------ *)
(* Bitset unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let sorted_uniq l = List.sort_uniq Int.compare l

let bitset_model_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bitset ops agree with the sorted-list model"
       ~count:500
       QCheck.(pair (small_list (int_bound 200)) (small_list (int_bound 200)))
       (fun (xs, ys) ->
         let a = Bitset.of_list xs and b = Bitset.of_list ys in
         let xs' = sorted_uniq xs and ys' = sorted_uniq ys in
         Bitset.to_list a = xs'
         && Bitset.cardinal a = List.length xs'
         && Bitset.to_list (Bitset.union a b)
            = sorted_uniq (xs' @ ys')
         && Bitset.to_list (Bitset.inter a b)
            = List.filter (fun x -> List.mem x ys') xs'
         && Bitset.to_list (Bitset.diff a b)
            = List.filter (fun x -> not (List.mem x ys')) xs'
         && List.for_all (fun x -> Bitset.mem a x) xs'
         && Bitset.equal a (List.fold_left Bitset.add Bitset.empty xs)))

let bitset_tests =
  [
    Alcotest.test_case "empty set" `Quick (fun () ->
        Alcotest.(check bool) "is_empty" true (Bitset.is_empty Bitset.empty);
        Alcotest.(check int) "cardinal" 0 (Bitset.cardinal Bitset.empty);
        Alcotest.(check bool) "mem" false (Bitset.mem Bitset.empty 0);
        Alcotest.(check bool)
          "of_list []" true
          (Bitset.equal Bitset.empty (Bitset.of_list [])));
    Alcotest.test_case "mem is total" `Quick (fun () ->
        let s = Bitset.singleton 9 in
        Alcotest.(check bool) "present" true (Bitset.mem s 9);
        Alcotest.(check bool) "absent in range" false (Bitset.mem s 8);
        Alcotest.(check bool) "beyond capacity" false
          (Bitset.mem s (Bitset.capacity s + 100));
        Alcotest.(check bool) "negative" false (Bitset.mem s (-1)));
    Alcotest.test_case "representation is trimmed and canonical" `Quick
      (fun () ->
        (* Remove the high bit: the result must equal the set built
           without it, so structural equality is set equality. *)
        let with_high = Bitset.of_list [ 3; 200 ] in
        let low = Bitset.diff with_high (Bitset.singleton 200) in
        Alcotest.(check bool)
          "diff trims" true
          (Bitset.equal low (Bitset.singleton 3));
        Alcotest.(check bool)
          "inter trims" true
          (Bitset.is_empty
             (Bitset.inter (Bitset.singleton 500) (Bitset.singleton 3)));
        Alcotest.(check bool)
          "self-diff is empty" true
          (Bitset.is_empty (Bitset.diff with_high with_high)));
    Alcotest.test_case "packed round-trip" `Quick (fun () ->
        let b = Bytes.make 3 '\000' in
        Bytes.set b 0 '\005';
        (* bits 0 and 2; byte 2 is a trailing zero *)
        let s = Bitset.of_packed b in
        Alcotest.(check (list int)) "bits" [ 0; 2 ] (Bitset.to_list s);
        Alcotest.(check bool) "test_packed" true (Bitset.test_packed b 2);
        Alcotest.(check bool) "test_packed clear" false (Bitset.test_packed b 1);
        Alcotest.(check bool) "test_packed beyond" false
          (Bitset.test_packed b 24);
        (* adoption copies: later mutation is not observed *)
        Bytes.set b 0 '\255';
        Alcotest.(check (list int)) "isolated" [ 0; 2 ] (Bitset.to_list s));
    bitset_model_test;
  ]

(* ------------------------------------------------------------------ *)
(* Toy workload (mirrors test_parallel.ml)                             *)
(* ------------------------------------------------------------------ *)

let toy_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.string_attrs "imdb_movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ];
      Tuple.of_strings [ "m3"; "The Orphanage (2007)"; "y2007" ];
      Tuple.of_strings [ "m4"; "Alien (1979)"; "y1979" ];
    ];
  let genres =
    Database.create_relation db
      (Schema.string_attrs "imdb_genres" [ "id"; "genre" ])
  in
  Relation.insert_all genres
    [
      Tuple.of_strings [ "m1"; "comedy" ];
      Tuple.of_strings [ "m2"; "comedy" ];
      Tuple.of_strings [ "m3"; "drama" ];
      Tuple.of_strings [ "m4"; "scifi" ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.string_attrs "bom_ratings" [ "title"; "rating" ])
  in
  Relation.insert_all ratings
    [
      Tuple.of_strings [ "Superbad [2007]"; "R" ];
      Tuple.of_strings [ "Zoolander [2001]"; "PG-13" ];
      Tuple.of_strings [ "The Orphanage [2007]"; "R" ];
      Tuple.of_strings [ "Alien [1979]"; "R" ];
    ];
  db

let violating_db () =
  let db = toy_db () in
  let locale =
    Database.create_relation db
      (Schema.string_attrs "locale" [ "id"; "language"; "country" ])
  in
  Relation.insert_all locale
    [
      Tuple.of_strings [ "m1"; "English"; "USA" ];
      Tuple.of_strings [ "m1"; "English"; "Ireland" ];
      Tuple.of_strings [ "m2"; "English"; "USA" ];
    ];
  db

let phi =
  Cfd.make ~id:"phi" ~relation:"locale"
    ~lhs:[ ("id", Cfd.Wildcard); ("language", Cfd.Const (sv "English")) ]
    ~rhs:("country", Cfd.Wildcard)

let md_title =
  Md.make ~id:"title_md" ~left:"imdb_movies" ~right:"bom_ratings"
    ~compared:[ ("title", "title") ] ~unified:("title", "title") ()

let target = Schema.string_attrs "restricted" [ "id" ]

let toy_config ~jobs ~threshold ~incremental =
  {
    (Config.default ~target) with
    Config.constant_attrs =
      [ ("bom_ratings", "rating"); ("imdb_genres", "genre") ];
    sim = { Md.default_sim with Md.threshold };
    min_pos = 2;
    sample_positives = 4;
    num_domains = jobs;
    incremental_coverage = incremental;
    (* the constraints are known-good; skip the per-learn preflight *)
    allow_dirty_constraints = true;
  }

let ex id = Tuple.of_strings [ id ]
let examples = [| ex "m1"; ex "m2"; ex "m3"; ex "m4" |]

(* ------------------------------------------------------------------ *)
(* Degenerate batch inputs                                             *)
(* ------------------------------------------------------------------ *)

let fresh_ctx ?(jobs = 1) ?(incremental = true) ?(cfd = false) () =
  let db = if cfd then violating_db () else toy_db () in
  let cfds = if cfd then [ phi ] else [] in
  Context.create
    (toy_config ~jobs ~threshold:0.7 ~incremental)
    db [ md_title ] cfds

let degenerate_tests =
  [
    Alcotest.test_case "empty universes yield empty bitsets" `Quick (fun () ->
        let ctx = fresh_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let prep = Coverage.prepare ctx bottom in
        let pc, nc = Coverage.coverage_sets ctx prep ~pos:[] ~neg:[] in
        Alcotest.(check bool) "pos empty" true (Bitset.is_empty pc);
        Alcotest.(check bool) "neg empty" true (Bitset.is_empty nc);
        Alcotest.(check (pair int int))
          "counts" (0, 0)
          (Coverage.coverage ctx prep ~pos:[] ~neg:[]));
    Alcotest.test_case "duplicate tuples count with multiplicity" `Quick
      (fun () ->
        let ctx = fresh_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let prep = Coverage.prepare ctx bottom in
        let pos = [ ex "m1"; ex "m1"; ex "m1" ] in
        let p, _ = Coverage.coverage ctx prep ~pos ~neg:[] in
        Alcotest.(check int) "three occurrences" 3 p;
        let pc, _ = Coverage.coverage_sets ctx prep ~pos ~neg:[] in
        Alcotest.(check int) "one id in the set" 1 (Bitset.cardinal pc);
        Alcotest.(check int)
          "count_covered respects multiplicity" 3
          (Coverage.count_covered ctx pc pos));
    Alcotest.test_case "skeleton-rejected clause yields all-zero bitsets"
      `Quick (fun () ->
        let ctx = fresh_ctx () in
        (* No bottom clause mentions this relation, so the skeleton
           prefilter rejects every example. *)
        let v = Term.var "x0" in
        let clause =
          Clause.make
            ~head:(Literal.rel "restricted" [ v ])
            [ Literal.rel "no_such_relation" [ v ] ]
        in
        let prep = Coverage.prepare ctx clause in
        let universe = Array.to_list examples in
        let pc, nc = Coverage.coverage_sets ctx prep ~pos:universe ~neg:universe in
        Alcotest.(check bool) "pos all-zero" true (Bitset.is_empty pc);
        Alcotest.(check bool) "neg all-zero" true (Bitset.is_empty nc);
        Alcotest.(check (pair int int))
          "counts" (0, 0)
          (Coverage.coverage ctx prep ~pos:universe ~neg:universe));
    Alcotest.test_case "cached second call returns identical sets" `Quick
      (fun () ->
        let ctx = fresh_ctx ~cfd:true () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let prep = Coverage.prepare ctx bottom in
        let universe = Array.to_list examples in
        let first = Coverage.coverage_sets ctx prep ~pos:universe ~neg:universe in
        let tested =
          Dlearn_obs.Obs.value ctx.Context.cover_stats.Context.tested
        in
        (* Same clause re-prepared: every verdict must come from the
           cache, and the sets must be unchanged. *)
        let prep' = Coverage.prepare ctx bottom in
        let second =
          Coverage.coverage_sets ctx prep' ~pos:universe ~neg:universe
        in
        Alcotest.(check bool)
          "pos sets equal" true
          (Bitset.equal (fst first) (fst second));
        Alcotest.(check bool)
          "neg sets equal" true
          (Bitset.equal (snd first) (snd second));
        Alcotest.(check int)
          "no new predicate runs" tested
          (Dlearn_obs.Obs.value ctx.Context.cover_stats.Context.tested));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck differential: incremental ≡ from-scratch                     *)
(* ------------------------------------------------------------------ *)

(* One context per (variant, domain count, incremental flag), persistent
   across all QCheck cases: the ground caches warm up as in a real run,
   and — because the incremental path consumes the context RNG exactly
   like the from-scratch path — the paired contexts stay in lockstep
   case after case. A divergence in RNG consumption would surface here
   as a cascade of failures. *)
type variant = {
  name : string;
  off : Context.t;  (** 1 domain, incremental off — the reference *)
  on_ : (int * Context.t) list;  (** num_domains -> incremental context *)
}

let domain_counts = [ 1; 2; 4 ]

let make_variant name ~threshold ~db ~cfds =
  let make ~jobs ~incremental =
    Context.create
      (toy_config ~jobs ~threshold ~incremental)
      (db ()) [ md_title ] cfds
  in
  {
    name;
    off = make ~jobs:1 ~incremental:false;
    on_ =
      List.map
        (fun jobs -> (jobs, make ~jobs ~incremental:true))
        domain_counts;
  }

let variants =
  lazy
    [
      make_variant "strict" ~threshold:0.7 ~db:toy_db ~cfds:[];
      make_variant "loose" ~threshold:0.6 ~db:toy_db ~cfds:[];
      make_variant "cfd" ~threshold:0.7 ~db:violating_db ~cfds:[ phi ];
    ]

type scenario = { variant_i : int; pos : Tuple.t list; neg : Tuple.t list }

let scenario_gen =
  let open QCheck.Gen in
  let example_list =
    list_size (0 -- 6) (map (fun i -> examples.(i)) (0 -- 3))
  in
  let* variant_i = 0 -- 2 in
  let* pos = example_list in
  let* neg = example_list in
  return { variant_i; pos; neg }

let scenario_print s =
  let variant = List.nth (Lazy.force variants) s.variant_i in
  Printf.sprintf "variant=%s pos=[%s] neg=[%s]" variant.name
    (String.concat ";" (List.map Tuple.to_string s.pos))
    (String.concat ";" (List.map Tuple.to_string s.neg))

let scenario_arb = QCheck.make ~print:scenario_print scenario_gen

let outcome ctx ~pos ~neg =
  let r = Learner.learn ctx ~pos ~neg in
  ( Definition.to_string r.Learner.definition,
    List.map
      (fun s -> (s.Learner.pos_covered, s.Learner.neg_covered))
      r.Learner.stats )

let learn_differential_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"learn: incremental at 1/2/4 domains equals from-scratch"
       ~count:500 scenario_arb
       (fun s ->
         let variant = List.nth (Lazy.force variants) s.variant_i in
         let ref_def, ref_stats =
           outcome variant.off ~pos:s.pos ~neg:s.neg
         in
         List.for_all
           (fun (jobs, ctx) ->
             let def, stats = outcome ctx ~pos:s.pos ~neg:s.neg in
             if def <> ref_def then
               QCheck.Test.fail_reportf
                 "definition diverged at %d domains:\n--- from-scratch\n%s\n\
                  --- incremental\n%s"
                 jobs ref_def def
             else if stats <> ref_stats then
               QCheck.Test.fail_reportf
                 "per-clause stats diverged at %d domains: [%s] <> [%s]" jobs
                 (String.concat ";"
                    (List.map
                       (fun (p, n) -> Printf.sprintf "%d+/%d-" p n)
                       ref_stats))
                 (String.concat ";"
                    (List.map
                       (fun (p, n) -> Printf.sprintf "%d+/%d-" p n)
                       stats))
             else true)
           variant.on_))

let coverage_differential_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"coverage: cached counts equal from-scratch counts" ~count:500
       scenario_arb
       (fun s ->
         let variant = List.nth (Lazy.force variants) s.variant_i in
         (* Exercise the cache with clauses derived from the scenario's
            own examples: bottoms and their pairwise ARMGs. *)
         let ctx_on = List.assoc 1 variant.on_ in
         let ctx_off = variant.off in
         let clauses =
           match s.pos with
           | [] -> []
           | seed :: rest ->
               let bottom =
                 Bottom_clause.build ctx_off Bottom_clause.Variable seed
               in
               bottom
               :: List.filter_map
                    (fun e -> Generalization.armg ctx_off bottom e)
                    rest
         in
         List.for_all
           (fun clause ->
             let scratch =
               Coverage.coverage ctx_off
                 (Coverage.prepare ctx_off clause)
                 ~pos:s.pos ~neg:s.neg
             in
             let cached =
               Coverage.coverage ctx_on
                 (Coverage.prepare ctx_on clause)
                 ~pos:s.pos ~neg:s.neg
             in
             if scratch <> cached then
               QCheck.Test.fail_reportf
                 "counts diverged: from-scratch (%d, %d) <> cached (%d, %d)"
                 (fst scratch) (snd scratch) (fst cached) (snd cached)
             else true)
           clauses))

let () =
  Alcotest.run "incremental"
    [
      ("bitset", bitset_tests);
      ("degenerate", degenerate_tests);
      ("differential", [ coverage_differential_test; learn_differential_test ]);
    ]
