open Dlearn_relation
open Dlearn_constraints
open Dlearn_logic
open Dlearn_core

let sv s = Value.String s

(* A miniature two-source movie task: ratings live in BOM under
   heterogeneous titles; the target marks R-rated movies by IMDB id. *)
let toy_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.string_attrs "imdb_movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ];
      Tuple.of_strings [ "m3"; "The Orphanage (2007)"; "y2007" ];
      Tuple.of_strings [ "m4"; "Alien (1979)"; "y1979" ];
    ];
  let genres =
    Database.create_relation db (Schema.string_attrs "imdb_genres" [ "id"; "genre" ])
  in
  Relation.insert_all genres
    [
      Tuple.of_strings [ "m1"; "comedy" ];
      Tuple.of_strings [ "m2"; "comedy" ];
      Tuple.of_strings [ "m3"; "drama" ];
      Tuple.of_strings [ "m4"; "scifi" ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.string_attrs "bom_ratings" [ "title"; "rating" ])
  in
  Relation.insert_all ratings
    [
      Tuple.of_strings [ "Superbad [2007]"; "R" ];
      Tuple.of_strings [ "Zoolander [2001]"; "PG-13" ];
      Tuple.of_strings [ "The Orphanage [2007]"; "R" ];
      Tuple.of_strings [ "Alien [1979]"; "R" ];
    ];
  db

let md_title =
  Md.make ~id:"title_md" ~left:"imdb_movies" ~right:"bom_ratings"
    ~compared:[ ("title", "title") ] ~unified:("title", "title") ()

let target = Schema.string_attrs "restricted" [ "id" ]

let toy_config () =
  {
    (Config.default ~target) with
    Config.constant_attrs =
      [ ("bom_ratings", "rating"); ("imdb_genres", "genre") ];
    (* 0.7 keeps the bracket-format variants similar while excluding the
       spurious same-length pairs the averaged operator lets through at
       0.6 (e.g. "Superbad (2007)" vs "Zoolander [2001]" scores 0.605). *)
    sim = { Md.default_sim with Md.threshold = 0.7 };
    min_pos = 2;
    sample_positives = 4;
  }

let toy_ctx ?(config = toy_config ()) ?(mds = [ md_title ]) ?(cfds = []) () =
  Context.create config (toy_db ()) mds cfds

let ex id = Tuple.of_strings [ id ]
let positives = [ ex "m1"; ex "m3"; ex "m4" ]
let negatives = [ ex "m2" ]

let body_preds (c : Clause.t) =
  List.filter_map
    (function Literal.Rel { pred; _ } -> Some pred | _ -> None)
    c.Clause.body

let count_kind p (c : Clause.t) = List.length (List.filter p c.Clause.body)

let bottom_tests =
  [
    Alcotest.test_case "bottom clause reaches both databases" `Quick (fun () ->
        let ctx = toy_ctx () in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let preds = body_preds c in
        Alcotest.(check bool) "imdb_movies" true (List.mem "imdb_movies" preds);
        Alcotest.(check bool) "imdb_genres" true (List.mem "imdb_genres" preds);
        Alcotest.(check bool) "bom_ratings via similarity" true
          (List.mem "bom_ratings" preds));
    Alcotest.test_case "similarity match produces sim + repair group" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        Alcotest.(check bool) "has sim literal" true
          (count_kind (function Literal.Sim _ -> true | _ -> false) c > 0);
        let repairs = Clause.repair_body c in
        Alcotest.(check bool) "at least one repair pair" true
          (List.length repairs >= 2);
        List.iter
          (fun l ->
            match l with
            | Literal.Repair { origin = Literal.From_md id; _ } ->
                Alcotest.(check string) "origin" "title_md" id
            | _ -> Alcotest.fail "non-MD repair in MD-only setting")
          repairs);
    Alcotest.test_case "no MDs means no cross-database reach" `Quick (fun () ->
        let ctx = toy_ctx ~mds:[] () in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        Alcotest.(check bool) "bom_ratings absent" false
          (List.mem "bom_ratings" (body_preds c)));
    Alcotest.test_case "exact matching finds no heterogeneous match" `Quick
      (fun () ->
        let config = { (toy_config ()) with Config.exact_matching = true } in
        let ctx = toy_ctx ~config () in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        Alcotest.(check bool) "bom_ratings absent" false
          (List.mem "bom_ratings" (body_preds c));
        Alcotest.(check int) "no repairs" 0 (List.length (Clause.repair_body c)));
    Alcotest.test_case "constant attributes stay constant" `Quick (fun () ->
        let ctx = toy_ctx () in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let rating_arg =
          List.find_map
            (function
              | Literal.Rel { pred = "bom_ratings"; args } -> Some args.(1)
              | _ -> None)
            c.Clause.body
        in
        match rating_arg with
        | Some (Term.Const v) ->
            Alcotest.(check bool) "is R" true (Value.equal v (sv "R"))
        | other ->
            Alcotest.failf "expected constant rating, got %s"
              (match other with
              | Some t -> Term.to_string t
              | None -> "no bom_ratings literal"));
    Alcotest.test_case "ground bottom clause is ground with merged repairs"
      `Quick (fun () ->
        let ctx = toy_ctx () in
        let entry = Bottom_clause.ground ctx (ex "m1") in
        let g = entry.Context.ground in
        Alcotest.(check (list string)) "no variables" [] (Clause.vars g);
        let merged_replacement =
          List.exists
            (function
              | Literal.Repair { replacement = Term.Const v; _ } ->
                  Md.Merge.is_merged v
              | _ -> false)
            g.Clause.body
        in
        Alcotest.(check bool) "merged replacement" true merged_replacement);
    Alcotest.test_case "ground clause is cached" `Quick (fun () ->
        let ctx = toy_ctx () in
        let e1 = Bottom_clause.ground ctx (ex "m1") in
        let e2 = Bottom_clause.ground ctx (ex "m1") in
        Alcotest.(check bool) "same entry" true (e1 == e2));
    Alcotest.test_case "depth 1 reaches less than depth 3" `Quick (fun () ->
        let shallow =
          toy_ctx ~config:{ (toy_config ()) with Config.depth = 1 } ()
        in
        let deep = toy_ctx () in
        let cs = Bottom_clause.build shallow Bottom_clause.Variable (ex "m1") in
        let cd = Bottom_clause.build deep Bottom_clause.Variable (ex "m1") in
        Alcotest.(check bool) "deep has at least as many literals" true
          (Clause.body_size cd >= Clause.body_size cs));
    Alcotest.test_case "sample size caps literals per relation" `Quick
      (fun () ->
        let config = { (toy_config ()) with Config.sample_size = 1 } in
        let ctx = toy_ctx ~config () in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let per_rel = Hashtbl.create 4 in
        List.iter
          (fun p ->
            Hashtbl.replace per_rel p
              (1 + Option.value ~default:0 (Hashtbl.find_opt per_rel p)))
          (body_preds c);
        Hashtbl.iter
          (fun p n ->
            Alcotest.(check bool) (p ^ " within cap") true (n <= 1))
          per_rel);
    Alcotest.test_case "MD on target relation is rejected" `Quick (fun () ->
        let bad = Md.symmetric ~id:"bad" "restricted" "imdb_movies" "id" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (toy_ctx ~mds:[ bad ] ());
             false
           with Invalid_argument _ -> true));
  ]

(* The hand-written target clause: R-rated movies via the title match. *)
let hand_clause () =
  let v0 = Term.var "x0" and vt = Term.var "xt" and vy = Term.var "xy" in
  let vt2 = Term.var "xt2" in
  let r0 = Term.var "rr0" and r1 = Term.var "rr1" in
  let sim = Literal.Sim (vt, vt2) in
  let mk_repair subject replacement =
    Literal.Repair
      {
        origin = Literal.From_md "title_md";
        group = 0;
        cond = [ Cond.Csim (vt, vt2) ];
        subject;
        replacement;
        drops = [ sim ];
      }
  in
  Clause.make
    ~head:(Literal.rel "restricted" [ v0 ])
    [
      Literal.rel "imdb_movies" [ v0; vt; vy ];
      Literal.rel "bom_ratings" [ vt2; Term.str "R" ];
      sim;
      mk_repair vt r0;
      mk_repair vt2 r1;
      Literal.Eq (r0, r1);
    ]

let coverage_tests =
  [
    Alcotest.test_case "hand clause covers all positives" `Quick (fun () ->
        let ctx = toy_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        List.iter
          (fun e ->
            Alcotest.(check bool)
              ("covers " ^ Tuple.to_string e)
              true
              (Coverage.covers_positive ctx prep e))
          positives);
    Alcotest.test_case "hand clause covers no negative" `Quick (fun () ->
        let ctx = toy_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        Alcotest.(check bool) "m2 not covered (positive semantics)" false
          (Coverage.covers_positive ctx prep (ex "m2"));
        Alcotest.(check bool) "m2 not covered (negative semantics)" false
          (Coverage.covers_negative ctx prep (ex "m2")));
    Alcotest.test_case "negative semantics agrees on true positives" `Quick
      (fun () ->
        (* On this toy data the repaired clause also subsumes the repaired
           ground clauses of true positives. *)
        let ctx = toy_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        Alcotest.(check bool) "m1 covered as negative-semantics too" true
          (Coverage.covers_negative ctx prep (ex "m1")));
    Alcotest.test_case "too-specific clause covers only its example" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let prep = Coverage.prepare ctx bottom in
        Alcotest.(check bool) "covers own example" true
          (Coverage.covers_positive ctx prep (ex "m1"));
        Alcotest.(check bool) "does not cover m2" false
          (Coverage.covers_positive ctx prep (ex "m2")));
    Alcotest.test_case "coverage counts" `Quick (fun () ->
        let ctx = toy_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        let p, n = Coverage.coverage ctx prep ~pos:positives ~neg:negatives in
        Alcotest.(check int) "3 positives" 3 p;
        Alcotest.(check int) "0 negatives" 0 n);
  ]

let generalization_tests =
  [
    Alcotest.test_case "armg drops blocking literals" `Quick (fun () ->
        let ctx = toy_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        (* m1 is a comedy; m3 is a drama: the genre literal must go when
           generalising towards m3. *)
        match Generalization.armg ctx bottom (ex "m3") with
        | None -> Alcotest.fail "armg found no head mapping"
        | Some g ->
            Alcotest.(check bool) "smaller" true
              (Clause.body_size g < Clause.body_size bottom);
            let prep = Coverage.prepare ctx g in
            Alcotest.(check bool) "covers m1" true
              (Coverage.covers_positive ctx prep (ex "m1"));
            Alcotest.(check bool) "covers m3" true
              (Coverage.covers_positive ctx prep (ex "m3")));
    Alcotest.test_case "armg result subsumes nothing new: still specific"
      `Quick (fun () ->
        let ctx = toy_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        match Generalization.armg ctx bottom (ex "m1") with
        | None -> Alcotest.fail "no mapping onto own example"
        | Some g ->
            (* Generalising towards its own example keeps the clause. *)
            Alcotest.(check bool) "body not empty" true (Clause.body_size g > 0));
    Alcotest.test_case "armg output is head-connected" `Quick (fun () ->
        let ctx = toy_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m4") in
        match Generalization.armg ctx bottom (ex "m3") with
        | None -> Alcotest.fail "no mapping"
        | Some g ->
            Alcotest.(check bool) "fixpoint of head_connected" true
              (Clause.equal g (Clause.head_connected g)));
  ]

let learner_tests =
  [
    Alcotest.test_case "learns a perfect definition on the toy task" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        let result = Learner.learn ctx ~pos:positives ~neg:negatives in
        Alcotest.(check bool) "definition nonempty" false
          (Definition.is_empty result.Learner.definition);
        List.iter
          (fun e ->
            Alcotest.(check bool)
              ("predicts " ^ Tuple.to_string e)
              true
              (Learner.predict ctx result.Learner.definition e))
          positives;
        Alcotest.(check bool) "rejects m2" false
          (Learner.predict ctx result.Learner.definition (ex "m2")));
    Alcotest.test_case "castor-nomd cannot see ratings" `Quick (fun () ->
        let config = toy_config () in
        let ctx =
          Baselines.make_context Baselines.Castor_nomd config (toy_db ())
            [ md_title ] []
        in
        let result = Learner.learn ctx ~pos:positives ~neg:negatives in
        (* Without MDs the only signal is genre, which cannot separate the
           comedies m1 (R) and m2 (PG-13). *)
        let covers_m2 =
          Learner.predict ctx result.Learner.definition (ex "m2")
        in
        let covers_all_pos =
          List.for_all
            (Learner.predict ctx result.Learner.definition)
            positives
        in
        Alcotest.(check bool) "imperfect: misses a positive or hits m2" true
          ((not covers_all_pos) || covers_m2));
    Alcotest.test_case "castor-clean resolves titles and learns" `Quick
      (fun () ->
        let config = toy_config () in
        let ctx =
          Baselines.make_context Baselines.Castor_clean config (toy_db ())
            [ md_title ] []
        in
        let result = Learner.learn ctx ~pos:positives ~neg:negatives in
        List.iter
          (fun e ->
            Alcotest.(check bool)
              ("predicts " ^ Tuple.to_string e)
              true
              (Learner.predict ctx result.Learner.definition e))
          positives);
    Alcotest.test_case "stats count coverage over the training set" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        let result = Learner.learn ctx ~pos:positives ~neg:negatives in
        List.iter
          (fun s ->
            Alcotest.(check bool) "pos covered >= min_pos" true
              (s.Learner.pos_covered >= 2))
          result.Learner.stats);
  ]

let resolve_tests =
  [
    Alcotest.test_case "resolve_entities rewrites the left attribute" `Quick
      (fun () ->
        let db = toy_db () in
        let db' =
          Baselines.resolve_entities ~sim:Md.default_sim db [ md_title ]
        in
        let movies = Database.find db' "imdb_movies" in
        Alcotest.(check bool) "title now from BOM" true
          (Relation.holds_value movies 1 (sv "Superbad [2007]"));
        (* Original database untouched. *)
        let movies0 = Database.find db "imdb_movies" in
        Alcotest.(check bool) "original intact" true
          (Relation.holds_value movies0 1 (sv "Superbad (2007)")));
  ]

(* A locale relation violating a CFD, so CFD repair literals appear in
   bottom clauses. *)
let violating_db () =
  let db = toy_db () in
  let locale =
    Database.create_relation db
      (Schema.string_attrs "locale" [ "id"; "language"; "country" ])
  in
  Relation.insert_all locale
    [
      Tuple.of_strings [ "m1"; "English"; "USA" ];
      Tuple.of_strings [ "m1"; "English"; "Ireland" ];
      Tuple.of_strings [ "m2"; "English"; "USA" ];
    ];
  db

let phi =
  Cfd.make ~id:"phi" ~relation:"locale"
    ~lhs:[ ("id", Cfd.Wildcard); ("language", Cfd.Const (sv "English")) ]
    ~rhs:("country", Cfd.Wildcard)

(* CFD repair literals inside bottom clauses. *)
let cfd_tests =
  [
    Alcotest.test_case "violating pair yields a CFD repair group" `Quick
      (fun () ->
        let config = toy_config () in
        let ctx = Context.create config (violating_db ()) [ md_title ] [ phi ] in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let cfd_repairs =
          List.filter
            (function
              | Literal.Repair { origin = Literal.From_cfd "phi"; _ } -> true
              | _ -> false)
            c.Clause.body
        in
        (* Two RHS alternatives plus two LHS splits for the shared id. *)
        Alcotest.(check bool) "at least 2 repairs" true
          (List.length cfd_repairs >= 2));
    Alcotest.test_case "no CFDs configured means no CFD repairs" `Quick
      (fun () ->
        let config = toy_config () in
        let ctx = Context.create config (violating_db ()) [ md_title ] [] in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let cfd_repairs =
          List.filter
            (function
              | Literal.Repair { origin = Literal.From_cfd _; _ } -> true
              | _ -> false)
            c.Clause.body
        in
        Alcotest.(check int) "none" 0 (List.length cfd_repairs));
    Alcotest.test_case "cfd_applications of the bottom clause branch" `Quick
      (fun () ->
        let config = toy_config () in
        let ctx = Context.create config (violating_db ()) [ md_title ] [ phi ] in
        let c = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let apps = Clause_repair.cfd_applications c in
        Alcotest.(check bool) "more than one application" true
          (List.length apps > 1));
    Alcotest.test_case "learning still works with CFD repairs around" `Quick
      (fun () ->
        let config = toy_config () in
        let ctx = Context.create config (violating_db ()) [ md_title ] [ phi ] in
        let result = Learner.learn ctx ~pos:positives ~neg:negatives in
        Alcotest.(check bool) "definition nonempty" false
          (Definition.is_empty result.Learner.definition));
  ]

(* Which internal branch a coverage check takes is observable through the
   memo cells of the prepared clause: the fast path and the prefilter
   both decide before the repair enumeration is forced. Each test pins
   one branch of Coverage.covers_positive / covers_positive_cfd_split. *)
let coverage_branch_tests =
  let module Memo = Dlearn_parallel.Memo in
  let cfd_ctx () =
    Context.create (toy_config ()) (violating_db ()) [ md_title ] [ phi ]
  in
  [
    Alcotest.test_case "fast path decides without repair enumeration" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m1") in
        let prep = Coverage.prepare ctx bottom in
        Alcotest.(check bool) "covers own example" true
          (Coverage.covers_positive ctx prep (ex "m1"));
        Alcotest.(check bool) "repairs never forced" false
          (Memo.is_forced prep.Coverage.repairs);
        Alcotest.(check bool) "skeleton never forced" false
          (Memo.is_forced prep.Coverage.skeleton));
    Alcotest.test_case "prefilter rejects before repair enumeration" `Quick
      (fun () ->
        (* m2's ground clause has no R-rated bom_ratings row, so the hand
           clause's skeleton cannot match: the prefilter must reject
           without ever enumerating repairs. *)
        let ctx = toy_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        Alcotest.(check bool) "m2 not covered" false
          (Coverage.covers_positive ctx prep (ex "m2"));
        Alcotest.(check bool) "skeleton forced" true
          (Memo.is_forced prep.Coverage.skeleton);
        Alcotest.(check bool) "repairs never forced" false
          (Memo.is_forced prep.Coverage.repairs));
    Alcotest.test_case "empty repair enumeration short-circuits to false"
      `Quick (fun () ->
        (* At threshold 0.6 m2 is genuinely covered (see the semantics
           suite); capping the repair enumeration at zero results empties
           crs, and the for-all over an empty set must NOT claim
           coverage. *)
        let config =
          {
            (toy_config ()) with
            Config.sim = { Md.default_sim with Md.threshold = 0.6 };
            repair_result_cap = 0;
          }
        in
        let ctx = toy_ctx ~config () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        Alcotest.(check bool) "empty crs means uncovered" false
          (Coverage.covers_positive ctx prep (ex "m2"));
        Alcotest.(check bool) "repairs forced" true
          (Memo.is_forced prep.Coverage.repairs);
        Alcotest.(check int) "enumeration is empty" 0
          (List.length (Memo.force prep.Coverage.repairs)));
    Alcotest.test_case "cfd_split enumerates with CFD repairs on one side"
      `Quick (fun () ->
        (* The hand clause carries no CFD repair literal, but m1's ground
           clause does (the violating locale pair): the split procedure
           must fall through to the CFD-application enumeration and still
           accept. *)
        let ctx = cfd_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        Alcotest.(check bool) "m1 covered" true
          (Coverage.covers_positive_cfd_split ctx prep (ex "m1"));
        Alcotest.(check bool) "cfd applications enumerated" true
          (Memo.is_forced prep.Coverage.cfd_apps);
        let prep = Coverage.prepare ctx (hand_clause ()) in
        Alcotest.(check bool) "m2 still rejected" false
          (Coverage.covers_positive_cfd_split ctx prep (ex "m2")));
    Alcotest.test_case "cfd_split agrees with covers_positive verdicts" `Quick
      (fun () ->
        let ctx = cfd_ctx () in
        List.iter
          (fun id ->
            let prep = Coverage.prepare ctx (hand_clause ()) in
            Alcotest.(check bool)
              ("same verdict on " ^ id)
              (Coverage.covers_positive ctx prep (ex id))
              (Coverage.covers_positive_cfd_split ctx prep (ex id)))
          [ "m1"; "m2"; "m3"; "m4" ]);
    Alcotest.test_case "cfd_split prefilter leaves every verdict unchanged"
      `Quick (fun () ->
        let ctx = cfd_ctx () in
        let clauses =
          [
            ("hand", hand_clause ());
            ("bottom", Bottom_clause.build ctx Bottom_clause.Variable (ex "m1"));
          ]
        in
        List.iter
          (fun (name, clause) ->
            List.iter
              (fun id ->
                let with_pf = Coverage.prepare ctx clause in
                let without_pf = Coverage.prepare ctx clause in
                Alcotest.(check bool)
                  (Printf.sprintf "%s on %s" name id)
                  (Coverage.covers_positive_cfd_split ~prefilter:false ctx
                     without_pf (ex id))
                  (Coverage.covers_positive_cfd_split ctx with_pf (ex id)))
              [ "m1"; "m2"; "m3"; "m4" ])
          clauses);
  ]

(* Theorem 4.11 (commutativity of cleaning and learning), on the paper's
   Example 2.3 shape: a rating row whose title matches two distinct
   movies. The repaired clauses of the ground bottom clause correspond to
   the stable instances of the database: same count, and the bottom
   clause built over each stable instance θ-subsumes its corresponding
   repaired clause (the repair may keep tuples that became disconnected
   from the example in that stable instance — the proof of Thm 4.11
   removes those, so subsumption is the faithful comparison). *)
let commutativity_tests =
  let ambiguous_db () =
    let db = Database.create () in
    let movies =
      Database.create_relation db
        (Schema.string_attrs "movies" [ "id"; "title"; "year" ])
    in
    Relation.insert_all movies
      [
        Tuple.of_strings [ "m10"; "Star Wars: Episode IV"; "y1977" ];
        Tuple.of_strings [ "m40"; "Star Wars: Episode III"; "y2005" ];
      ];
    let ratings =
      Database.create_relation db
        (Schema.string_attrs "bom_ratings" [ "title"; "rating" ])
    in
    Relation.insert_all ratings [ Tuple.of_strings [ "Star Wars Episode"; "R" ] ];
    db
  in
  let md =
    Md.make ~id:"sw" ~left:"movies" ~right:"bom_ratings"
      ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
  in
  let config =
    {
      (Config.default ~target) with
      Config.constant_attrs = [ ("bom_ratings", "rating") ];
      sim = { Md.default_sim with Md.threshold = 0.75 };
    }
  in
  [
    Alcotest.test_case "ambiguous match yields two stable instances" `Quick
      (fun () ->
        let instances =
          Stable_instance.stable_instances ~sim:config.Config.sim
            (ambiguous_db ()) [ md ]
        in
        Alcotest.(check int) "2 stable instances" 2 (List.length instances));
    Alcotest.test_case
      "repairs of the bottom clause match learning over stable instances"
      `Quick (fun () ->
        let db = ambiguous_db () in
        let ctx = Context.create config db [ md ] [] in
        let e = ex "m10" in
        let ground = (Bottom_clause.ground ctx e).Context.ground in
        let repairs = Clause_repair.repaired_clauses ground in
        let instances =
          Stable_instance.stable_instances ~sim:config.Config.sim db [ md ]
        in
        Alcotest.(check int) "as many repairs as stable instances"
          (List.length instances) (List.length repairs);
        (* Each stable instance's bottom clause is subsumed by some repair
           of the dirty bottom clause. *)
        List.iter
          (fun instance ->
            let ictx = Context.create config instance [ md ] [] in
            let ig = (Bottom_clause.ground ictx e).Context.ground in
            Alcotest.(check bool)
              "stable-instance bottom clause subsumes a repair" true
              (List.exists
                 (fun repair -> Subsumption.subsumes_bool ig repair)
                 repairs))
          instances);
  ]


(* Negative coverage follows Definition 3.6: one repaired clause covering
   the example in one repair suffices. A clause whose repair joins the
   seed's title to the R rating covers m2 as a negative only if some
   repair of m2's ground clause provides that join — at threshold 0.7
   none does. Lowering the threshold to 0.6 lets the spurious
   "Zoolander (2001)" ~ "Superbad [2007]" match through, and m2 becomes
   covered: the semantics is genuinely repair-sensitive. *)
let semantics_tests =
  [
    Alcotest.test_case "negative coverage reacts to the repair space" `Quick
      (fun () ->
        let strict = toy_ctx () in
        let loose =
          toy_ctx
            ~config:
              {
                (toy_config ()) with
                Config.sim = { Md.default_sim with Md.threshold = 0.6 };
              }
            ()
        in
        let check ctx expected =
          let prep = Coverage.prepare ctx (hand_clause ()) in
          Alcotest.(check bool) "m2 negative coverage" expected
            (Coverage.covers_negative ctx prep (ex "m2"))
        in
        check strict false;
        check loose true);
    Alcotest.test_case "positive semantics demands every repaired clause"
      `Quick (fun () ->
        (* Under the loose threshold, m2's coverage differs between the
           positive (for-all) and negative (exists) semantics whenever the
           clause has a single repaired version but the example's ground
           clause has conflicting repairs: the positive check needs every
           repaired clause covered in SOME repair, which still holds, so
           both agree here — covered both ways. *)
        let loose =
          toy_ctx
            ~config:
              {
                (toy_config ()) with
                Config.sim = { Md.default_sim with Md.threshold = 0.6 };
              }
            ()
        in
        let prep = Coverage.prepare loose (hand_clause ()) in
        Alcotest.(check bool) "positive semantics" true
          (Coverage.covers_positive loose prep (ex "m2")));
    Alcotest.test_case "learning is deterministic in the seed" `Quick (fun () ->
        let run () =
          let ctx = toy_ctx () in
          let r = Learner.learn ctx ~pos:positives ~neg:negatives in
          Dlearn_logic.Definition.to_string r.Learner.definition
        in
        Alcotest.(check string) "same definition" (run ()) (run ()));
    Alcotest.test_case "prefilter preserves the coverage verdicts" `Quick
      (fun () ->
        (* The skeleton prefilter must be a pure necessary condition: the
           hand clause's verdicts on every example match the expected
           semantics computed above. *)
        let ctx = toy_ctx () in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        List.iter
          (fun e ->
            Alcotest.(check bool) "positive verdict" true
              (Coverage.covers_positive ctx prep e))
          positives;
        Alcotest.(check bool) "negative verdict" false
          (Coverage.covers_negative ctx prep (ex "m2")));
  ]


let weighting_tests =
  [
    Alcotest.test_case "weights reflect training precision" `Quick (fun () ->
        let ctx = toy_ctx () in
        let d = Dlearn_logic.Definition.empty "restricted" in
        let d = Dlearn_logic.Definition.add d (hand_clause ()) in
        let w = Weighting.weigh ctx d ~pos:positives ~neg:negatives in
        (match w.Weighting.weights with
        | [ weight ] ->
            (* 3 tp, 0 fp: (3+1)/(3+0+2) = 0.8 *)
            Alcotest.(check bool) "laplace weight" true
              (Float.abs (weight -. 0.8) < 1e-9)
        | _ -> Alcotest.fail "expected one weight"));
    Alcotest.test_case "score is the best covering weight" `Quick (fun () ->
        let ctx = toy_ctx () in
        let d = Dlearn_logic.Definition.empty "restricted" in
        let d = Dlearn_logic.Definition.add d (hand_clause ()) in
        let w = Weighting.weigh ctx d ~pos:positives ~neg:negatives in
        Alcotest.(check bool) "positive scores 0.8" true
          (Float.abs (Weighting.score ctx w (ex "m1") -. 0.8) < 1e-9);
        Alcotest.(check bool) "negative scores 0" true
          (Weighting.score ctx w (ex "m2") = 0.0));
    Alcotest.test_case "threshold separates the classes" `Quick (fun () ->
        let ctx = toy_ctx () in
        let d = Dlearn_logic.Definition.empty "restricted" in
        let d = Dlearn_logic.Definition.add d (hand_clause ()) in
        let w = Weighting.weigh ctx d ~pos:positives ~neg:negatives in
        List.iter
          (fun e ->
            Alcotest.(check bool) "accepted" true
              (Weighting.predict ctx w ~threshold:0.5 e))
          positives;
        Alcotest.(check bool) "rejected" false
          (Weighting.predict ctx w ~threshold:0.5 (ex "m2")));
  ]


(* ARMG output must θ-subsume the clause it generalises (§4.2: the result
   is the clause minus blocking literals). *)
let armg_property_tests =
  [
    Alcotest.test_case "armg output subsumes the input clause" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        List.iter
          (fun seed ->
            let bottom = Bottom_clause.build ctx Bottom_clause.Variable seed in
            List.iter
              (fun e' ->
                match Generalization.armg ctx bottom e' with
                | None -> ()
                | Some g ->
                    Alcotest.(check bool)
                      (Printf.sprintf "subsumes (%s -> %s)"
                         (Tuple.to_string seed) (Tuple.to_string e'))
                      true
                      (Subsumption.subsumes_bool g bottom))
              positives)
          positives);
    Alcotest.test_case "armg is monotone: output covers the target example"
      `Quick (fun () ->
        let ctx = toy_ctx () in
        let bottom = Bottom_clause.build ctx Bottom_clause.Variable (ex "m4") in
        List.iter
          (fun e' ->
            match Generalization.armg ctx bottom e' with
            | None -> ()
            | Some g ->
                let prep = Coverage.prepare ctx g in
                Alcotest.(check bool)
                  ("covers " ^ Tuple.to_string e')
                  true
                  (Coverage.covers_positive ctx prep e'))
          positives);
  ]


let explain_tests =
  [
    Alcotest.test_case "covered example gets an explanation" `Quick (fun () ->
        let ctx = toy_ctx () in
        match Explain.positive ctx (hand_clause ()) (ex "m1") with
        | Some text ->
            Alcotest.(check bool) "mentions the movies literal" true
              (let has sub =
                 let n = String.length sub in
                 let rec go i =
                   i + n <= String.length text
                   && (String.sub text i n = sub || go (i + 1))
                 in
                 go 0
               in
               has "imdb_movies" && has "-->")
        | None -> Alcotest.fail "expected an explanation");
    Alcotest.test_case "uncovered example yields no explanation" `Quick
      (fun () ->
        let ctx = toy_ctx () in
        Alcotest.(check bool) "none" true
          (Explain.positive ctx (hand_clause ()) (ex "m2") = None));
    Alcotest.test_case "repair-path coverage is explained as such" `Quick
      (fun () ->
        (* At threshold 0.6 the spurious match makes m2 covered only
           through the repair semantics; the explanation says so. *)
        let ctx =
          toy_ctx
            ~config:
              {
                (toy_config ()) with
                Config.sim = { Md.default_sim with Md.threshold = 0.6 };
              }
            ()
        in
        match Explain.positive ctx (hand_clause ()) (ex "m2") with
        | Some text ->
            Alcotest.(check bool) "mentions Definition 3.4" true
              (let sub = "Definition 3.4" in
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length text
                 && (String.sub text i n = sub || go (i + 1))
               in
               go 0)
        | None -> Alcotest.fail "expected a repair-path explanation");
  ]

let () =
  Alcotest.run "core"
    [
      ("bottom_clause", bottom_tests);
      ("coverage", coverage_tests);
      ("generalization", generalization_tests);
      ("learner", learner_tests);
      ("baselines", resolve_tests);
      ("cfd", cfd_tests);
      ("coverage_branches", coverage_branch_tests);
      ("commutativity", commutativity_tests);
      ("semantics", semantics_tests);
      ("weighting", weighting_tests);
      ("armg_properties", armg_property_tests);
      ("explain", explain_tests);
    ]
