(** Small ASCII plots for the figure-shaped experiment results: a labelled
    horizontal bar per data point, so the shape of a series is visible in
    the benchmark log without external tooling. *)

(** [series ~title ~unit points] renders one bar per (label, value); bars
    are scaled to the maximum value (40 columns). Values must be finite
    and non-negative. *)
val series : title:string -> unit_label:string -> (string * float) list -> string

(** [print_series ~title ~unit points] prints {!series}. *)
val print_series :
  title:string -> unit_label:string -> (string * float) list -> unit
