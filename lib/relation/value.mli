(** Typed attribute values.

    Values are the atoms stored in tuples. The paper works over string and
    numeric domains; [Null] models missing data (e.g. publication years
    absent from Google Scholar). Two values from different constructors are
    never equal, and [Null] is not equal to itself under [matches_null]
    semantics but is equal under structural [equal] so that values can be
    used as hash-table keys. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val is_null : t -> bool

(** [to_string v] renders [v] without quotes; [Null] renders as ["␀"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_string s] parses [s] as [Int] or [Float] when possible, otherwise
    returns [String s]. The empty string parses to [Null]. *)
val of_string : string -> t

(** [as_string v] returns the string payload of [String] values and the
    rendering of other values; used by the similarity operators, which are
    defined over string domains. *)
val as_string : t -> string
