open Dlearn_relation
open Dlearn_constraints
open Dlearn_eval

let confusion tp fp tn fn = { Metrics.tp; fp; tn; fn }

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %f, got %f" msg expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let metrics_tests =
  [
    Alcotest.test_case "perfect classifier" `Quick (fun () ->
        let c = confusion 10 0 20 0 in
        close "precision" 1.0 (Metrics.precision c);
        close "recall" 1.0 (Metrics.recall c);
        close "f1" 1.0 (Metrics.f1 c));
    Alcotest.test_case "empty prediction scores zero" `Quick (fun () ->
        let c = confusion 0 0 20 10 in
        close "precision" 0.0 (Metrics.precision c);
        close "f1" 0.0 (Metrics.f1 c));
    Alcotest.test_case "known values" `Quick (fun () ->
        let c = confusion 6 2 18 4 in
        close "precision" 0.75 (Metrics.precision c);
        close "recall" 0.6 (Metrics.recall c);
        close "f1" (2.0 *. 0.75 *. 0.6 /. 1.35) (Metrics.f1 c);
        close "accuracy" (24.0 /. 30.0) (Metrics.accuracy c));
    Alcotest.test_case "of_predictions counts correctly" `Quick (fun () ->
        let is_a t = Value.equal (Tuple.get t 0) (Value.String "a") in
        let c =
          Metrics.of_predictions ~predict:is_a
            ~pos:[ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "b" ] ]
            ~neg:[ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "c" ] ]
        in
        Alcotest.(check int) "tp" 1 c.Metrics.tp;
        Alcotest.(check int) "fp" 1 c.Metrics.fp;
        Alcotest.(check int) "tn" 1 c.Metrics.tn;
        Alcotest.(check int) "fn" 1 c.Metrics.fn);
    Alcotest.test_case "add sums componentwise" `Quick (fun () ->
        let c = Metrics.add (confusion 1 2 3 4) (confusion 10 20 30 40) in
        Alcotest.(check int) "tp" 11 c.Metrics.tp;
        Alcotest.(check int) "fn" 44 c.Metrics.fn);
  ]

let cv_tests =
  [
    Alcotest.test_case "folds partition both classes" `Quick (fun () ->
        let pos = List.init 23 (fun i -> i) in
        let neg = List.init 46 (fun i -> 100 + i) in
        let folds = Cross_validation.folds ~k:5 ~seed:1 ~pos ~neg in
        Alcotest.(check int) "5 folds" 5 (List.length folds);
        let all_test_pos =
          List.concat_map (fun f -> f.Cross_validation.test_pos) folds
        in
        Alcotest.(check int) "test positives cover all" 23
          (List.length (List.sort_uniq compare all_test_pos));
        List.iter
          (fun f ->
            Alcotest.(check int) "train+test = all (pos)" 23
              (List.length f.Cross_validation.train_pos
              + List.length f.Cross_validation.test_pos);
            List.iter
              (fun x ->
                Alcotest.(check bool) "no leakage" false
                  (List.mem x f.Cross_validation.train_pos))
              f.Cross_validation.test_pos)
          folds);
    Alcotest.test_case "deterministic in the seed" `Quick (fun () ->
        let pos = List.init 10 (fun i -> i) and neg = List.init 10 (fun i -> i) in
        let a = Cross_validation.folds ~k:5 ~seed:3 ~pos ~neg in
        let b = Cross_validation.folds ~k:5 ~seed:3 ~pos ~neg in
        Alcotest.(check bool) "same folds" true (a = b));
    Alcotest.test_case "too few examples rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Cross_validation.folds ~k:5 ~seed:1 ~pos:[ 1; 2 ] ~neg:[ 1 ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "mean and stddev" `Quick (fun () ->
        close "mean" 2.0 (Cross_validation.mean [ 1.0; 2.0; 3.0 ]);
        close "stddev" 1.0 (Cross_validation.stddev [ 1.0; 2.0; 3.0 ]);
        close "stddev of singleton" 0.0 (Cross_validation.stddev [ 5.0 ]));
  ]

let corrupt_tests =
  [
    Alcotest.test_case "typo changes the string" `Quick (fun () ->
        let rng = Random.State.make [| 5 |] in
        let distinct = ref 0 in
        for _ = 1 to 50 do
          if not (String.equal (Corrupt.typo rng "heterogeneous") "heterogeneous")
          then incr distinct
        done;
        (* A swap of two equal adjacent characters can be a no-op, but most
           edits change the string. *)
        Alcotest.(check bool) "mostly changed" true (!distinct > 40));
    Alcotest.test_case "typo keeps short strings" `Quick (fun () ->
        let rng = Random.State.make [| 5 |] in
        Alcotest.(check string) "single char" "x" (Corrupt.typo rng "x"));
    Alcotest.test_case "typo can touch the final character" `Quick (fun () ->
        (* The index is drawn per branch: drop must be able to remove the
           last character ("ab" -> "a") and duplicate must be able to
           double it ("ab" -> "abb"). With a shared [0, n-2] draw neither
           outcome could ever occur. *)
        let rng = Random.State.make [| 11 |] in
        let dropped_last = ref false and doubled_last = ref false in
        for _ = 1 to 500 do
          match Corrupt.typo rng "ab" with
          | "a" -> dropped_last := true
          | "abb" -> doubled_last := true
          | _ -> ()
        done;
        Alcotest.(check bool) "drop reaches last char" true !dropped_last;
        Alcotest.(check bool) "duplicate reaches last char" true !doubled_last);
    Alcotest.test_case "title variants stay recognisable" `Quick (fun () ->
        let rng = Random.State.make [| 5 |] in
        for _ = 1 to 20 do
          let v = Corrupt.movie_title_variant rng ~title:"The Dark Empire" ~year:1984 in
          Alcotest.(check bool) ("variant similar: " ^ v) true
            (Dlearn_similarity.Combined.paper "The Dark Empire (1984)" v > 0.6)
        done);
    Alcotest.test_case "abbreviate keeps the last name" `Quick (fun () ->
        let rng = Random.State.make [| 5 |] in
        for _ = 1 to 20 do
          let v = Corrupt.abbreviate_name rng "John Smith" in
          Alcotest.(check bool) ("ends with Smith: " ^ v) true
            (String.ends_with ~suffix:"Smith" v)
        done);
    Alcotest.test_case "maybe applies with probability" `Quick (fun () ->
        let rng = Random.State.make [| 5 |] in
        let never = Corrupt.maybe rng 0.0 (fun _ -> "changed") "same" in
        Alcotest.(check string) "p=0 never" "same" never;
        let always = Corrupt.maybe rng 1.0 (fun _ -> "changed") "same" in
        Alcotest.(check string) "p=1 always" "changed" always);
  ]

let check_workload w ~relations =
  Alcotest.(check int)
    (w.Workload.name ^ " relation count")
    relations
    (List.length (Database.relations w.Workload.db));
  Alcotest.(check bool) "has positives" true (List.length w.Workload.pos >= 5);
  Alcotest.(check bool) "negatives ~2x positives" true
    (List.length w.Workload.neg >= List.length w.Workload.pos);
  List.iter
    (fun (md : Md.t) ->
      Alcotest.(check bool) "md relations exist" true
        (Database.mem w.Workload.db md.Md.left_rel
        && Database.mem w.Workload.db md.Md.right_rel))
    w.Workload.mds;
  List.iter
    (fun (cfd : Cfd.t) ->
      Alcotest.(check bool) "cfd relation exists" true
        (Database.mem w.Workload.db cfd.Cfd.relation))
    w.Workload.cfds;
  (* The generated databases are clean before injection. *)
  Alcotest.(check int) "no violations before injection" 0
    (Violation.count w.Workload.cfds w.Workload.db)

let generator_tests =
  [
    Alcotest.test_case "imdb_omdb one MD" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:100 `One_md in
        check_workload w ~relations:10;
        Alcotest.(check int) "1 MD" 1 (List.length w.Workload.mds);
        Alcotest.(check int) "4 CFDs" 4 (List.length w.Workload.cfds));
    Alcotest.test_case "imdb_omdb three MDs" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:100 `Three_mds in
        Alcotest.(check int) "3 MDs" 3 (List.length w.Workload.mds));
    Alcotest.test_case "walmart_amazon" `Quick (fun () ->
        let w = Walmart_amazon.generate ~n:100 () in
        check_workload w ~relations:8;
        Alcotest.(check int) "6 CFDs" 6 (List.length w.Workload.cfds));
    Alcotest.test_case "dblp_scholar" `Quick (fun () ->
        let w = Dblp_scholar.generate ~n:80 () in
        check_workload w ~relations:4;
        Alcotest.(check int) "2 MDs" 2 (List.length w.Workload.mds);
        Alcotest.(check int) "2 CFDs" 2 (List.length w.Workload.cfds);
        (* One positive and one hard negative per paper. *)
        Alcotest.(check int) "80 positives" 80 (List.length w.Workload.pos);
        Alcotest.(check int) "80 negatives" 80 (List.length w.Workload.neg));
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        let a = Imdb_omdb.generate ~n:40 ~seed:5 `One_md in
        let b = Imdb_omdb.generate ~n:40 ~seed:5 `One_md in
        Alcotest.(check int) "same tuple count"
          (Database.total_tuples a.Workload.db)
          (Database.total_tuples b.Workload.db);
        Alcotest.(check bool) "same positives" true
          (List.for_all2 Tuple.equal a.Workload.pos b.Workload.pos));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Imdb_omdb.generate ~n:40 ~seed:5 `One_md in
        let b = Imdb_omdb.generate ~n:40 ~seed:6 `One_md in
        let titles w =
          Relation.distinct_values (Database.find w.Workload.db "imdb_movies") 1
          |> List.map Value.to_string |> List.sort String.compare
        in
        Alcotest.(check bool) "titles differ" false (titles a = titles b));
  ]

let injection_tests =
  [
    Alcotest.test_case "injection creates violations" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:60 `One_md in
        let w' = Workload.inject_violations w ~p:0.10 ~seed:3 in
        Alcotest.(check bool) "violations present" true
          (Violation.count w'.Workload.cfds w'.Workload.db > 0);
        Alcotest.(check int) "original untouched" 0
          (Violation.count w.Workload.cfds w.Workload.db));
    Alcotest.test_case "higher p injects more" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:60 `One_md in
        let v p =
          let w' = Workload.inject_violations w ~p ~seed:3 in
          Violation.count w'.Workload.cfds w'.Workload.db
        in
        Alcotest.(check bool) "monotone" true (v 0.20 > v 0.05));
    Alcotest.test_case "p = 0 is the identity" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:60 `One_md in
        let w' = Workload.inject_violations w ~p:0.0 ~seed:3 in
        Alcotest.(check bool) "same database value" true (w'.Workload.db == w.Workload.db));
    Alcotest.test_case "minimal repair cleans an injected workload" `Quick
      (fun () ->
        let w = Imdb_omdb.generate ~n:60 `One_md in
        let w' = Workload.inject_violations w ~p:0.10 ~seed:3 in
        let repaired = Minimal_repair.repair w'.Workload.cfds w'.Workload.db in
        Alcotest.(check int) "clean after repair" 0
          (Violation.count w'.Workload.cfds repaired));
    Alcotest.test_case "with_examples subsamples" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:100 `One_md in
        let w' = Workload.with_examples w ~pos:5 ~neg:10 ~seed:3 in
        Alcotest.(check int) "5 positives" 5 (List.length w'.Workload.pos);
        Alcotest.(check int) "10 negatives" 10 (List.length w'.Workload.neg);
        List.iter
          (fun e ->
            Alcotest.(check bool) "subset" true
              (List.exists (Tuple.equal e) w.Workload.pos))
          w'.Workload.pos);
  ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"f1 is bounded by precision and recall" ~count:300
         QCheck.(quad (0 -- 50) (0 -- 50) (0 -- 50) (0 -- 50))
         (fun (tp, fp, tn, fn) ->
           let c = confusion tp fp tn fn in
           let f1 = Metrics.f1 c in
           f1 >= 0.0
           && f1 <= max (Metrics.precision c) (Metrics.recall c) +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cv folds preserve class sizes" ~count:50
         QCheck.(pair (5 -- 40) (5 -- 40))
         (fun (np, nn) ->
           let pos = List.init np Fun.id and neg = List.init nn Fun.id in
           Cross_validation.folds ~k:5 ~seed:0 ~pos ~neg
           |> List.for_all (fun f ->
                  List.length f.Cross_validation.train_pos
                  + List.length f.Cross_validation.test_pos
                  = np
                  && List.length f.Cross_validation.train_neg
                     + List.length f.Cross_validation.test_neg
                     = nn)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"typo changes length by at most one" ~count:300
         QCheck.(pair small_int (string_of_size (QCheck.Gen.int_range 2 20)))
         (fun (seed, s) ->
           let rng = Random.State.make [| seed |] in
           abs (String.length (Corrupt.typo rng s) - String.length s) <= 1));
  ]


let plot_tests =
  [
    Alcotest.test_case "bars scale to the maximum" `Quick (fun () ->
        let out =
          Ascii_plot.series ~title:"t" ~unit_label:"u"
            [ ("a", 1.0); ("b", 2.0) ]
        in
        let lines = String.split_on_char '\n' out in
        (match lines with
        | _ :: a :: b :: _ ->
            let count_hashes s =
              String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 s
            in
            Alcotest.(check int) "b has 40 hashes" 40 (count_hashes b);
            Alcotest.(check int) "a has 20 hashes" 20 (count_hashes a)
        | _ -> Alcotest.fail "unexpected shape"));
    Alcotest.test_case "all-zero series renders empty bars" `Quick (fun () ->
        let out =
          Ascii_plot.series ~title:"t" ~unit_label:"u" [ ("a", 0.0) ]
        in
        Alcotest.(check bool) "no hashes" false (String.contains out '#'));
    Alcotest.test_case "labels are aligned" `Quick (fun () ->
        let out =
          Ascii_plot.series ~title:"t" ~unit_label:"u"
            [ ("x", 1.0); ("long-label", 1.0) ]
        in
        let lines = String.split_on_char '\n' out in
        (match lines with
        | _ :: a :: b :: _ ->
            Alcotest.(check int) "bars start at the same column"
              (String.index a '|') (String.index b '|')
        | _ -> Alcotest.fail "unexpected shape"));
  ]

let describe_tests =
  [
    Alcotest.test_case "describe mentions the counts" `Quick (fun () ->
        let w = Imdb_omdb.generate ~n:30 `One_md in
        let d = Workload.describe w in
        Alcotest.(check bool) "mentions MDs" true
          (String.length d > 0
          &&
          let has sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length d
              && (String.sub d i n = sub || go (i + 1))
            in
            go 0
          in
          has "1 MDs" && has "4 CFDs"));
  ]

(* {2 Scale generator} *)

let with_temp_dir f =
  let dir = Filename.temp_file "dlearn_sgen" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scale_gen_tests =
  let small = { Scale_gen.default with Scale_gen.tuples = 2000 } in
  [
    Alcotest.test_case "equal configs produce byte-identical datasets" `Quick
      (fun () ->
        with_temp_dir (fun dir1 ->
            with_temp_dir (fun dir2 ->
                let s1 = Scale_gen.generate ~config:small dir1 in
                let s2 = Scale_gen.generate ~config:small dir2 in
                Alcotest.(check int) "same bytes" s1.Scale_gen.bytes
                  s2.Scale_gen.bytes;
                List.iter
                  (fun name ->
                    Alcotest.(check string)
                      (name ^ " byte-identical")
                      (read_file (Storage.csv_path dir1 name))
                      (read_file (Storage.csv_path dir2 name)))
                  [ Scale_gen.src_name; Scale_gen.dst_name ])));
    Alcotest.test_case "different seeds produce different datasets" `Quick
      (fun () ->
        with_temp_dir (fun dir1 ->
            with_temp_dir (fun dir2 ->
                ignore (Scale_gen.generate ~config:small dir1);
                ignore
                  (Scale_gen.generate
                     ~config:{ small with Scale_gen.seed = 8 }
                     dir2);
                Alcotest.(check bool) "src differs" true
                  (read_file (Storage.csv_path dir1 Scale_gen.src_name)
                  <> read_file (Storage.csv_path dir2 Scale_gen.src_name)))));
    Alcotest.test_case "row counts and dirt follow the config" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let s = Scale_gen.generate ~config:small dir in
            Alcotest.(check (list (pair string int)))
              "rows per relation"
              [
                (Scale_gen.src_name, small.Scale_gen.tuples);
                (Scale_gen.dst_name, small.Scale_gen.tuples);
              ]
              s.Scale_gen.relations;
            (* 10% title dirt (twice: variant + typo) over 2000 rows: the
               corrupted count is concentrated around ~19%; wide bounds
               keep this a behaviour pin, not a statistics test. *)
            Alcotest.(check bool)
              (Printf.sprintf "corrupted in range: %d" s.Scale_gen.corrupted)
              true
              (s.Scale_gen.corrupted > 100 && s.Scale_gen.corrupted < 800);
            Alcotest.(check bool)
              (Printf.sprintf "duplicates in range: %d" s.Scale_gen.duplicates)
              true
              (s.Scale_gen.duplicates > 20 && s.Scale_gen.duplicates < 400)));
    Alcotest.test_case "dataset loads back through Storage" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let config = { small with Scale_gen.tuples = 300 } in
            ignore (Scale_gen.generate ~config dir);
            let db = Storage.load dir in
            let src = Database.find db Scale_gen.src_name in
            Alcotest.(check int) "src rows" 300 (Relation.cardinality src);
            (* The manifest types pid as int and price as float, and the
               loader applies it. *)
            let t = Relation.get src 0 in
            (match Tuple.get t 0 with
            | Value.Int _ -> ()
            | v -> Alcotest.failf "pid not an int: %s" (Value.to_string v));
            match Tuple.get t 4 with
            | Value.Float _ -> ()
            | v -> Alcotest.failf "price not a float: %s" (Value.to_string v)));
    Alcotest.test_case "zero dirt leaves every title clean" `Quick (fun () ->
        with_temp_dir (fun dir ->
            let config =
              { small with Scale_gen.tuples = 500; dirt_rate = 0.0 }
            in
            let s = Scale_gen.generate ~config dir in
            Alcotest.(check int) "no corrupted titles" 0 s.Scale_gen.corrupted));
    Alcotest.test_case "invalid configs are rejected" `Quick (fun () ->
        List.iter
          (fun config ->
            with_temp_dir (fun dir ->
                Alcotest.(check bool) "raises" true
                  (try
                     ignore (Scale_gen.generate ~config dir);
                     false
                   with Invalid_argument _ -> true)))
          [
            { Scale_gen.default with Scale_gen.tuples = 0 };
            { Scale_gen.default with Scale_gen.dirt_rate = 1.5 };
            { Scale_gen.default with Scale_gen.duplicate_rate = -0.1 };
            { Scale_gen.default with Scale_gen.vocab = 4 };
          ]);
  ]

let () =
  Alcotest.run "eval"
    [
      ("metrics", metrics_tests);
      ("cross_validation", cv_tests);
      ("corrupt", corrupt_tests);
      ("generators", generator_tests);
      ("injection", injection_tests);
      ("properties", qcheck_tests);
      ("ascii_plot", plot_tests);
      ("describe", describe_tests);
      ("scale_gen", scale_gen_tests);
    ]
