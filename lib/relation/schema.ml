type domain =
  | Dint
  | Dfloat
  | Dstring

type attribute = {
  attr_name : string;
  domain : domain;
}

type t = {
  name : string;
  attrs : attribute array;
  positions : (string, int) Hashtbl.t;
}

let make name attributes =
  if attributes = [] then invalid_arg "Schema.make: empty attribute list";
  let attrs = Array.of_list attributes in
  let positions = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem positions a.attr_name then
        invalid_arg
          (Printf.sprintf "Schema.make: duplicate attribute %s in %s"
             a.attr_name name);
      Hashtbl.add positions a.attr_name i)
    attrs;
  { name; attrs; positions }

let string_attrs name names =
  make name (List.map (fun n -> { attr_name = n; domain = Dstring }) names)

let name t = t.name
let arity t = Array.length t.attrs
let attributes t = t.attrs
let attr_name t i = t.attrs.(i).attr_name
let domain t i = t.attrs.(i).domain

let position t attr =
  match Hashtbl.find_opt t.positions attr with
  | Some i -> i
  | None -> raise Not_found

let comparable t i u j = domain t i = domain u j

let equal a b =
  String.equal a.name b.name
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 (fun x y -> x = y) a.attrs b.attrs

let pp fmt t =
  Format.fprintf fmt "%s(%s)" t.name
    (String.concat ", "
       (Array.to_list (Array.map (fun a -> a.attr_name) t.attrs)))
