module TermMap = Map.Make (Term)

type t = {
  parent : Term.t TermMap.t ref;  (* union-find forest over terms *)
  sims : (Term.t * Term.t) list;  (* raw similarity literal pairs *)
}

let rec find t x =
  match TermMap.find_opt x !(t.parent) with
  | None -> x
  | Some p ->
      let root = find t p in
      if not (Term.equal root p) then t.parent := TermMap.add x root !(t.parent);
      root

let union t x y =
  let rx = find t x and ry = find t y in
  if not (Term.equal rx ry) then t.parent := TermMap.add rx ry !(t.parent)

let of_body body =
  let t = { parent = ref TermMap.empty; sims = [] } in
  let sims = ref [] in
  List.iter
    (function
      | Literal.Eq (x, y) -> union t x y
      | Literal.Sim (x, y) -> sims := (x, y) :: !sims
      | Literal.Rel _ | Literal.Neq _ | Literal.Repair _ -> ())
    body;
  { t with sims = !sims }

let of_clause (c : Clause.t) = of_body c.body

let eq t x y =
  Term.equal x y
  || Term.equal (find t x) (find t y)
  ||
  match x, y with
  | Term.Const a, Term.Const b -> Dlearn_relation.Value.equal a b
  | (Term.Var _ | Term.Const _), _ -> false

let neq t x y = not (eq t x y)

let sim t x y =
  eq t x y
  || List.exists
       (fun (a, b) ->
         (eq t a x && eq t b y) || (eq t a y && eq t b x))
       t.sims

let eval_cond t c = Cond.eval ~eq:(eq t) ~neq:(neq t) ~sim:(sim t) c
