(** Consistency of CFD sets (§2.3).

    A set of CFDs over one relation can be unsatisfiable by any non-empty
    instance — e.g. [(A → B, - || b1)] and [(A → B, - || b2)] with
    [b1 ≠ b2]: every tuple's [B] would have to equal both constants.
    (Note that pairs of the shape [(A → B, a1 || b1)], [(B → A, b1 || a2)]
    are {e satisfiable}: the tuple [(a2, b1)] satisfies both.) By the
    classical reduction (Bohannon et al. 2007), a CFD set over a single
    relation is consistent iff {e one} tuple can satisfy every CFD, where
    a lone tuple [t] violates [(X → A, tp)] exactly when [t\[X\] ≍ tp\[X\]]
    but [t\[A\]] fails to match a constant [tp\[A\]]. We decide this by
    backtracking over the finitely many relevant values per attribute
    (pattern constants plus one fresh value). *)

(** [single_relation_consistent cfds] decides consistency of the CFDs,
    which must all range over the same relation.
    @raise Invalid_argument when they do not, or when [cfds] is empty. *)
val single_relation_consistent : Cfd.t list -> bool

(** [consistent cfds] groups the CFDs by relation and checks each group;
    CFDs over different relations never interact. An empty set is
    consistent. *)
val consistent : Cfd.t list -> bool

(** [single_relation_core cfds] is [None] when the set is consistent, and
    otherwise [Some core] where [core] is a minimal inconsistent subset
    (removing any one CFD from it restores satisfiability) — the witness
    the static analyzer reports. Preconditions as for
    {!single_relation_consistent}. *)
val single_relation_core : Cfd.t list -> Cfd.t list option

(** [inconsistent_cores cfds] groups the CFDs by relation and returns one
    minimal inconsistent core per unsatisfiable group, ordered by relation
    name; the empty list means the whole set is consistent. *)
val inconsistent_cores : Cfd.t list -> Cfd.t list list
