let pad n s =
  let left = String.make (n - 1) '#' and right = String.make (n - 1) '$' in
  left ^ String.lowercase_ascii s ^ right

let grams ~n s =
  if n <= 0 then invalid_arg "Ngram.grams: n must be positive";
  if String.length s = 0 then []
  else begin
    let p = pad n s in
    let count = String.length p - n + 1 in
    List.init count (fun i -> String.sub p i n)
  end

let gram_set ~n s = List.sort_uniq String.compare (grams ~n s)

let overlap_counts ~n a b =
  let ga = gram_set ~n a and gb = gram_set ~n b in
  let tbl = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace tbl g ()) ga;
  let inter = List.length (List.filter (Hashtbl.mem tbl) gb) in
  (inter, List.length ga, List.length gb)

let jaccard ~n a b =
  let inter, ca, cb = overlap_counts ~n a b in
  let union = ca + cb - inter in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

let dice ~n a b =
  let inter, ca, cb = overlap_counts ~n a b in
  if ca + cb = 0 then 1.0
  else 2.0 *. float_of_int inter /. float_of_int (ca + cb)
