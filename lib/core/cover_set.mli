(** Dense coverage sets for the incremental coverage engine.

    [Bitset] is an immutable set of dense example ids (see
    {!Context.example_id}) packed into [Bytes]; [entry] is the per-clause
    cache record of known coverage verdicts; [Clause_tbl] is the hashtable
    the cache is keyed on (canonical clause forms). See docs/COVERAGE.md. *)

module Bitset : sig
  type t
  (** Immutable bitset. Bit [i] lives at byte [i lsr 3], position
      [i land 7]; the representation is trimmed (no trailing zero bytes),
      so equal sets are structurally equal. *)

  val empty : t
  val is_empty : t -> bool
  val equal : t -> t -> bool

  val mem : t -> int -> bool
  (** [mem t i] — [false] for any id outside the backing bytes
      (including negative ids), never an error. *)

  val add : t -> int -> t
  (** Functional add; raises [Invalid_argument] on a negative id. *)

  val add_list : t -> int list -> t
  (** Batch add with a single allocation. *)

  val of_list : int list -> t
  val singleton : int -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val cardinal : t -> int
  (** Population count (256-entry table, one lookup per byte). *)

  val iter : (int -> unit) -> t -> unit
  (** Iterates set bits in increasing id order. *)

  val to_list : t -> int list
  (** Set bits in increasing id order. *)

  val capacity : t -> int
  (** [8 * length in bytes] — ids [>= capacity] are definitely absent. *)

  val of_packed : Bytes.t -> t
  (** Adopt a raw packed buffer (e.g. [Pool.fill] output); copies and
      trims, so later mutation of the argument is not observed. *)

  val test_packed : Bytes.t -> int -> bool
  (** Read bit [i] of a raw packed buffer without adopting it. *)
end

type entry = {
  lock : Mutex.t;
  mutable pos_tested : Bitset.t;
  mutable pos_covered : Bitset.t;
  mutable neg_tested : Bitset.t;
  mutable neg_covered : Bitset.t;
}
(** Known coverage verdicts for one canonical clause: [*_tested] holds the
    example ids whose verdict is recorded, [*_covered ⊆ *_tested] the ones
    that came out covered. All four fields are read and merged under
    [lock]; merges are monotone (sets only grow). *)

val entry : unit -> entry
(** A fresh all-empty entry with its own lock. *)

val invalidate : entry -> Bitset.t -> unit
(** [invalidate e mask] forgets the verdicts of the ids in [mask] (they
    leave the tested and covered sets of both polarities, under the
    entry's lock) — the per-example invalidation a committed tuple delta
    triggers; every other verdict survives. *)

module Clause_tbl : Hashtbl.S with type key = Dlearn_logic.Clause.t
(** Hashtable keyed on canonical clauses ([Clause.canonical] forms):
    structural equality, polymorphic hash of [(head, body)]. *)
