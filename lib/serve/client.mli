(** Blocking client for the serve protocol: one connected Unix-domain
    socket, strictly one in-flight request. *)

type t

val connect : string -> t
(** Connect to the socket at the path.
    @raise Unix.Unix_error when nothing listens there. *)

val connect_retry : ?attempts:int -> ?delay:float -> string -> t
(** {!connect}, retrying on [ENOENT]/[ECONNREFUSED] while the server is
    still starting (default: 50 attempts, 0.1 s apart). *)

val request : t -> Json.t -> Json.t
(** Send one request frame and block for the response frame.
    @raise End_of_file when the server closed the connection.
    @raise Protocol.Protocol_error on a malformed response. *)

val close : t -> unit
(** Idempotent. *)
