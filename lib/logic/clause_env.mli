(** Equality and similarity environment of a clause.

    Conditions of repair literals are evaluated "considering the
    (restriction) literals in the clause" (§3.2): [u = v] holds if the
    terms are identical, are equal constants, or are connected by a chain
    of equality literals; [u ≠ v] is its negation; [u ≈ v] holds if they
    are equal in that sense or some similarity literal links their
    equality classes. *)

type t

(** [of_body body] builds the environment from the clause's restriction
    literals (other literals are ignored). *)
val of_body : Literal.t list -> t

val of_clause : Clause.t -> t

val eq : t -> Term.t -> Term.t -> bool

val neq : t -> Term.t -> Term.t -> bool

val sim : t -> Term.t -> Term.t -> bool

(** [eval_cond t c] evaluates a repair condition under this environment. *)
val eval_cond : t -> Cond.t -> bool
