(** Shared learning context: the database, its constraints, the
    precomputed per-attribute similarity indexes (§5 precomputes similar
    value pairs), and the cache of ground bottom clauses with their repair
    enumerations — the most expensive objects of a learning run. *)

type ground_entry = {
  ground : Dlearn_logic.Clause.t;
  lock : Mutex.t;
      (** guards all mutable fields below — the coverage engine memoizes
          into them from several domains at once; take it through
          [Coverage]'s accessors rather than reading the fields directly
          in parallel code *)
  mutable cfd_apps : Dlearn_logic.Clause.t list option;
  mutable repairs : Dlearn_logic.Clause.t list option;
  mutable target : Dlearn_logic.Subsumption.target option;
      (** the ground clause prepared for matching, built on first use *)
  mutable repair_targets : Dlearn_logic.Subsumption.target list option;
  mutable prefilter_target : Dlearn_logic.Subsumption.target option;
      (** the ground clause's relational part with equality literals
          linking every potentially-merged term pair — the target of the
          necessary-condition check that gates repair enumeration *)
}

type cover_stats = {
  tested : Dlearn_obs.Obs.counter;
      (** coverage verdicts computed by actually running a predicate *)
  inherited : Dlearn_obs.Obs.counter;
      (** positive verdicts inherited from the ARMG parent without testing *)
  cache_hits : Dlearn_obs.Obs.counter;
      (** verdicts found in the cross-seed cover cache *)
  pruned : Dlearn_obs.Obs.counter;
      (** candidates whose negative sweep was cut short by the score bound *)
}
(** Cumulative incremental-coverage counters, registered process-wide on
    the {!Dlearn_obs.Obs} registry under [coverage.*] (every context
    shares them; diff {!Dlearn_obs.Obs.value} around a run to attribute
    it). Logged by the learner on [dlearn.learner]. Never bumped when
    [Config.incremental_coverage] is off. *)

type t = {
  config : Config.t;
  db : Dlearn_relation.Database.t;
  mds : Dlearn_constraints.Md.t list;
  cfds : Dlearn_constraints.Cfd.t list;
  mutable rng : Random.State.t;
      (** the learner's sampling stream; {!reset_rng} rewinds it so a
          warm-context learn replays a cold run's draws exactly *)
  sim_indexes : (string * int, Dlearn_similarity.Sim_index.t) Hashtbl.t;
  sim_lock : Mutex.t;  (** guards [sim_indexes] *)
  ground_cache : (string, ground_entry) Hashtbl.t;
  ground_lock : Mutex.t;  (** guards [ground_cache] *)
  example_ids : (string, int) Hashtbl.t;
      (** dense example-id registry ([example_key] → id); access through
          {!example_id} *)
  example_lock : Mutex.t;  (** guards [example_ids] *)
  cover_cache : Cover_set.entry Cover_set.Clause_tbl.t;
      (** canonical clause → known coverage verdicts, shared across seeds;
          access through {!cover_entry} *)
  cover_lock : Mutex.t;  (** guards [cover_cache] (not the entries) *)
  cover_stats : cover_stats;
  armg_cache :
    (string, (string, Dlearn_logic.Clause.t option) Hashtbl.t) Hashtbl.t;
      (** example key → canonical parent-clause rendering → memoized ARMG
          result; access through {!armg_cached}. Entries live exactly as
          long as the example's ground entry ({!apply_delta} drops both
          together). *)
  armg_lock : Mutex.t;  (** guards [armg_cache] *)
}

(** [create config db mds cfds] prepares the context: one similarity index
    per (relation, attribute) compared by some MD (skipped in
    exact-matching mode). MDs mentioning the target relation or relations
    absent from [db] are rejected with [Invalid_argument] — the paper's
    workloads key every target on an identifier that appears exactly. *)
val create :
  Config.t ->
  Dlearn_relation.Database.t ->
  Dlearn_constraints.Md.t list ->
  Dlearn_constraints.Cfd.t list ->
  t

(** [pool t] is the shared domain pool of [config.num_domains] domains
    the coverage engine fans out on; size 1 is the sequential path. *)
val pool : t -> Dlearn_parallel.Pool.t

(** [reset_rng t] rewinds the sampling stream to [config.seed]. A
    long-lived context (the serve loop) calls this before every learn
    request so warm learns are byte-identical to cold runs. *)
val reset_rng : t -> unit

(** [apply_delta t changes] invalidates exactly the state a committed
    tuple delta can touch, and returns the number of examples
    invalidated. [changes] lists, per changed relation, every touched
    tuple (new values for inserts, new and previous for updates —
    {!Dlearn_relation.Vdb.changed_tuples} produces this shape). An
    example is invalidated iff some changed value is equal to some
    constant of its cached ground bottom clause, or — at an attribute
    position some MD compares — similar to one under that MD's
    effective operator; a sound over-approximation of "the bottom
    clause could change" (docs/SERVE.md): its ground entry and memoized
    ARMG results are dropped and its bits leave every cover-cache
    entry. Similarity
    indexes over changed relations are dropped and rebuild lazily.
    Counters: [delta.commits], [delta.invalidated_examples],
    [delta.sim_indexes_dropped]. Callers must order this against
    concurrent coverage requests (the serve loop holds the writer
    lock). *)
val apply_delta :
  t -> (string * Dlearn_relation.Tuple.t list) list -> int

(** [sim_index t rel pos] is the index over the distinct values of the
    attribute (built lazily on first use; safe to call from any domain). *)
val sim_index : t -> string -> int -> Dlearn_similarity.Sim_index.t

(** [example_key e] is the cache key of a training example. *)
val example_key : Dlearn_relation.Tuple.t -> string

(** [example_id t e] interns [e] into the dense id space shared by all
    coverage bitsets, assigning ids in first-seen order. Duplicate tuples
    share one id. Safe from any domain. *)
val example_id : t -> Dlearn_relation.Tuple.t -> int

(** Number of distinct examples interned so far. *)
val example_count : t -> int

(** [cover_entry t clause] is the cover-cache entry of [clause], created
    empty on first use. [clause] {b must} be in [Clause.canonical] form —
    the cache identifies clauses up to body order and duplicates. *)
val cover_entry : t -> Dlearn_logic.Clause.t -> Cover_set.entry

(** [armg_cached t e' ckey compute] memoizes one ARMG generalization
    against positive example [e']: [ckey] must be the canonical rendering
    of the parent clause ([Clause.to_string (Clause.canonical c)]), and
    [compute] the generalization itself. ARMG is deterministic in the
    parent clause and [e']'s ground bottom clause, so a hit returns
    byte-identical output to recomputing; {!apply_delta} drops an
    affected example's entries together with its ground entry. Safe from
    any domain (concurrent misses may duplicate [compute]; the
    deterministic result makes the race benign). Counters:
    [armg.cache_hits], [armg.computed]. *)
val armg_cached :
  t ->
  Dlearn_relation.Tuple.t ->
  string ->
  (unit -> Dlearn_logic.Clause.t option) ->
  Dlearn_logic.Clause.t option

(** [is_constant_attr t rel pos] holds when clauses represent that
    attribute's values as constants. *)
val is_constant_attr : t -> string -> int -> bool

(** [is_searchable_attr t rel pos] holds when the exact relevant-tuple
    search may look values up in that attribute (always true when no
    searchable attributes are declared). *)
val is_searchable_attr : t -> string -> int -> bool
