(** Minimal delimited-text import/export for relations.

    Uses a configurable single-character delimiter (default [','].) Fields
    containing the delimiter, double quotes or newlines are quoted with
    ["..."] and embedded quotes doubled, per RFC 4180's core rules. This is
    enough to round-trip the generated workloads and to let users load
    their own extracts. *)

(** [parse_line ?delim s] splits one record into fields. *)
val parse_line : ?delim:char -> string -> string list

(** [render_line ?delim fields] renders one record (no trailing newline). *)
val render_line : ?delim:char -> string list -> string

(** [load ?delim schema path] reads every line of [path] into a fresh
    relation; each field is parsed with {!Value.of_string}. Records are
    one per line: embedded newlines in fields are not supported by the
    reader (the writer quotes them, but such files need a full CSV
    parser).
    @raise Invalid_argument on an arity mismatch (with the line number). *)
val load : ?delim:char -> Schema.t -> string -> Relation.t

(** [save ?delim relation path] writes one record per tuple. *)
val save : ?delim:char -> Relation.t -> string -> unit
