type measure =
  | Paper
  | Smith_waterman
  | Levenshtein
  | Jaro_winkler
  | Ngram_jaccard of int

let default = Paper

let similarity ?(measure = default) a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  match measure with
  | Paper ->
      (Smith_waterman.similarity a b +. Length_similarity.similarity a b)
      /. 2.0
  | Smith_waterman -> Smith_waterman.similarity a b
  | Levenshtein -> Levenshtein.similarity a b
  | Jaro_winkler -> Jaro_winkler.similarity a b
  | Ngram_jaccard n -> Ngram.jaccard ~n a b

let paper a b = similarity ~measure:Paper a b

let measure_name = function
  | Paper -> "swg+length"
  | Smith_waterman -> "smith-waterman-gotoh"
  | Levenshtein -> "levenshtein"
  | Jaro_winkler -> "jaro-winkler"
  | Ngram_jaccard n -> Printf.sprintf "%d-gram-jaccard" n
