type severity =
  | Error
  | Warning
  | Hint

type subject =
  | Constraint of string
  | Clause_head of string
  | Attribute of {
      relation : string;
      attr : string;
    }
  | Relation of string
  | General

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
  witness : string option;
}

let make severity ~code ~subject ?witness message =
  { code; severity; subject; message; witness }

let error = make Error
let warning = make Warning
let hint = make Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let subject_to_string = function
  | Constraint id -> "constraint " ^ id
  | Clause_head pred -> "clause " ^ pred
  | Attribute { relation; attr } -> relation ^ "." ^ attr
  | Relation name -> "relation " ^ name
  | General -> "input"

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let sort ds =
  List.stable_sort
    (fun a b ->
      match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 ->
              String.compare (subject_to_string a.subject)
                (subject_to_string b.subject)
          | c -> c)
      | c -> c)
    ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count severity ds = List.length (List.filter (fun d -> d.severity = severity) ds)

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code
    (subject_to_string d.subject)
    d.message;
  match d.witness with
  | None -> ()
  | Some w -> Format.fprintf fmt "@,  witness: %s" w

let pp_report fmt ds =
  match ds with
  | [] -> Format.fprintf fmt "no diagnostics"
  | ds ->
      let ds = sort ds in
      Format.pp_open_vbox fmt 0;
      List.iter (fun d -> Format.fprintf fmt "%a@," pp d) ds;
      Format.fprintf fmt "%d error(s), %d warning(s), %d hint(s)"
        (count Error ds) (count Warning ds) (count Hint ds);
      Format.pp_close_box fmt ()

let report_to_string ds = Format.asprintf "%a" pp_report ds

(* Hand-rolled JSON escaping: the toolchain ships no JSON library and the
   needs here are modest. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let subject_json = function
  | Constraint id -> Printf.sprintf {|{"kind":"constraint","id":%s}|} (json_string id)
  | Clause_head pred -> Printf.sprintf {|{"kind":"clause","head":%s}|} (json_string pred)
  | Attribute { relation; attr } ->
      Printf.sprintf {|{"kind":"attribute","relation":%s,"attr":%s}|}
        (json_string relation) (json_string attr)
  | Relation name -> Printf.sprintf {|{"kind":"relation","name":%s}|} (json_string name)
  | General -> {|{"kind":"general"}|}

let to_json d =
  let witness =
    match d.witness with
    | None -> ""
    | Some w -> Printf.sprintf {|,"witness":%s|} (json_string w)
  in
  Printf.sprintf {|{"code":%s,"severity":%s,"subject":%s,"message":%s%s}|}
    (json_string d.code)
    (json_string (severity_to_string d.severity))
    (subject_json d.subject) (json_string d.message) witness

let report_to_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json (sort ds)))
