(** The similarity operators exposed to the rest of the system.

    The paper's operator (§5) is the average of the Smith-Waterman-Gotoh
    and Length similarity functions; the others are alternatives a user can
    select (the paper notes its results are orthogonal to the operator's
    implementation). All operators lowercase their inputs first, since the
    datasets mix title-casing conventions. *)

type measure =
  | Paper  (** average of Smith-Waterman-Gotoh and Length similarity *)
  | Smith_waterman
  | Levenshtein
  | Jaro_winkler
  | Ngram_jaccard of int  (** Jaccard over character n-grams *)

val default : measure

(** [similarity ?measure a b] ∈ [0, 1]. *)
val similarity : ?measure:measure -> string -> string -> float

(** [paper a b] is [similarity ~measure:Paper a b]. *)
val paper : string -> string -> float

val measure_name : measure -> string
