(* Minimal JSON: the wire format of the serve protocol. The repo already
   renders JSON by hand in several places (diagnostics, Obs reports);
   the server also has to {e parse} requests, so this module closes the
   loop without a new dependency. Only what RFC 8259 requires for this
   protocol: objects, arrays, strings with escapes, ints, floats, bools,
   null. Unicode escapes decode to UTF-8; non-ASCII bytes pass through
   untouched in both directions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* {2 Printing} *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* {2 Parsing} *)

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur =
  if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur ("expected " ^ word)

let utf8_of_code buf code =
  (* Encode one Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 cur =
  let code = ref 0 in
  for _ = 1 to 4 do
    (match peek cur with
    | Some c when c >= '0' && c <= '9' ->
        code := (!code * 16) + (Char.code c - Char.code '0')
    | Some c when c >= 'a' && c <= 'f' ->
        code := (!code * 16) + (Char.code c - Char.code 'a' + 10)
    | Some c when c >= 'A' && c <= 'F' ->
        code := (!code * 16) + (Char.code c - Char.code 'A' + 10)
    | _ -> fail cur "bad \\u escape");
    advance cur
  done;
  !code

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance cur;
            let code = hex4 cur in
            let code =
              (* Surrogate pair: a high surrogate must be followed by
                 [\uDC00-\uDFFF]. *)
              if code >= 0xD800 && code <= 0xDBFF then begin
                expect cur '\\';
                expect cur 'u';
                let low = hex4 cur in
                if low < 0xDC00 || low > 0xDFFF then
                  fail cur "bad surrogate pair";
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              end
              else code
            in
            utf8_of_code buf code;
            go ()
        | _ -> fail cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let continue = function
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
    | _ -> false
  in
  while continue (peek cur) do
    advance cur
  done;
  let s = String.sub cur.text start (cur.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail cur ("bad number " ^ s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> String (parse_string cur)
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          fields := (key, v) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ()
          | Some '}' -> advance cur
          | _ -> fail cur "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              elements ()
          | Some ']' -> advance cur
          | _ -> fail cur "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let cur = { text = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* {2 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_field key v =
  match member key v with Some (String s) -> Some s | _ -> None

let int_field key v = match member key v with Some (Int i) -> Some i | _ -> None

let list_field key v =
  match member key v with Some (List l) -> Some l | _ -> None
