type t = {
  target : Dlearn_relation.Schema.t;
  depth : int;
  km : int;
  sample_size : int;
  sim : Dlearn_constraints.Md.sim_spec;
  exact_matching : bool;
  constant_attrs : (string * string) list;
  searchable_attrs : (string * string) list;
  sample_positives : int;
  min_pos : int;
  min_precision : float;
  max_clauses : int;
  armg_beam : int;
  climb_neg_cap : int;
  subsumption_budget : int;
  repair_state_cap : int;
  repair_result_cap : int;
  cfd_rounds : int;
  allow_dirty_constraints : bool;
  num_domains : int;
  incremental_coverage : bool;
  normalize_clauses : bool;
  subsumption_engine : Dlearn_logic.Subsumption.engine;
  trace : string option;
  seed : int;
}

(* DLEARN_NUM_DOMAINS overrides the hardware default so CI (and any batch
   environment) can pin the parallel or the sequential path without
   plumbing a flag through every entry point. *)
let default_num_domains () =
  match Sys.getenv_opt "DLEARN_NUM_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* DLEARN_INCREMENTAL=0 (or false/off/no) pins the from-scratch coverage
   path; anything else — including unset — keeps the incremental engine
   on. CI runs the suites both ways. *)
let default_incremental () =
  match Sys.getenv_opt "DLEARN_INCREMENTAL" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "off" | "no" -> false
      | _ -> true)
  | None -> true

(* DLEARN_NORMALIZE=0 (or false/off/no) scores raw ARMG candidates and
   keys the cover cache on the sort-only [Clause.canonical]; anything
   else — including unset — runs the Clause_norm pipeline. CI runs the
   suites both ways. *)
let default_normalize () =
  match Sys.getenv_opt "DLEARN_NORMALIZE" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "off" | "no" -> false
      | _ -> true)
  | None -> true

(* DLEARN_TRACE=out.json records a Chrome trace of every run that goes
   through [Experiment.evaluate] (the CLI's --trace flag sets the same
   field). Empty or unset means no tracing. *)
let default_trace () =
  match Sys.getenv_opt "DLEARN_TRACE" with
  | Some s when String.trim s <> "" -> Some (String.trim s)
  | Some _ | None -> None

let default ~target =
  {
    target;
    depth = 3;
    km = 5;
    sample_size = 10;
    sim = Dlearn_constraints.Md.default_sim;
    exact_matching = false;
    constant_attrs = [];
    searchable_attrs = [];
    sample_positives = 10;
    min_pos = 2;
    min_precision = 0.7;
    max_clauses = 8;
    armg_beam = 32;
    climb_neg_cap = 40;
    subsumption_budget = 200_000;
    repair_state_cap = 512;
    repair_result_cap = 16;
    cfd_rounds = 2;
    allow_dirty_constraints = false;
    num_domains = default_num_domains ();
    incremental_coverage = default_incremental ();
    normalize_clauses = default_normalize ();
    subsumption_engine = Dlearn_logic.Subsumption.default_engine ();
    trace = default_trace ();
    seed = 42;
  }

let pp fmt t =
  Format.fprintf fmt
    "{target=%s; d=%d; km=%d; sample_size=%d; threshold=%.2f; exact=%b; jobs=%d; seed=%d}"
    (Dlearn_relation.Schema.name t.target)
    t.depth t.km t.sample_size t.sim.Dlearn_constraints.Md.threshold
    t.exact_matching t.num_domains t.seed
