(** Parsing textual clauses, the inverse of {!Clause.to_string} for
    repair-free clauses.

    Grammar (whitespace-insensitive):
    {v
      clause  ::= atom ("<-" | ":-") body | atom
      body    ::= literal ("," literal)*
      literal ::= atom | term "~" term | term "=" term | term "!=" term
      atom    ::= ident "(" term ("," term)* ")"
      term    ::= "..."           string constant
                | integer | float  numeric constant
                | ident            variable
    v}

    Bare identifiers are variables; constants must be quoted or numeric.
    Repair literals have no concrete syntax — clauses that need them are
    built programmatically. *)

(** [clause s] parses one clause. Errors carry a character position. *)
val clause : string -> (Clause.t, string) result

(** [clause_exn s] is [clause] or [Invalid_argument]. *)
val clause_exn : string -> Clause.t
