(** Hash index from attribute values to tuple identifiers.

    Every attribute of every stored relation carries one of these, which is
    what makes the bottom-clause construction's indexed selection
    σ_{A∈M}(R) cheap (Algorithm 2, line 8). *)

type t

val create : unit -> t

(** [add t v id] records that tuple [id] holds value [v] in the indexed
    attribute. Duplicates are kept (a relation may contain duplicate
    tuples — the paper's dirty-data setting relies on it). *)
val add : t -> Value.t -> int -> unit

(** [lookup t v] returns the ids of tuples holding [v] in insertion
    order (most recent last). The ordered view is computed on the first
    lookup after an insertion and memoized — repeated lookups of a hot
    value allocate nothing. *)
val lookup : t -> Value.t -> int list

val mem : t -> Value.t -> bool

(** [distinct_values t] lists each indexed value once. *)
val distinct_values : t -> Value.t list

val cardinality : t -> int
