(** Experiment driver: one function per table / figure of §6.

    Every function returns a header and printable rows (and the raw runs),
    so the benchmark harness renders them as the paper does. Scale factors
    default to laptop-sized workloads; absolute numbers differ from the
    paper (see EXPERIMENTS.md), the comparisons are what is reproduced. *)

type run = {
  system : Dlearn_core.Baselines.system;
  workload_name : string;
  f1 : float;
  f1_std : float;
  precision : float;
  recall : float;
  seconds : float;  (** mean learning seconds per fold *)
}

(** [evaluate ?folds system workload] cross-validates one system on one
    workload (default 5 folds, the paper's protocol). *)
val evaluate : ?folds:int -> Dlearn_core.Baselines.system -> Workload.t -> run

(** [with_km w km] sets the top-matches parameter. *)
val with_km : Workload.t -> int -> Workload.t

(** [with_depth w d] sets the bottom-clause iteration count. *)
val with_depth : Workload.t -> int -> Workload.t

(** [with_jobs w n] sets the domain count used by coverage and fold
    fan-out (clamped to at least 1; 1 = sequential). *)
val with_jobs : Workload.t -> int -> Workload.t

(** [with_incremental w b] enables/disables the incremental coverage
    engine ([Config.incremental_coverage]); both settings learn the
    identical definition — see docs/COVERAGE.md. *)
val with_incremental : Workload.t -> bool -> Workload.t

(** [with_subsumption w e] selects the θ-subsumption search engine
    ([Config.subsumption_engine]); both engines learn the identical
    definition — see docs/SUBSUMPTION.md. *)
val with_subsumption :
  Workload.t -> Dlearn_logic.Subsumption.engine -> Workload.t

(** [with_normalize w b] enables/disables the clause-normalization
    pipeline ([Config.normalize_clauses]); both settings learn the
    identical definition — see docs/NORMALIZATION.md. *)
val with_normalize : Workload.t -> bool -> Workload.t

(** [with_trace w (Some path)] makes {!evaluate} record the run and write
    a Chrome trace-event JSON (Perfetto-loadable) to [path] when it
    finishes; [None] disables tracing. Tracing never changes what is
    learned — see docs/OBSERVABILITY.md. *)
val with_trace : Workload.t -> string option -> Workload.t

(** [with_sample_size w s] sets the per-relation literal cap. *)
val with_sample_size : Workload.t -> int -> Workload.t

type table = {
  title : string;
  header : string list;
  rows : string list list;
  plots : (string * string * (string * float) list) list;
      (** (title, unit, points): ASCII bar charts appended to the render *)
}

val render : table -> string

(** Table 4: F1 and time for Castor-NoMD / Castor-Exact / Castor-Clean and
    DLearn at km = 2, 5, 10 over the four MD workloads. *)
val table4 : ?folds:int -> ?n:int -> unit -> table

(** Table 5: DLearn-CFD vs DLearn-Repaired at violation rates
    p = 0.05, 0.10, 0.20 over the three datasets. *)
val table5 : ?folds:int -> ?n:int -> unit -> table

(** Table 6: scaling the number of training examples on IMDB+OMDB (three
    MDs) with CFD violations, km = 5 and km = 2. *)
val table6 : ?folds:int -> ?n:int -> unit -> table

(** Table 7: the effect of the iteration count d on IMDB+OMDB (3 MDs +
    CFD violations), km = 5. *)
val table7 : ?folds:int -> ?n:int -> unit -> table

(** Figure 1 left: F1/time as the number of training examples grows
    (km = 2, IMDB+OMDB three MDs). *)
val figure1_examples : ?folds:int -> ?n:int -> unit -> table

(** Figure 1 middle/right: F1/time as sample size varies, at the given
    km. *)
val figure1_sample_size : ?folds:int -> ?n:int -> km:int -> unit -> table

(** §6.2.1: the learned definitions over Walmart+Amazon for DLearn and
    Castor-Clean, printed for qualitative comparison. *)
val qualitative_definitions : ?n:int -> unit -> string
