(** Coverage testing over heterogeneous data (§3.3, §4.3).

    Positive coverage follows Definition 3.4 through the efficient
    procedure of §4.3: first try θ-subsumption of the clause against the
    example's ground bottom clause directly (repair literals treated as
    atoms — sound by Theorem 4.6 and complete for MD-only clauses by
    Theorem 4.9); when CFD repair literals are present, apply the CFD
    groups on both sides and require every application of the clause to
    subsume some application of the ground clause.

    Negative coverage follows Definition 3.6: the clause covers the
    negative example when {e some} fully repaired clause of it subsumes
    {e some} fully repaired clause of the example's ground bottom clause
    (both sides repair-free, so Definition 4.4's connectivity condition is
    vacuous). Enumerations are capped by the configuration; the caps only
    ever under-approximate negative coverage.

    Per-example coverage is embarrassingly parallel: {!coverage} and the
    batch predicates fan out over the context's domain pool
    ([Config.num_domains]); all shared per-clause and per-example caches
    memoize under locks, so the parallel results are bitwise identical to
    the sequential path (see docs/PARALLELISM.md). *)

module Bitset = Cover_set.Bitset

type prepared = {
  clause : Dlearn_logic.Clause.t;
  cfd_apps : Dlearn_logic.Clause.t list Dlearn_parallel.Memo.t;
  repairs : Dlearn_logic.Clause.t list Dlearn_parallel.Memo.t;
  skeleton : Dlearn_logic.Clause.t Dlearn_parallel.Memo.t;
      (** the clause's relational skeleton with repairable term occurrences
          wildcarded — matched against the example's relational part modulo
          its potential merges as a necessary condition before any repair
          enumeration runs *)
  canon : Dlearn_logic.Clause.t Dlearn_parallel.Memo.t;
      (** the key of the cross-seed cover cache: the [clause] field itself
          when [Config.normalize_clauses] is on (normalization is
          idempotent, so the normalized clause is its own canonical form
          and all alpha-variants share one entry), [Clause.canonical
          clause] otherwise *)
}

(** [prepare ctx c] wraps [c] with memoized repair enumerations so that
    scoring over many examples shares them; the memos are domain-safe.
    With [Config.normalize_clauses] on, [c] is first rewritten by
    {!Dlearn_logic.Clause_norm.normalize} (timed under the
    [learn.normalize] span) — normalization preserves coverage, so every
    verdict computed from the record is a verdict about [c]. *)
val prepare : Context.t -> Dlearn_logic.Clause.t -> prepared

val covers_positive : Context.t -> prepared -> Dlearn_relation.Tuple.t -> bool

(** [ground_target ctx entry] is the example's ground bottom clause
    prepared for subsumption, cached in the entry (under its lock). *)
val ground_target :
  Context.t -> Context.ground_entry -> Dlearn_logic.Subsumption.target

(** [ground_repairs ctx entry] is the capped enumeration of the ground
    clause's repaired clauses, cached in the entry (under its lock). *)
val ground_repairs :
  Context.t -> Context.ground_entry -> Dlearn_logic.Clause.t list

(** [ground_repair_targets ctx entry] is {!ground_repairs} prepared for
    subsumption, cached in the entry (under its lock). *)
val ground_repair_targets :
  Context.t -> Context.ground_entry -> Dlearn_logic.Subsumption.target list

(** [prefilter_target ctx entry] is the ground clause's relational part
    with merge equalities, prepared; cached in the entry (under its
    lock). *)
val prefilter_target :
  Context.t -> Context.ground_entry -> Dlearn_logic.Subsumption.target

val covers_negative : Context.t -> prepared -> Dlearn_relation.Tuple.t -> bool

(** [covers_positive_cfd_split ctx p e] is the paper's §4.3 intermediate
    procedure: apply only the CFD repair groups on both sides, keep the MD
    repair literals as atoms (Theorem 4.9), and require every application
    of the clause to subsume some application of the ground clause. Kept
    for the ablation benchmark; [covers_positive] decides Definition 3.4
    over full repairs when the fast path fails. [prefilter] (default
    [true]) gates the enumeration behind the skeleton prefilter exactly
    like [covers_positive]; it never changes the verdict. *)
val covers_positive_cfd_split :
  ?prefilter:bool -> Context.t -> prepared -> Dlearn_relation.Tuple.t -> bool

(** [covers_positive_batch ctx p es] is
    [List.map (covers_positive ctx p) es] computed over the domain pool,
    in input order. *)
val covers_positive_batch :
  Context.t -> prepared -> Dlearn_relation.Tuple.t list -> bool list

val covers_negative_batch :
  Context.t -> prepared -> Dlearn_relation.Tuple.t list -> bool list

(** [coverage ctx p ~pos ~neg] counts covered positives and negatives
    (each occurrence of a duplicate tuple counted), fanning out over the
    context's domain pool. With [Config.incremental_coverage] on, verdicts
    route through the context's cross-seed cover cache: known verdicts are
    reused, the residue is computed with a chunked {!Dlearn_parallel.Pool.fill}
    and merged back. Both paths return identical counts. *)
val coverage :
  Context.t ->
  prepared ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  int * int

(** [coverage_sets ctx p ~pos ~neg] is the batch verdict API of the
    incremental engine: the covered subsets of the two universes as
    bitsets over the context's dense example ids ({!Context.example_id}).
    Verdicts resolve through the cross-seed cache; the residue fans out
    over the domain pool chunk-wise. An example absent from a universe is
    absent from the corresponding set; degenerate inputs (empty universes,
    duplicate tuples, a clause whose skeleton prefilter rejects
    everything) yield all-zero bitsets, never an error. *)
val coverage_sets :
  Context.t ->
  prepared ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  Bitset.t * Bitset.t

(** [count_covered ctx covered tuples] counts the tuples whose dense id is
    in [covered], each occurrence of a duplicate tuple counted. *)
val count_covered :
  Context.t -> Bitset.t -> Dlearn_relation.Tuple.t list -> int

(** [score_candidate ctx p ~assume ~pos ~neg ~bound] scores one
    hill-climb candidate incrementally and returns
    [(p, n, pos_covered, complete)]:

    - positives resolve through the cover cache with [assume] — the ARMG
      parent's covered set — inherited without testing (generalization
      monotonicity, docs/COVERAGE.md);
    - the negative sweep runs sequentially and stops as soon as
      [p - n_so_far < Atomic.get bound] (Aleph-style pruning); on a
      complete sweep the candidate's score is CAS-maxed into [bound].

    When [complete] is false, [n] is a lower bound on the true negative
    count and [p - n] is strictly below every fully-evaluated score in
    the batch, so pruned candidates can never displace the batch winner.
    [pos_covered] is exact either way. *)
val score_candidate :
  Context.t ->
  prepared ->
  assume:Bitset.t ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  bound:int Atomic.t ->
  int * int * Bitset.t * bool
