(** Levenshtein edit distance and derived similarity. Used by the
    [Castor-Clean] baseline's resolution step and by tests as an
    independent cross-check of the alignment code. *)

(** [distance a b] is the minimum number of single-character insertions,
    deletions and substitutions transforming [a] into [b]. *)
val distance : string -> string -> int

(** [similarity a b] = 1 − distance / max-length, in [0, 1]; 1 for two
    empty strings. *)
val similarity : string -> string -> float
