(** Tuples: fixed-arity arrays of values.

    A tuple is a function from attribute positions to values; equality is
    pointwise. Tuples do not carry their schema — relations pair them. *)

type t = Value.t array

val make : Value.t list -> t

(** [of_strings ss] parses each string with {!Value.of_string}. *)
val of_strings : string list -> t

val arity : t -> int

val get : t -> int -> Value.t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** [project t positions] extracts the sub-tuple at [positions], in order. *)
val project : t -> int array -> t

(** [set t i v] is a copy of [t] with position [i] replaced by [v]. *)
val set : t -> int -> Value.t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
