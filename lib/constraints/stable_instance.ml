open Dlearn_relation

type match_site = {
  md : Md.t;
  left_id : int;
  right_id : int;
}

let compared_positions (md : Md.t) left_schema right_schema =
  List.map
    (fun (a, b) -> (Schema.position left_schema a, Schema.position right_schema b))
    md.Md.compared

let unified_positions (md : Md.t) left_schema right_schema =
  let c, d = md.Md.unified in
  (Schema.position left_schema c, Schema.position right_schema d)

let unresolved_matches ~sim db (mds : Md.t list) =
  List.concat_map
    (fun (md : Md.t) ->
      match
        (Database.find_opt db md.Md.left_rel, Database.find_opt db md.Md.right_rel)
      with
      | Some left, Some right ->
          let ls = Relation.schema left and rs = Relation.schema right in
          let spec = Md.effective_spec md sim in
          let compared = compared_positions md ls rs in
          let uc, ud = unified_positions md ls rs in
          Relation.fold
            (fun left_id lt acc ->
              Relation.fold
                (fun right_id rt acc ->
                  let similar_everywhere =
                    List.for_all
                      (fun (pa, pb) ->
                        Md.similar spec (Tuple.get lt pa) (Tuple.get rt pb))
                      compared
                  in
                  if
                    similar_everywhere
                    && not (Value.equal (Tuple.get lt uc) (Tuple.get rt ud))
                  then { md; left_id; right_id } :: acc
                  else acc)
                right acc)
            left []
      | _ -> [])
    mds

let replace_value db rel_name id pos value =
  let old_rel = Database.find db rel_name in
  let fresh = Relation.create (Relation.schema old_rel) in
  Relation.iter
    (fun i t ->
      let t' = if i = id then Tuple.set t pos value else t in
      ignore (Relation.insert fresh t'))
    old_rel;
  let db' = Database.create () in
  List.iter
    (fun r ->
      if String.equal (Relation.name r) rel_name then
        Database.add_relation db' fresh
      else Database.add_relation db' (Relation.copy r))
    (Database.relations db);
  db'

let enforce db site =
  let md = site.md in
  let left = Database.find db md.Md.left_rel
  and right = Database.find db md.Md.right_rel in
  let uc, ud =
    unified_positions md (Relation.schema left) (Relation.schema right)
  in
  let v1 = Tuple.get (Relation.get left site.left_id) uc in
  let v2 = Tuple.get (Relation.get right site.right_id) ud in
  let merged = Md.Merge.merge v1 v2 in
  let db' = replace_value db md.Md.left_rel site.left_id uc merged in
  replace_value db' md.Md.right_rel site.right_id ud merged

let is_stable ~sim db mds = unresolved_matches ~sim db mds = []

let db_key db =
  (* Content fingerprint: relation name plus sorted tuple renderings. *)
  Database.relations db
  |> List.map (fun r ->
         let tuples =
           Relation.fold (fun _ t acc -> Tuple.to_string t :: acc) r []
           |> List.sort String.compare
         in
         Relation.name r ^ ":" ^ String.concat ";" tuples)
  |> String.concat "\n"

let stable_instances ?(cap = 64) ~sim db mds =
  let results : (string, Database.t) Hashtbl.t = Hashtbl.create 8 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go db =
    if Hashtbl.length results < cap then begin
      let key = db_key db in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        match unresolved_matches ~sim db mds with
        | [] -> Hashtbl.replace results key db
        | sites -> List.iter (fun site -> go (enforce db site)) sites
      end
    end
  in
  go db;
  Hashtbl.fold (fun _ d acc -> d :: acc) results []
