open Dlearn_relation
module Obs = Dlearn_obs.Obs

let rows_written_c = Obs.counter "scale_gen.rows_written"

type config = {
  tuples : int;
  dirt_rate : float;
  duplicate_rate : float;
  zipf_s : float;
  vocab : int;
  seed : int;
}

let default =
  {
    tuples = 100_000;
    dirt_rate = 0.1;
    duplicate_rate = 0.05;
    zipf_s = 1.1;
    vocab = 512;
    seed = 7;
  }

type summary = {
  dir : string;
  relations : (string * int) list;
  bytes : int;
  duplicates : int;
  corrupted : int;
}

let src_name = "src_products"
let dst_name = "dst_products"
let title_pos = 1

let schema name =
  Schema.make name
    [
      { Schema.attr_name = "pid"; domain = Schema.Dint };
      { Schema.attr_name = "title"; domain = Schema.Dstring };
      { Schema.attr_name = "brand"; domain = Schema.Dstring };
      { Schema.attr_name = "category"; domain = Schema.Dstring };
      { Schema.attr_name = "price"; domain = Schema.Dfloat };
    ]

(* {2 Vocabulary}

   Words are deterministic functions of their index — no RNG involved —
   so the value universe depends only on [vocab], while row sampling
   depends only on [seed]. Word lengths vary from 4 to 8 characters and
   titles carry one to four words plus optional adjective and model
   code, so title lengths spread over roughly 10–55 characters: the
   length diversity real product feeds show, and what gives the
   Sim_index length-band prefilter its bite (docs/SCALE.md). *)

let syllables =
  [|
    "ba"; "co"; "da"; "fe"; "gi"; "ho"; "ju"; "ka"; "lo"; "mi";
    "na"; "pe"; "qu"; "ra"; "so"; "tu"; "ve"; "wi"; "xo"; "za";
  |]

let word ~syls k =
  let b = Buffer.create (2 * syls) in
  let k = ref k in
  for _ = 1 to syls do
    Buffer.add_string b syllables.(!k mod Array.length syllables);
    k := (!k / 7) + 13
  done;
  Buffer.contents b

let adjectives =
  [| "ultra"; "pro"; "max"; "eco"; "smart"; "classic"; "prime"; "turbo" |]

let categories =
  [| "electronics"; "home"; "garden"; "toys"; "sports"; "office"; "kitchen"; "outdoors" |]

(* Normalized cumulative Zipf weights: w_k ∝ 1/(k+1)^s. *)
let zipf_cdf ~s n =
  let w = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample_zipf rng cdf =
  let u = Random.State.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

type entity = {
  pid : int;
  title : string;
  brand : string;
  category : string;
  price : float;
}

let render_row e =
  Csv.render_line
    [
      string_of_int e.pid;
      e.title;
      e.brand;
      e.category;
      Printf.sprintf "%.2f" e.price;
    ]

let generate ?(config = default) dir =
  if config.tuples <= 0 then invalid_arg "Scale_gen: tuples must be positive";
  if config.vocab < 16 then invalid_arg "Scale_gen: vocab must be >= 16";
  List.iter
    (fun (what, r) ->
      if r < 0.0 || r > 1.0 then
        invalid_arg (Printf.sprintf "Scale_gen: %s must be in [0, 1]" what))
    [ ("dirt_rate", config.dirt_rate); ("duplicate_rate", config.duplicate_rate) ];
  let rng = Random.State.make [| config.seed; 0x5CA1E |] in
  let nouns =
    Array.init config.vocab (fun i -> word ~syls:(2 + (i mod 3)) ((i * 131) + 17))
  in
  let brands =
    Array.init
      (max 16 (config.vocab / 8))
      (fun i -> String.capitalize_ascii (word ~syls:2 ((i * 257) + 43)))
  in
  let noun_cdf = zipf_cdf ~s:config.zipf_s (Array.length nouns) in
  let brand_cdf = zipf_cdf ~s:config.zipf_s (Array.length brands) in
  let fresh_entity pid =
    let brand = brands.(sample_zipf rng brand_cdf) in
    let parts = ref [] in
    if Random.State.float rng 1.0 < 0.3 then
      parts :=
        Printf.sprintf "%c%d"
          (Char.chr (Char.code 'A' + Random.State.int rng 26))
          (10 + Random.State.int rng 990)
        :: !parts;
    parts := brand :: !parts;
    for _ = 1 to Random.State.int rng 4 do
      parts := nouns.(Random.State.int rng (Array.length nouns)) :: !parts
    done;
    parts := nouns.(sample_zipf rng noun_cdf) :: !parts;
    if Random.State.float rng 1.0 < 0.5 then
      parts := adjectives.(Random.State.int rng (Array.length adjectives)) :: !parts;
    {
      pid;
      title = String.concat " " !parts;
      brand;
      category = categories.(Random.State.int rng (Array.length categories));
      price = float_of_int (100 + Random.State.int rng 99900) /. 100.0;
    }
  in
  (* The dirty twin of an entity: the marketplace-side row, title and
     brand corrupted at [dirt_rate] with the shared [Corrupt] kit. *)
  let dirty e pid =
    let title =
      e.title
      |> Corrupt.maybe rng config.dirt_rate (Corrupt.product_title_variant rng)
      |> Corrupt.maybe rng config.dirt_rate (Corrupt.typo rng)
    in
    let brand = Corrupt.maybe rng config.dirt_rate (Corrupt.typo rng) e.brand in
    { e with pid; title; brand }
  in
  Storage.write_manifest dir [ schema src_name; schema dst_name ];
  let src_oc = open_out (Storage.csv_path dir src_name) in
  let dst_oc = open_out (Storage.csv_path dir dst_name) in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr src_oc;
      close_out_noerr dst_oc)
    (fun () ->
      let duplicates = ref 0 in
      let corrupted = ref 0 in
      let prev = ref None in
      for i = 0 to config.tuples - 1 do
        let entity =
          match !prev with
          | Some e when Random.State.float rng 1.0 < config.duplicate_rate ->
              incr duplicates;
              { e with pid = i }
          | _ -> fresh_entity i
        in
        prev := Some entity;
        let twin = dirty entity (config.tuples + i) in
        if twin.title <> entity.title then incr corrupted;
        output_string src_oc (render_row entity);
        output_char src_oc '\n';
        output_string dst_oc (render_row twin);
        output_char dst_oc '\n';
        Obs.add rows_written_c 2
      done;
      let bytes = pos_out src_oc + pos_out dst_oc in
      {
        dir;
        relations = [ (src_name, config.tuples); (dst_name, config.tuples) ];
        bytes;
        duplicates = !duplicates;
        corrupted = !corrupted;
      })

let pp_summary fmt s =
  Format.fprintf fmt "@[<v>scale dataset in %s (%d bytes)" s.dir s.bytes;
  List.iter
    (fun (name, rows) -> Format.fprintf fmt "@,  %s: %d rows" name rows)
    s.relations;
  Format.fprintf fmt "@,  duplicates: %d, corrupted titles: %d@]" s.duplicates
    s.corrupted
