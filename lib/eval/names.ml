let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let title_adjectives =
  [|
    "Dark"; "Silent"; "Golden"; "Broken"; "Hidden"; "Lost"; "Crimson";
    "Eternal"; "Savage"; "Gentle"; "Burning"; "Frozen"; "Electric";
    "Midnight"; "Distant"; "Hollow"; "Iron"; "Velvet"; "Wild"; "Quiet";
  |]

let title_nouns =
  [|
    "Empire"; "River"; "Horizon"; "Garden"; "Station"; "Kingdom"; "Echo";
    "Harvest"; "Voyage"; "Orchard"; "Tempest"; "Lantern"; "Fortress";
    "Meadow"; "Signal"; "Carnival"; "Archive"; "Summit"; "Labyrinth";
    "Harbor";
  |]

let romans = [| ""; " II"; " III"; " IV"; " V" |]

let movie_title rng =
  let base =
    Printf.sprintf "The %s %s" (pick rng title_adjectives) (pick rng title_nouns)
  in
  (* A quarter of the titles are franchise entries: same base, a sequel
     number — near-duplicates that make similarity matching ambiguous. *)
  if Random.State.int rng 4 = 0 then base ^ pick rng romans else base

let first_names =
  [|
    "John"; "Mary"; "Ahmed"; "Yuki"; "Carlos"; "Ingrid"; "Priya"; "Liam";
    "Sofia"; "Chen"; "Amara"; "Viktor"; "Elena"; "Kwame"; "Noor"; "Pedro";
    "Astrid"; "Bruno"; "Celine"; "Dmitri"; "Esther"; "Farid"; "Greta";
    "Hiro"; "Imani"; "Jorge"; "Katya"; "Lars"; "Mei"; "Nadia"; "Omar";
    "Paula"; "Quentin"; "Rosa"; "Sven"; "Tara"; "Umar"; "Vera"; "Wendell";
    "Ximena"; "Yosef"; "Zara"; "Anders"; "Bianca"; "Cedric"; "Dalia";
  |]

let last_names =
  [|
    "Smith"; "Garcia"; "Tanaka"; "Muller"; "Okafor"; "Silva"; "Ivanov";
    "Haddad"; "Kowalski"; "Nguyen"; "Fernandez"; "Larsen"; "Moreau";
    "Rossi"; "Ahmadi"; "Osei"; "Bergstrom"; "Castellanos"; "Dimitriou";
    "Eriksen"; "Fontaine"; "Gruber"; "Hashimoto"; "Iyer"; "Jankowski";
    "Karlsson"; "Lindqvist"; "Mbeki"; "Novak"; "Oliveira"; "Petrov";
    "Quispe"; "Rahman"; "Santos"; "Takahashi"; "Ueda"; "Vasquez";
    "Weber"; "Xu"; "Yamamoto"; "Zielinski"; "Abebe"; "Bellini";
  |]

(* Three-part names: the middle name gives the similarity operator enough
   signal to separate true abbreviations ("J. Rosa Smith") from
   shared-surname coincidences. *)
let person_name rng =
  Printf.sprintf "%s %s %s" (pick rng first_names) (pick rng first_names)
    (pick rng last_names)

let product_adjectives =
  [|
    "Wireless"; "Ergonomic"; "Compact"; "Portable"; "Premium"; "Ultra";
    "Foldable"; "Rugged"; "Slim"; "Heavy-Duty"; "Adjustable"; "Universal";
  |]

let product_items =
  [|
    "Keyboard"; "Mouse"; "Monitor Stand"; "USB Hub"; "Laptop Sleeve";
    "Webcam"; "Headset"; "Desk Lamp"; "Blender"; "Toaster"; "Backpack";
    "Water Bottle"; "Office Chair"; "Notebook"; "Charger"; "Speaker";
  |]

let product_name rng =
  Printf.sprintf "%s %s %s"
    (pick rng [| "Acme"; "Zenith"; "Orbit"; "Nimbus"; "Quark"; "Vertex" |])
    (pick rng product_adjectives) (pick rng product_items)

let paper_topics =
  [|
    "Query Optimization"; "Entity Resolution"; "Data Cleaning";
    "Stream Processing"; "Graph Analytics"; "Index Structures";
    "Transaction Processing"; "Schema Matching"; "Provenance Tracking";
    "Approximate Counting"; "View Maintenance"; "Workload Forecasting";
  |]

let paper_modifiers =
  [|
    "Scalable"; "Adaptive"; "Efficient"; "Distributed"; "Incremental";
    "Robust"; "Learned"; "Parallel"; "Declarative"; "Interactive";
  |]

let paper_settings =
  [|
    "in Main-Memory Systems"; "over Evolving Graphs"; "for Dirty Data";
    "at Scale"; "in the Cloud"; "under Constraints"; "with Guarantees";
    "on Modern Hardware"; "for Relational Learning"; "in Practice";
  |]

let paper_title rng =
  Printf.sprintf "%s %s %s" (pick rng paper_modifiers) (pick rng paper_topics)
    (pick rng paper_settings)

let venues_arr =
  [|
    "SIGMOD Conference"; "VLDB"; "ICDE"; "EDBT"; "CIDR"; "PODS";
    "SIGMOD Record"; "VLDB Journal"; "TODS"; "ICDT";
  |]

let venue rng = pick rng venues_arr

let genres =
  [ "drama"; "comedy"; "action"; "horror"; "scifi"; "romance"; "thriller"; "documentary" ]

let ratings = [ "G"; "PG"; "PG-13"; "R" ]

let countries = [ "USA"; "UK"; "France"; "Japan"; "Spain"; "Germany"; "Brazil"; "India" ]

let languages = [ "English"; "French"; "Japanese"; "Spanish"; "German"; "Portuguese"; "Hindi" ]

let product_categories =
  [ "Computers Accessories"; "Home Kitchen"; "Office Products"; "Sports Outdoors"; "Electronics General" ]

let brands = [ "Acme"; "Zenith"; "Orbit"; "Nimbus"; "Quark"; "Vertex" ]
