(** The Walmart + Amazon workload (§6.1.1).

    Product catalogs from two marketplaces: the UPC exists only in
    Walmart, the category only in Amazon, and titles are decorated
    differently by each source. The target is
    [upcOfComputersAccessories(upc)]. One MD connects the product titles. *)

(** [generate ?n ?seed ()] builds the workload over [n] products (default
    180). *)
val generate : ?n:int -> ?seed:int -> unit -> Workload.t
