type origin =
  | From_md of string
  | From_cfd of string

type repair = {
  origin : origin;
  group : int;
  cond : Cond.t;
  subject : Term.t;
  replacement : Term.t;
  drops : t list;
}

and t =
  | Rel of {
      pred : string;
      args : Term.t array;
    }
  | Sim of Term.t * Term.t
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t
  | Repair of repair

let rel pred args = Rel { pred; args = Array.of_list args }

let origin_equal a b =
  match a, b with
  | From_md x, From_md y | From_cfd x, From_cfd y -> String.equal x y
  | (From_md _ | From_cfd _), _ -> false

let origin_to_string = function
  | From_md id -> "md:" ^ id
  | From_cfd id -> "cfd:" ^ id

let rec equal a b =
  match a, b with
  | Rel r1, Rel r2 ->
      String.equal r1.pred r2.pred
      && Array.length r1.args = Array.length r2.args
      && Array.for_all2 Term.equal r1.args r2.args
  | Sim (x, y), Sim (x', y') | Eq (x, y), Eq (x', y') | Neq (x, y), Neq (x', y')
    ->
      Term.equal x x' && Term.equal y y'
  | Repair r1, Repair r2 ->
      origin_equal r1.origin r2.origin
      && r1.group = r2.group
      && Cond.equal r1.cond r2.cond
      && Term.equal r1.subject r2.subject
      && Term.equal r1.replacement r2.replacement
      && List.length r1.drops = List.length r2.drops
      && List.for_all2 equal r1.drops r2.drops
  | (Rel _ | Sim _ | Eq _ | Neq _ | Repair _), _ -> false

let rank = function
  | Rel _ -> 0
  | Sim _ -> 1
  | Eq _ -> 2
  | Neq _ -> 3
  | Repair _ -> 4

let rec compare a b =
  match a, b with
  | Rel r1, Rel r2 -> (
      match String.compare r1.pred r2.pred with
      | 0 ->
          let rec go i =
            if i >= Array.length r1.args && i >= Array.length r2.args then 0
            else if i >= Array.length r1.args then -1
            else if i >= Array.length r2.args then 1
            else
              match Term.compare r1.args.(i) r2.args.(i) with
              | 0 -> go (i + 1)
              | c -> c
          in
          go 0
      | c -> c)
  | Sim (x, y), Sim (x', y') | Eq (x, y), Eq (x', y') | Neq (x, y), Neq (x', y')
    -> (
      match Term.compare x x' with 0 -> Term.compare y y' | c -> c)
  | Repair r1, Repair r2 -> (
      match
        String.compare
          (origin_to_string r1.origin)
          (origin_to_string r2.origin)
      with
      | 0 -> (
          match Int.compare r1.group r2.group with
          | 0 -> (
              match Term.compare r1.subject r2.subject with
              | 0 -> (
                  match Term.compare r1.replacement r2.replacement with
                  | 0 -> List.compare compare r1.drops r2.drops
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
  | _ -> Int.compare (rank a) (rank b)

let is_rel = function Rel _ -> true | Sim _ | Eq _ | Neq _ | Repair _ -> false

let is_repair = function
  | Repair _ -> true
  | Rel _ | Sim _ | Eq _ | Neq _ -> false

let is_restriction = function
  | Sim _ | Eq _ | Neq _ -> true
  | Rel _ | Repair _ -> false

let terms = function
  | Rel { args; _ } -> Array.to_list args
  | Sim (x, y) | Eq (x, y) | Neq (x, y) -> [ x; y ]
  | Repair { subject; replacement; cond; _ } ->
      subject :: replacement
      :: List.concat_map
           (function
             | Cond.Ceq (a, b) | Cond.Cneq (a, b) | Cond.Csim (a, b) -> [ a; b ])
           cond

let vars l =
  terms l
  |> List.filter_map (function Term.Var v -> Some v | Term.Const _ -> None)
  |> List.sort_uniq String.compare

let rec map_terms f = function
  | Rel { pred; args } -> Rel { pred; args = Array.map f args }
  | Sim (x, y) -> Sim (f x, f y)
  | Eq (x, y) -> Eq (f x, f y)
  | Neq (x, y) -> Neq (f x, f y)
  | Repair r ->
      Repair
        {
          r with
          cond = Cond.map_terms f r.cond;
          subject = f r.subject;
          replacement = f r.replacement;
          drops = List.map (map_terms f) r.drops;
        }

let rec to_string = function
  | Rel { pred; args } ->
      Printf.sprintf "%s(%s)" pred
        (String.concat ", " (Array.to_list (Array.map Term.to_string args)))
  | Sim (x, y) -> Printf.sprintf "%s ~ %s" (Term.to_string x) (Term.to_string y)
  | Eq (x, y) -> Printf.sprintf "%s = %s" (Term.to_string x) (Term.to_string y)
  | Neq (x, y) ->
      Printf.sprintf "%s != %s" (Term.to_string x) (Term.to_string y)
  | Repair r ->
      let drops =
        match r.drops with
        | [] -> ""
        | ds ->
            Printf.sprintf " drops{%s}"
              (String.concat "; " (List.map to_string ds))
      in
      Printf.sprintf "V[%s#%d|%s](%s, %s)%s"
        (origin_to_string r.origin)
        r.group (Cond.to_string r.cond)
        (Term.to_string r.subject)
        (Term.to_string r.replacement)
        drops

let pp fmt l = Format.pp_print_string fmt (to_string l)
