(** Conditional-FD discovery: mining constant patterns under which an FD
    that fails globally holds conditionally (in the spirit of CTANE /
    Golab et al.'s tableau generation, which the paper cites as [30]).

    For a candidate [X → A] that does not hold on the whole relation, the
    miner scans the values of one chosen conditioning attribute of [X] and
    emits a CFD [(X → A, (c, -, .. || -))] for every constant [c] whose
    selection satisfies the FD with at least [min_support] tuples. *)

type candidate = {
  lhs : string list;
  rhs : string;
  condition_attr : string;  (** must be a member of [lhs] *)
}

(** [discover ?min_support relation candidate] returns the CFDs (with ids
    derived from the constant) mined for the candidate; empty when the
    conditioning attribute has no qualifying constant. When the FD holds
    globally, the single pattern-free CFD is returned instead.
    @raise Invalid_argument if [condition_attr] is not in [lhs]. *)
val discover :
  ?min_support:int ->
  Dlearn_relation.Relation.t ->
  candidate ->
  Dlearn_constraints.Cfd.t list
