module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = int list ref H.t

let create () = H.create 64

let add t v id =
  match H.find_opt t v with
  | Some ids -> ids := id :: !ids
  | None -> H.add t v (ref [ id ])

let lookup t v =
  match H.find_opt t v with Some ids -> List.rev !ids | None -> []

let mem t v = H.mem t v

let distinct_values t = H.fold (fun v _ acc -> v :: acc) t []

let cardinality t = H.length t
