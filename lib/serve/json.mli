(** Minimal JSON values — the wire format of the serve protocol
    (docs/SERVE.md). Printing escapes control characters; parsing
    accepts RFC 8259 documents (objects, arrays, strings with [\u]
    escapes and surrogate pairs, ints, floats, bools, null). There is
    deliberately no external dependency: the protocol needs only this. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message and byte offset. *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

(** {2 Accessors} — each returns [None] on a missing field or a field of
    the wrong shape. *)

val member : string -> t -> t option
val string_field : string -> t -> string option
val int_field : string -> t -> int option
val list_field : string -> t -> t list option
