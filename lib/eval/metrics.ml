type confusion = {
  tp : int;
  fp : int;
  tn : int;
  fn : int;
}

let empty = { tp = 0; fp = 0; tn = 0; fn = 0 }

let add a b =
  { tp = a.tp + b.tp; fp = a.fp + b.fp; tn = a.tn + b.tn; fn = a.fn + b.fn }

let of_predictions ~predict ~pos ~neg =
  let count p l = List.length (List.filter p l) in
  let tp = count predict pos in
  let fp = count predict neg in
  { tp; fp; tn = List.length neg - fp; fn = List.length pos - tp }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let precision c = ratio c.tp (c.tp + c.fp)
let recall c = ratio c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let accuracy c = ratio (c.tp + c.tn) (c.tp + c.fp + c.tn + c.fn)

let pp fmt c =
  Format.fprintf fmt "tp=%d fp=%d tn=%d fn=%d p=%.3f r=%.3f f1=%.3f" c.tp c.fp
    c.tn c.fn (precision c) (recall c) (f1 c)
