open Dlearn_relation
open Dlearn_constraints
open Dlearn_core

type movie = {
  imdb_id : string;
  omdb_id : string;
  title : string;
  year : int;
  genres : string list;
  rating : string;
  country : string;
  cast : string list;
  writer : string;
}

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* Weighted pools keep the target class (drama AND R) around 15% of the
   movies so that a moderate [n] yields a workable number of positives. *)
let weighted_genres = "drama" :: "drama" :: Names.genres
let weighted_ratings = "R" :: "R" :: Names.ratings

let generate ?(n = 150) ?(seed = 7) variant =
  let rng = Random.State.make [| seed; 0x1DB |] in
  let used_titles = Hashtbl.create 64 in
  let fresh_title () =
    let rec go attempts =
      let t = Names.movie_title rng in
      if Hashtbl.mem used_titles t && attempts < 20 then go (attempts + 1)
      else begin
        Hashtbl.add used_titles t ();
        t
      end
    in
    go 0
  in
  let titles_so_far = ref [] in
  let movies =
    List.init n (fun i ->
        let genres =
          let g1 = pick rng weighted_genres in
          if Random.State.bool rng then [ g1 ]
          else
            let g2 = pick rng weighted_genres in
            if String.equal g1 g2 then [ g1 ] else [ g1; g2 ]
        in
        {
          imdb_id = Printf.sprintf "tt%04d" i;
          omdb_id = Printf.sprintf "om%04d" i;
          (* ~15% of movies are remakes: the same title under a different
             year, the paper's Star Wars ambiguity — a bare or reformatted
             title matches several distinct movies, so greedy resolution
             must guess while repair literals keep every option. *)
          title =
            (let remake =
               Random.State.int rng 100 < 15 && !titles_so_far <> []
             in
             let t =
               if remake then
                 List.nth !titles_so_far
                   (Random.State.int rng (List.length !titles_so_far))
               else fresh_title ()
             in
             titles_so_far := t :: !titles_so_far;
             t);
          (* Several movies share each year, so the year join carries no
             signal — in the paper's full-scale data a year joins
             thousands of movies. (At one movie per year the year would be
             a key and leak the rating across databases.) *)
          year = 1992 + Random.State.int rng 24;
          genres;
          rating = pick rng weighted_ratings;
          country = pick rng Names.countries;
          cast = [ Names.person_name rng; Names.person_name rng ];
          writer = Names.person_name rng;
        })
  in
  let db = Database.create () in
  let imdb_movies =
    Database.create_relation db
      (Schema.string_attrs "imdb_movies" [ "id"; "title"; "year" ])
  in
  let imdb_genres =
    Database.create_relation db
      (Schema.string_attrs "imdb_mov2genres" [ "id"; "genre" ])
  in
  let imdb_countries =
    Database.create_relation db
      (Schema.string_attrs "imdb_mov2countries" [ "id"; "country" ])
  in
  let imdb_cast =
    Database.create_relation db (Schema.string_attrs "imdb_cast" [ "id"; "name" ])
  in
  let imdb_writers =
    Database.create_relation db
      (Schema.string_attrs "imdb_writers" [ "id"; "name" ])
  in
  let omdb_movies =
    Database.create_relation db
      (Schema.string_attrs "omdb_movies" [ "oid"; "title"; "year" ])
  in
  let omdb_rating =
    Database.create_relation db
      (Schema.string_attrs "omdb_rating" [ "oid"; "rating" ])
  in
  let omdb_genres =
    Database.create_relation db
      (Schema.string_attrs "omdb_mov2genres" [ "oid"; "genre" ])
  in
  let omdb_cast =
    Database.create_relation db (Schema.string_attrs "omdb_cast" [ "oid"; "name" ])
  in
  let omdb_writers =
    Database.create_relation db
      (Schema.string_attrs "omdb_writers" [ "oid"; "name" ])
  in
  (* Titles shared by several movies (remakes): OMDB lists them bare half
     the time — the title alone then matches every remake, the paper's
     "Star Wars" ambiguity, which greedy resolution has to guess away. *)
  let title_counts = Hashtbl.create 64 in
  List.iter
    (fun m ->
      Hashtbl.replace title_counts m.title
        (1 + Option.value ~default:0 (Hashtbl.find_opt title_counts m.title)))
    movies;
  List.iter
    (fun m ->
      let sv s = Value.String s in
      let imdb_title = Printf.sprintf "%s (%d)" m.title m.year in
      let ambiguous =
        Option.value ~default:0 (Hashtbl.find_opt title_counts m.title) > 1
      in
      let omdb_title =
        if ambiguous && Random.State.bool rng then m.title
        else
          Corrupt.maybe rng 0.15 (Corrupt.typo rng)
            (Corrupt.movie_title_variant rng ~title:m.title ~year:m.year)
      in
      ignore
        (Relation.insert imdb_movies
           (Tuple.make [ sv m.imdb_id; sv imdb_title; sv (string_of_int m.year) ]));
      List.iter
        (fun g ->
          ignore (Relation.insert imdb_genres (Tuple.make [ sv m.imdb_id; sv g ])))
        m.genres;
      ignore
        (Relation.insert imdb_countries (Tuple.make [ sv m.imdb_id; sv m.country ]));
      List.iter
        (fun c ->
          ignore (Relation.insert imdb_cast (Tuple.make [ sv m.imdb_id; sv c ])))
        m.cast;
      ignore
        (Relation.insert imdb_writers (Tuple.make [ sv m.imdb_id; sv m.writer ]));
      ignore
        (Relation.insert omdb_movies
           (Tuple.make [ sv m.omdb_id; sv omdb_title; sv (string_of_int m.year) ]));
      ignore
        (Relation.insert omdb_rating (Tuple.make [ sv m.omdb_id; sv m.rating ]));
      List.iter
        (fun g ->
          ignore (Relation.insert omdb_genres (Tuple.make [ sv m.omdb_id; sv g ])))
        m.genres;
      List.iter
        (fun c ->
          ignore
            (Relation.insert omdb_cast
               (Tuple.make [ sv m.omdb_id; sv (Corrupt.abbreviate_name rng c) ])))
        m.cast;
      ignore
        (Relation.insert omdb_writers
           (Tuple.make [ sv m.omdb_id; sv (Corrupt.abbreviate_name rng m.writer) ])))
    movies;
  let md_title =
    Md.make ~id:"md_title" ~left:"imdb_movies" ~right:"omdb_movies"
      ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
  in
  (* Person names need a stricter operator than titles: shared surnames
     score ~0.75 under the averaged similarity, true abbreviations ~0.87. *)
  let md_cast =
    Md.make ~id:"md_cast" ~left:"imdb_cast" ~right:"omdb_cast"
      ~compared:[ ("name", "name") ] ~unified:("name", "name") ~threshold:0.8 ()
  in
  let md_writer =
    Md.make ~id:"md_writer" ~left:"imdb_writers" ~right:"omdb_writers"
      ~compared:[ ("name", "name") ] ~unified:("name", "name") ~threshold:0.8 ()
  in
  let mds =
    match variant with
    | `One_md -> [ md_title ]
    | `Three_mds -> [ md_title; md_cast; md_writer ]
  in
  let cfds =
    [
      Cfd.fd ~id:"cfd_imdb_title" ~relation:"imdb_movies" [ "id" ] "title";
      Cfd.fd ~id:"cfd_imdb_year" ~relation:"imdb_movies" [ "id" ] "year";
      Cfd.fd ~id:"cfd_omdb_rating" ~relation:"omdb_rating" [ "oid" ] "rating";
      Cfd.fd ~id:"cfd_omdb_title" ~relation:"omdb_movies" [ "oid" ] "title";
    ]
  in
  let target = Schema.string_attrs "dramaRestrictedMovies" [ "imdbId" ] in
  let config =
    {
      (Config.default ~target) with
      Config.depth = 3;
      constant_attrs =
        [
          ("imdb_mov2genres", "genre");
          ("omdb_mov2genres", "genre");
          ("omdb_rating", "rating");
          ("imdb_mov2countries", "country");
        ];
      (* Joins follow the id columns; cross-source reach goes through the
         MDs only (the paper's Castor declares the same via inclusion
         dependencies). *)
      searchable_attrs =
        [
          ("imdb_movies", "id"); ("imdb_mov2genres", "id");
          ("imdb_mov2countries", "id"); ("imdb_cast", "id");
          ("imdb_writers", "id"); ("omdb_movies", "oid");
          ("omdb_rating", "oid"); ("omdb_mov2genres", "oid");
          ("omdb_cast", "oid"); ("omdb_writers", "oid");
        ];
      sim = { Md.default_sim with Md.threshold = 0.7 };
      seed;
    }
  in
  let is_positive m = List.mem "drama" m.genres && String.equal m.rating "R" in
  let pos =
    List.filter_map
      (fun m -> if is_positive m then Some (Tuple.make [ Value.String m.imdb_id ]) else None)
      movies
  in
  let others =
    List.filter_map
      (fun m ->
        if is_positive m then None else Some (Tuple.make [ Value.String m.imdb_id ]))
      movies
  in
  let neg = Workload.sample rng (2 * List.length pos) others in
  let name =
    match variant with
    | `One_md -> "IMDB+OMDB (one MD)"
    | `Three_mds -> "IMDB+OMDB (three MDs)"
  in
  { Workload.name; db; mds; cfds; config; pos; neg }
