(** Clause lints (analyzer pass 1).

    Structural checks on one clause, independent of the database catalog:

    - [DL101] (error): unsafe head variable — a head variable that occurs
      in no body schema atom. θ-subsumption and coverage are only
      meaningful for range-restricted clauses (§3.2).
    - [DL102] (warning): body literal not head-connected — the literal
      {!Dlearn_logic.Clause.head_connected} would silently drop; reported
      with the dropped literal as witness.
    - [DL103] (warning): singleton variable — a variable with exactly one
      occurrence in the clause; it constrains nothing and usually spells a
      typo.
    - [DL104] (warning): duplicate body literal.
    - [DL105] (warning): tautological restriction literal ([t = t],
      [t ~ t]) — always satisfied, adds no information.
    - [DL106] (error): contradictory restriction literal ([t != t], or an
      equality of two distinct constants) — the clause can cover nothing.

    Repair literals are ignored by these lints (they are machine-built and
    validated by construction).

    The DL4xx group reports what the clause-normalization pipeline would
    rewrite; the diagnostics are produced from
    {!Dlearn_logic.Clause_norm.plan} — the pipeline's own pass
    implementations — so lint and rewrite cannot disagree:

    - [DL401] (warning): trivially-satisfied literal or repair-condition
      atom the pipeline would drop. Narrower than DL105, which flags every
      syntactic tautology: DL401 only fires where the subsumption engines
      make the verdict static (e.g. [x ~ x] over a variable no schema atom
      binds is DL105 but not DL401).
    - [DL402] (error): unsatisfiable literal — normalization rewrites the
      clause to its shared trivially-false form.
    - [DL403] (warning): alpha-redundant (self-subsumed) body literal —
      condensation would drop it; the witness names both literals. *)

val check : Dlearn_logic.Clause.t -> Diagnostic.t list
