(** A small incremental CDCL SAT core (pure OCaml).

    The solver the [`Sat] θ-subsumption engine instantiates its ground
    encoding into: two-watched-literal unit propagation, first-UIP
    conflict analysis with backjumping, Luby restarts, and incremental
    solving under assumptions — clauses learned in one [solve] call stay
    in the database and keep propagating in every later call, which is
    what lets refutation work transfer across an ARMG chain
    (see [docs/SUBSUMPTION.md]).

    Variables are dense non-negative ints handed out by {!new_var}.
    Literals are ints too: [pos v] / [neg v]. There is no clause
    deletion and no activity heuristic: decision order is a caller-set
    static priority ({!set_priority}) with per-variable phase hints
    ({!set_phase}), so the first model found follows the caller's
    preferred enumeration order — the subsumption encoder uses this to
    pin witness determinism. *)

type t

val create : unit -> t

(** Allocate a fresh variable (initial phase hint [false]). *)
val new_var : t -> int

val num_vars : t -> int

(** {1 Literals} *)

val pos : int -> int
val neg : int -> int

(** [negate l] flips a literal's sign. *)
val negate : int -> int

val var_of : int -> int

(** {1 Clauses} *)

(** [add_clause s lits] adds a clause, simplified against the root-level
    assignment (satisfied clauses dropped, false literals removed,
    tautologies dropped). An empty result marks the solver unsat; a unit
    result is asserted at the root level. Must be called between
    [solve]s (the solver is always at decision level 0 there). *)
val add_clause : t -> int list -> unit

(** {1 Solving} *)

(** [solve ?assumptions ?conflict_limit s] decides satisfiability under
    the given assumption literals. [`Limit] is returned when the solve
    exceeded [conflict_limit] conflicts (the solver stays usable).
    After [`Sat], {!value} reads the model. Learned clauses persist
    across calls. *)
val solve :
  ?assumptions:int list -> ?conflict_limit:int -> t -> [ `Sat | `Unsat | `Limit ]

(** Model value of a variable after [`Sat]. *)
val value : t -> int -> bool

(** {1 Search order} *)

(** [set_priority s vars] sets the decision order: variables are decided
    in the order given, then any remaining variables in index order.
    Replaces the previous priority; persists across solves. *)
val set_priority : t -> int array -> unit

(** Preferred phase when [v] is picked as a decision. *)
val set_phase : t -> int -> bool -> unit

(** {1 Introspection} *)

(** Learned clauses currently in the database, as literal arrays
    (copies). Used by the property test that re-solves each learned
    clause's negation against the original formula. *)
val learned_clauses : t -> int array list

type stats = {
  solves : int;
  propagations : int;
  conflicts : int;
  learned : int;  (** learned clauses added over the solver's lifetime *)
  restarts : int;
  reused_clause_hits : int;
      (** propagations or conflicts caused by a clause learned in an
          {e earlier} [solve] call — cross-solve refutation reuse *)
}

val stats : t -> stats
