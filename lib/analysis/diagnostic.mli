(** Structured diagnostics for the preflight static analyzer.

    Every finding carries a stable error code ([DL0xx], see
    [docs/ANALYSIS.md] for the full table), a severity, the subject it is
    about (a constraint, a clause, an attribute, ...), a human-readable
    message and, when the analyzer can produce one, a concrete witness —
    e.g. the minimal set of CFDs whose patterns conflict. Diagnostics are
    plain data: the CLI renders them prettily or as JSON, the learner
    embeds the rendered report in its abort message. *)

type severity =
  | Error  (** the run would crash or be meaningless; preflight aborts *)
  | Warning  (** very likely a mistake, but the semantics are defined *)
  | Hint  (** stylistic or vacuous-input notice *)

type subject =
  | Constraint of string  (** an MD or CFD, by identifier *)
  | Clause_head of string  (** a clause, by its head predicate *)
  | Attribute of {
      relation : string;
      attr : string;
    }
  | Relation of string
  | General

type t = {
  code : string;  (** stable identifier, e.g. ["DL304"] *)
  severity : severity;
  subject : subject;
  message : string;
  witness : string option;
      (** concrete evidence, e.g. the conflicting CFD patterns *)
}

val error : code:string -> subject:subject -> ?witness:string -> string -> t

val warning : code:string -> subject:subject -> ?witness:string -> string -> t

val hint : code:string -> subject:subject -> ?witness:string -> string -> t

val severity_to_string : severity -> string

val subject_to_string : subject -> string

(** [sort ds] orders by decreasing severity, then code, then subject —
    the rendering order of reports. *)
val sort : t list -> t list

val has_errors : t list -> bool

val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit

(** [pp_report fmt ds] prints every diagnostic (sorted) followed by a
    one-line summary ["N error(s), M warning(s), K hint(s)"]; prints
    ["no diagnostics"] on an empty list. *)
val pp_report : Format.formatter -> t list -> unit

val report_to_string : t list -> string

(** [to_json d] is a one-object JSON rendering with fields [code],
    [severity], [subject], [message] and (when present) [witness]. *)
val to_json : t -> string

(** [report_to_json ds] is a JSON array of {!to_json} objects, sorted. *)
val report_to_json : t list -> string
