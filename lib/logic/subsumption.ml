let src = Logs.Src.create "dlearn.subsumption"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome =
  | Subsumed of Substitution.t
  | Not_subsumed
  | Budget_exhausted

exception Exhausted

module IntSet = Set.Make (Int)

(* The target clause D, preprocessed for fast candidate enumeration. *)
type target = {
  d_literals : Literal.t array; (* index 0 is the head *)
  rels_by_pred : (string, int list) Hashtbl.t;
  repairs_by_origin : (string, int list) Hashtbl.t;
  sim_ids : int list;
  env : Clause_env.t;
  attached_repairs : IntSet.t array;
      (* for each non-repair literal id, the ids of D repair literals
         connected to it per Definition 4.4's connectivity *)
}

let literal_key_terms = function
  | Literal.Repair { subject; replacement; _ } -> [ subject; replacement ]
  | l -> Literal.terms l

let prepare (d : Clause.t) =
  let d_literals = Array.of_list (d.head :: d.body) in
  let n = Array.length d_literals in
  let rels_by_pred = Hashtbl.create 16 in
  let repairs_by_origin = Hashtbl.create 16 in
  let sim_ids = ref [] in
  (* Cons per literal, one reversal per bucket afterwards: buckets come
     out in ascending literal id, i.e. candidates enumerate in the target
     clause's body order (head first) — pinned by a test. The old scheme
     re-read each bucket through the table on every push. *)
  let push tbl key id =
    match Hashtbl.find_opt tbl key with
    | Some ids -> ids := id :: !ids
    | None -> Hashtbl.add tbl key (ref [ id ])
  in
  let staged_rels = Hashtbl.create 16 in
  let staged_repairs = Hashtbl.create 16 in
  for id = 0 to n - 1 do
    match d_literals.(id) with
    | Literal.Rel { pred; _ } -> push staged_rels pred id
    | Literal.Repair r -> push staged_repairs (Literal.origin_to_string r.origin) id
    | Literal.Sim _ -> sim_ids := id :: !sim_ids
    | Literal.Eq _ | Literal.Neq _ -> ()
  done;
  Hashtbl.iter (fun k ids -> Hashtbl.replace rels_by_pred k (List.rev !ids)) staged_rels;
  Hashtbl.iter
    (fun k ids -> Hashtbl.replace repairs_by_origin k (List.rev !ids))
    staged_repairs;
  sim_ids := List.rev !sim_ids;
  (* Connectivity of repair literals (Def. 4.4): a repair literal is
     connected to a non-repair literal L when its subject or replacement
     occurs in L, or occurs in the arguments of a repair literal connected
     to L. We take the closure over repair-repair term sharing. *)
  let repair_ids =
    Hashtbl.fold (fun _ ids acc -> ids @ acc) repairs_by_origin []
  in
  let repair_terms =
    List.map (fun id -> (id, literal_key_terms d_literals.(id))) repair_ids
  in
  let shares_term ts1 ts2 =
    List.exists (fun t -> List.exists (Term.equal t) ts2) ts1
  in
  let attached_repairs =
    Array.init n (fun id ->
        match d_literals.(id) with
        | Literal.Repair _ -> IntSet.empty
        | l ->
            let lterms = Literal.terms l in
            let direct =
              List.filter (fun (_, rts) -> shares_term rts lterms) repair_terms
            in
            let connected = ref direct in
            let changed = ref true in
            while !changed do
              changed := false;
              List.iter
                (fun (rid, rts) ->
                  if not (List.mem_assoc rid !connected) then
                    if
                      List.exists
                        (fun (_, cts) -> shares_term rts cts)
                        !connected
                    then begin
                      connected := (rid, rts) :: !connected;
                      changed := true
                    end)
                repair_terms
            done;
            IntSet.of_list (List.map fst !connected))
  in
  {
    d_literals;
    rels_by_pred;
    repairs_by_origin;
    sim_ids = !sim_ids;
    env = Clause_env.of_body (d.head :: d.body);
    attached_repairs;
  }

(* A constant of C matches a term of D when they are equal, or when D's
   equality literals identify them — ground bottom clauses relate split
   occurrences of one value through explicit equality literals. *)
let unify_term env theta c_term d_term =
  match c_term with
  | Term.Const _ ->
      if Clause_env.eq env c_term d_term then Some theta else None
  | Term.Var v -> Substitution.bind theta v d_term

let unify_args env theta c_args d_args =
  if Array.length c_args <> Array.length d_args then None
  else
    let rec go theta i =
      if i >= Array.length c_args then Some theta
      else
        match unify_term env theta c_args.(i) d_args.(i) with
        | Some theta' -> go theta' (i + 1)
        | None -> None
    in
    go theta 0

(* Candidate (θ', image-id option) extensions for one literal of C. *)
let candidates target budget theta literal =
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise Exhausted
  in
  match literal with
  | Literal.Rel { pred; args } ->
      let ids = Option.value ~default:[] (Hashtbl.find_opt target.rels_by_pred pred) in
      spend (List.length ids);
      List.filter_map
        (fun id ->
          match target.d_literals.(id) with
          | Literal.Rel { args = dargs; _ } ->
              Option.map (fun th -> (th, Some id)) (unify_args target.env theta args dargs)
          | _ -> None)
        ids
  | Literal.Repair r ->
      let key = Literal.origin_to_string r.origin in
      let ids =
        Option.value ~default:[] (Hashtbl.find_opt target.repairs_by_origin key)
      in
      spend (List.length ids);
      List.filter_map
        (fun id ->
          match target.d_literals.(id) with
          | Literal.Repair dr -> (
              match unify_term target.env theta r.subject dr.subject with
              | None -> None
              | Some th -> (
                  match unify_term target.env th r.replacement dr.replacement with
                  | None -> None
                  | Some th' -> Some (th', Some id)))
          | _ -> None)
        ids
  | Literal.Sim (x, y) ->
      let tx = Substitution.apply_term theta x
      and ty = Substitution.apply_term theta y in
      let via_env =
        if Term.is_var tx || Term.is_var ty then []
        else if Clause_env.sim target.env tx ty then [ (theta, None) ]
        else []
      in
      spend (List.length target.sim_ids);
      let via_literals =
        List.concat_map
          (fun id ->
            match target.d_literals.(id) with
            | Literal.Sim (dx, dy) ->
                let attempt a b =
                  match unify_term target.env theta x a with
                  | None -> None
                  | Some th -> (
                      match unify_term target.env th y b with
                      | None -> None
                      | Some th' -> Some (th', Some id))
                in
                List.filter_map Fun.id [ attempt dx dy; attempt dy dx ]
            | _ -> [])
          target.sim_ids
      in
      via_env @ via_literals
  | Literal.Eq _ | Literal.Neq _ -> assert false (* handled as checks *)

(* Resolve Eq/Neq check literals once every generative literal is mapped.
   Unbound variables are grouped by the Eq literals and each group bound
   to its bound member, or to a fresh constant distinct from everything. *)
let resolve_checks target theta checks =
  let module UF = Hashtbl in
  let parent : (string, string) UF.t = UF.create 8 in
  let rec find v =
    match UF.find_opt parent v with
    | None -> v
    | Some p ->
        let r = find p in
        UF.replace parent v r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then UF.replace parent ra rb
  in
  (* First pass: union unbound variables related by Eq checks. *)
  List.iter
    (function
      | Literal.Eq (x, y) -> (
          match
            ( Substitution.apply_term theta x,
              Substitution.apply_term theta y )
          with
          | Term.Var u, Term.Var v -> union u v
          | _ -> ())
      | _ -> ())
    checks;
  (* Second pass: bind each class — to a bound member's image if an Eq
     check links it to one, otherwise to a fresh constant. *)
  let class_binding : (string, Term.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | Literal.Eq (x, y) -> (
          match
            ( Substitution.apply_term theta x,
              Substitution.apply_term theta y )
          with
          | Term.Var u, (Term.Const _ as c) | (Term.Const _ as c), Term.Var u
            ->
              Hashtbl.replace class_binding (find u) c
          | Term.Var u, (Term.Var _ as d) when not (Term.is_var (Substitution.apply_term theta d)) ->
              Hashtbl.replace class_binding (find u) (Substitution.apply_term theta d)
          | _ -> ())
      | _ -> ())
    checks;
  let fresh_counter = ref 0 in
  let resolve term =
    match Substitution.apply_term theta term with
    | Term.Const _ as c -> c
    | Term.Var v -> (
        let root = find v in
        match Hashtbl.find_opt class_binding root with
        | Some t -> t
        | None ->
            incr fresh_counter;
            let c =
              Term.Const
                (Dlearn_relation.Value.String
                   (Printf.sprintf "\xe2\x8a\xa5fresh:%s" root))
            in
            Hashtbl.replace class_binding root c;
            c)
  in
  List.for_all
    (function
      | Literal.Eq (x, y) -> Clause_env.eq target.env (resolve x) (resolve y)
      | Literal.Neq (x, y) -> Clause_env.neq target.env (resolve x) (resolve y)
      | _ -> true)
    checks

let check_repair_connectivity target image =
  (* Every D repair literal attached to a mapped non-repair literal must be
     mapped itself. The head of D (id 0) is always mapped. *)
  let mapped_non_repair = ref (IntSet.singleton 0) in
  let mapped_repairs = ref IntSet.empty in
  IntSet.iter
    (fun id ->
      match target.d_literals.(id) with
      | Literal.Repair _ -> mapped_repairs := IntSet.add id !mapped_repairs
      | _ -> mapped_non_repair := IntSet.add id !mapped_non_repair)
    image;
  IntSet.for_all
    (fun id -> IntSet.subset target.attached_repairs.(id) !mapped_repairs)
    !mapped_non_repair

let is_check = function
  | Literal.Eq _ | Literal.Neq _ -> true
  | Literal.Rel _ | Literal.Sim _ | Literal.Repair _ -> false

(* Split literals into connected components of the graph whose edges are
   shared unbound variables. Components are independent subproblems: a
   failed assignment in one can never be fixed by backtracking into
   another, which is what makes matching 100-literal bottom clauses
   tractable. *)
let components theta literals =
  let unbound l =
    List.filter (fun v -> not (Substitution.mem theta v)) (Literal.vars l)
  in
  let items = List.map (fun l -> (l, unbound l)) literals in
  let by_var : (string, int list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun i (_, vars) ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt by_var v with
          | Some ids -> ids := i :: !ids
          | None -> Hashtbl.add by_var v (ref [ i ]))
        vars)
    items;
  let n = List.length items in
  let arr = Array.of_list items in
  let comp = Array.make n (-1) in
  let rec mark i c =
    if comp.(i) = -1 then begin
      comp.(i) <- c;
      List.iter
        (fun v ->
          match Hashtbl.find_opt by_var v with
          | Some ids -> List.iter (fun j -> mark j c) !ids
          | None -> ())
        (snd arr.(i))
    end
  in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if comp.(i) = -1 then begin
      mark i !next;
      incr next
    end
  done;
  List.init !next (fun c ->
      List.filteri (fun i _ -> comp.(i) = c) (List.map fst items))

let subsumes_target ?(budget = 200_000) ?(repair_connectivity = true)
    (c : Clause.t) (target : target) =
  let budget = ref budget in
  let head_theta =
    match c.head, target.d_literals.(0) with
    | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
      when String.equal p1 p2 ->
        unify_args target.env Substitution.empty a1 a2
    | _ -> None
  in
  match head_theta with
  | None -> Not_subsumed
  | Some theta0 -> (
      let eval_check theta l =
        match l with
        | Literal.Eq (x, y) -> (
            match
              ( Substitution.apply_term theta x,
                Substitution.apply_term theta y )
            with
            | (Term.Var _, _ | _, Term.Var _) -> `Unknown
            | tx, ty ->
                if Clause_env.eq target.env tx ty then `Sat else `Unsat)
        | Literal.Neq (x, y) -> (
            match
              ( Substitution.apply_term theta x,
                Substitution.apply_term theta y )
            with
            | (Term.Var _, _ | _, Term.Var _) -> `Unknown
            | tx, ty ->
                if Clause_env.neq target.env tx ty then `Sat else `Unsat)
        | _ -> `Unknown
      in
      (* Solve one component: pick the generative literal with the fewest
         unbound variables, branch over its candidate extensions, recurse
         (the recursion re-splits into components). Returns the extended
         substitution and image, or None. *)
      let unbound_count theta l =
        List.length
          (List.filter
             (fun v -> not (Substitution.mem theta v))
             (Literal.vars l))
      in
      let rec solve remaining theta image =
        (* Drop satisfied checks; fail on violated ones. *)
        let rec filter_checks acc = function
          | [] -> Some (List.rev acc)
          | l :: rest when is_check l -> (
              match eval_check theta l with
              | `Sat -> filter_checks acc rest
              | `Unsat -> None
              | `Unknown -> filter_checks (l :: acc) rest)
          | l :: rest -> filter_checks (l :: acc) rest
        in
        match filter_checks [] remaining with
        | None -> None
        | Some [] -> Some (theta, image)
        | Some remaining -> (
            match components theta remaining with
            | [] -> Some (theta, image)
            | [ component ] -> solve_component component theta image
            | comps ->
                (* Independent subproblems: thread θ and image through. *)
                let rec fold theta image = function
                  | [] -> Some (theta, image)
                  | comp :: rest -> (
                      match solve comp theta image with
                      | None -> None
                      | Some (theta', image') -> fold theta' image' rest)
                in
                fold theta image
                  (List.stable_sort
                     (fun a b ->
                       Int.compare (List.length a) (List.length b))
                     comps))
      and solve_component component theta image =
        let gens = List.filter (fun l -> not (is_check l)) component in
        match gens with
        | [] ->
            (* Only restriction literals with unbound variables remain:
               resolve them with the union-find / fresh-constant scheme. *)
            if resolve_checks target theta component then Some (theta, image)
            else None
        | _ ->
            (* Schema and repair atoms generate bindings; similarity
               literals are satisfiable through the environment's closure
               once their sides are bound, so they are only selected when
               no atom remains -- picking one early with an unbound side
               dead-ends whenever D has no explicit similarity literal. *)
            let pool =
              match
                List.filter
                  (function
                    | Literal.Rel _ | Literal.Repair _ -> true
                    | _ -> false)
                  gens
              with
              | [] -> gens
              | atoms -> atoms
            in
            let next, _ =
              List.fold_left
                (fun (best, best_score) l ->
                  let score = unbound_count theta l in
                  if score < best_score then (l, score) else (best, best_score))
                (List.hd pool, unbound_count theta (List.hd pool))
                (List.tl pool)
            in
            let rest = List.filter (fun l -> not (l == next)) component in
            let rec try_candidates = function
              | [] -> None
              | (theta', id_opt) :: more -> (
                  let image' =
                    match id_opt with
                    | Some id -> IntSet.add id image
                    | None -> image
                  in
                  match solve rest theta' image' with
                  | Some _ as ok -> ok
                  | None -> try_candidates more)
            in
            try_candidates (candidates target budget theta next)
      in
      try
        match solve c.body theta0 IntSet.empty with
        | Some (theta, image) ->
            if
              repair_connectivity
              && not (check_repair_connectivity target image)
            then Not_subsumed
            else Subsumed theta
        | None -> Not_subsumed
      with Exhausted -> Budget_exhausted)

let subsumes ?budget ?repair_connectivity c d =
  subsumes_target ?budget ?repair_connectivity c (prepare d)

(* Reference engine: chronological backtracking in body order. *)
let subsumes_naive ?(budget = 200_000) ?(repair_connectivity = true)
    (c : Clause.t) (d : Clause.t) =
  let target = prepare d in
  let budget = ref budget in
  let head_theta =
    match c.head, target.d_literals.(0) with
    | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
      when String.equal p1 p2 ->
        unify_args target.env Substitution.empty a1 a2
    | _ -> None
  in
  match head_theta with
  | None -> Not_subsumed
  | Some theta0 -> (
      let gens, checks =
        List.partition
          (function
            | Literal.Rel _ | Literal.Repair _ | Literal.Sim _ -> true
            | Literal.Eq _ | Literal.Neq _ -> false)
          c.body
      in
      let rec search remaining theta image =
        match remaining with
        | [] ->
            if not (resolve_checks target theta checks) then None
            else if
              repair_connectivity
              && not (check_repair_connectivity target image)
            then None
            else Some theta
        | l :: rest ->
            let rec try_candidates = function
              | [] -> None
              | (theta', id_opt) :: more -> (
                  let image' =
                    match id_opt with
                    | Some id -> IntSet.add id image
                    | None -> image
                  in
                  match search rest theta' image' with
                  | Some _ as ok -> ok
                  | None -> try_candidates more)
            in
            try_candidates (candidates target budget theta l)
      in
      try
        match search gens theta0 IntSet.empty with
        | Some theta -> Subsumed theta
        | None -> Not_subsumed
      with Exhausted -> Budget_exhausted)

let report_exhausted c =
  Log.warn (fun m ->
      m "subsumption budget exhausted for %s-clause" (Clause.head_pred c))

let subsumes_target_bool ?budget ?repair_connectivity c t =
  match subsumes_target ?budget ?repair_connectivity c t with
  | Subsumed _ -> true
  | Not_subsumed -> false
  | Budget_exhausted ->
      report_exhausted c;
      false

let subsumes_bool ?budget ?repair_connectivity c d =
  match subsumes ?budget ?repair_connectivity c d with
  | Subsumed _ -> true
  | Not_subsumed -> false
  | Budget_exhausted ->
      report_exhausted c;
      false

let equivalent ?budget c d =
  subsumes_bool ?budget c d && subsumes_bool ?budget d c

module Armg = struct
  let head_unify target head =
    match head, target.d_literals.(0) with
    | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
      when String.equal p1 p2 ->
        unify_args target.env Substitution.empty a1 a2
    | _ -> None

  let extend target theta = function
    | (Literal.Rel _ | Literal.Repair _ | Literal.Sim _) as l ->
        let budget = ref max_int in
        List.map fst (candidates target budget theta l)
    | Literal.Eq _ | Literal.Neq _ ->
        invalid_arg "Subsumption.Armg.extend: restriction literal"

  let check target theta = function
    | Literal.Eq (x, y) -> (
        match
          (Substitution.apply_term theta x, Substitution.apply_term theta y)
        with
        | (Term.Var _, _ | _, Term.Var _) -> `Unknown
        | tx, ty -> if Clause_env.eq target.env tx ty then `Sat else `Unsat)
    | Literal.Neq (x, y) -> (
        match
          (Substitution.apply_term theta x, Substitution.apply_term theta y)
        with
        | (Term.Var _, _ | _, Term.Var _) -> `Unknown
        | tx, ty -> if Clause_env.neq target.env tx ty then `Sat else `Unsat)
    | Literal.Rel _ | Literal.Sim _ | Literal.Repair _ ->
        invalid_arg "Subsumption.Armg.check: generative literal"
end
