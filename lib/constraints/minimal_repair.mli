(** Minimal repair of CFD violations by value modification (§2.3, §6.1.3).

    This is the cleaning step used by the paper's [DLearn-Repaired]
    baseline: every violating group is repaired by updating the
    right-hand-side values — to the pattern constant when the CFD fixes
    one, otherwise to the group's most frequent value (fewest
    modifications, the popular minimal-repair heuristic [23]). Repairing
    one CFD can surface violations of another, so the pass iterates to a
    fixpoint with a round bound; an inconsistent CFD set can cycle, which
    is reported via [Logs] and cut off. *)

(** [repair_relation ?max_rounds cfds relation] returns a repaired copy.
    All [cfds] must be over [relation]'s name; others are ignored. *)
val repair_relation :
  ?max_rounds:int -> Cfd.t list -> Dlearn_relation.Relation.t -> Dlearn_relation.Relation.t

(** [repair ?max_rounds cfds db] repairs every relation of [db] against
    the CFDs that mention it, returning a fresh database. *)
val repair :
  ?max_rounds:int ->
  Cfd.t list ->
  Dlearn_relation.Database.t ->
  Dlearn_relation.Database.t

(** [modifications before after] counts differing attribute values between
    two same-schema, same-cardinality relations — the repair cost. *)
val modifications :
  Dlearn_relation.Relation.t -> Dlearn_relation.Relation.t -> int
