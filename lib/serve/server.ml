(* The dlearn serve loop: a Unix-domain socket server holding one warm
   learning state — a versioned database ({!Dlearn_relation.Vdb}), a
   long-lived {!Dlearn_core.Context} over its head, and the workload's
   labelled examples — and answering length-prefixed JSON requests
   ({!Protocol}). Requests share the warm caches: a learn after a small
   committed delta re-resolves only the invalidated examples instead of
   rebuilding the context (docs/SERVE.md).

   Concurrency model: one systhread per connection; every request takes
   a readers–writer lock — learn/coverage/check/query/status share it,
   insert/update/shutdown take it exclusively. Read requests may fan out
   over the context's domain pool internally; the RW lock only orders
   whole requests against commits, which is exactly what the versioned
   core asks of its caller (relation indexes are not safe under
   concurrent mutation). Commits invalidate the context through the
   {!Dlearn_relation.Vdb.subscribe} hook before the writer lock is
   released, so no read ever sees a new database under stale verdicts. *)

open Dlearn_relation
open Dlearn_core
open Dlearn_eval
module Obs = Dlearn_obs.Obs

(* {2 A small readers-writer lock}

   Writer-preferring: a waiting writer blocks new readers, so a stream
   of coverage requests cannot starve an insert. Requests are coarse
   (milliseconds to seconds), so fairness matters more than throughput
   of the lock itself. *)
module Rwlock = struct
  type t = {
    m : Mutex.t;
    turn : Condition.t;
    mutable readers : int;
    mutable writing : bool;
    mutable waiting_writers : int;
  }

  let create () =
    {
      m = Mutex.create ();
      turn = Condition.create ();
      readers = 0;
      writing = false;
      waiting_writers = 0;
    }

  let read t f =
    Mutex.protect t.m (fun () ->
        while t.writing || t.waiting_writers > 0 do
          Condition.wait t.turn t.m
        done;
        t.readers <- t.readers + 1);
    Fun.protect f ~finally:(fun () ->
        Mutex.protect t.m (fun () ->
            t.readers <- t.readers - 1;
            Condition.broadcast t.turn))

  let write t f =
    Mutex.protect t.m (fun () ->
        t.waiting_writers <- t.waiting_writers + 1;
        while t.writing || t.readers > 0 do
          Condition.wait t.turn t.m
        done;
        t.waiting_writers <- t.waiting_writers - 1;
        t.writing <- true);
    Fun.protect f ~finally:(fun () ->
        Mutex.protect t.m (fun () ->
            t.writing <- false;
            Condition.broadcast t.turn))
end

type t = {
  workload : Workload.t;
  vdb : Vdb.t;
  ctx : Context.t;
  rw : Rwlock.t;
  last_invalidated : int Atomic.t;
      (* examples invalidated by the most recent commit, stamped by the
         subscriber so write responses can report it *)
  stop : bool Atomic.t;
}

let requests_c = Obs.counter "serve.requests"
let errors_c = Obs.counter "serve.errors"
let connections_c = Obs.counter "serve.connections"

let create workload =
  let vdb = Vdb.of_database workload.Workload.db in
  (* The context reads the vdb's live head: commits mutate it in place
     (inserts) or swap relations (updates), and the subscriber below
     invalidates exactly the state those deltas can touch. *)
  let ctx =
    Context.create workload.Workload.config (Vdb.head vdb)
      workload.Workload.mds workload.Workload.cfds
  in
  let t =
    {
      workload;
      vdb;
      ctx;
      rw = Rwlock.create ();
      last_invalidated = Atomic.make 0;
      stop = Atomic.make false;
    }
  in
  Vdb.subscribe vdb (fun _version deltas ->
      let n = Context.apply_delta ctx (Vdb.changed_tuples deltas) in
      Atomic.set t.last_invalidated n);
  t

let workload t = t.workload
let context t = t.ctx
let vdb t = t.vdb

(* {2 Request handlers} *)

let take n l =
  if n < 0 then invalid_arg "take: negative count"
  else List.filteri (fun i _ -> i < n) l

let field_exn name req =
  match Json.member name req with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing field %S" name)

let string_exn name req =
  match Json.string_field name req with
  | Some s -> s
  | None -> failwith (Printf.sprintf "missing string field %S" name)

let tuple_exn name req =
  match field_exn name req with
  | Json.List items ->
      Tuple.of_strings
        (List.map
           (function
             | Json.String s -> s
             | _ -> failwith (Printf.sprintf "field %S: expected strings" name))
           items)
  | _ -> failwith (Printf.sprintf "field %S: expected an array" name)

let handle_status t =
  let db = Vdb.head t.vdb in
  Protocol.ok
    [
      ("dataset", Json.String t.workload.Workload.name);
      ("version", Json.Int (Vdb.version_id (Vdb.version t.vdb)));
      ("relations", Json.Int (List.length (Database.relation_names db)));
      ("tuples", Json.Int (Database.total_tuples db));
      ("pos", Json.Int (List.length t.workload.Workload.pos));
      ("neg", Json.Int (List.length t.workload.Workload.neg));
      ("cached_examples", Json.Int (Context.example_count t.ctx));
    ]

let handle_learn t req =
  let pos = t.workload.Workload.pos and neg = t.workload.Workload.neg in
  let pos =
    match Json.int_field "pos" req with Some n -> take n pos | None -> pos
  in
  let neg =
    match Json.int_field "neg" req with Some n -> take n neg | None -> neg
  in
  (* Rewind the sampling stream: a warm learn must draw exactly the
     samples a cold run would, so definitions are byte-identical. *)
  Context.reset_rng t.ctx;
  let r = Learner.learn t.ctx ~pos ~neg in
  Protocol.ok
    [
      ( "clauses",
        Json.List
          (List.map
             (fun c -> Json.String (Dlearn_logic.Clause.to_string c))
             r.Learner.definition.Dlearn_logic.Definition.clauses) );
      ( "stats",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("pos_covered", Json.Int s.Learner.pos_covered);
                   ("neg_covered", Json.Int s.Learner.neg_covered);
                 ])
             r.Learner.stats) );
      ("seconds", Json.Float r.Learner.seconds);
      ("seeds_skipped", Json.Int r.Learner.seeds_skipped);
      ("version", Json.Int (Vdb.version_id (Vdb.version t.vdb)));
    ]

let parse_clause_exn text =
  match Dlearn_logic.Parser.clause text with
  | Ok c -> c
  | Error msg -> failwith ("clause does not parse: " ^ msg)

let handle_coverage t req =
  let c = parse_clause_exn (string_exn "clause" req) in
  let prepared = Coverage.prepare t.ctx c in
  let p, n =
    Coverage.coverage t.ctx prepared ~pos:t.workload.Workload.pos
      ~neg:t.workload.Workload.neg
  in
  Protocol.ok
    [
      ("pos_covered", Json.Int p);
      ("neg_covered", Json.Int n);
      ("pos", Json.Int (List.length t.workload.Workload.pos));
      ("neg", Json.Int (List.length t.workload.Workload.neg));
    ]

let handle_check t req =
  let open Dlearn_analysis in
  let clauses =
    match Json.list_field "clauses" req with
    | Some items ->
        List.map
          (function
            | Json.String s -> s
            | _ -> failwith "field \"clauses\": expected strings")
          items
    | None -> []
  in
  let target = t.workload.Workload.config.Config.target in
  let db = Vdb.head t.vdb in
  let constraint_ds =
    Analyzer.check_constraints db ~mds:t.workload.Workload.mds
      ~cfds:t.workload.Workload.cfds
  in
  let clause_ds =
    List.concat_map
      (fun text ->
        match Dlearn_logic.Parser.clause text with
        | Error msg ->
            [
              Diagnostic.error ~code:"DL001" ~subject:Diagnostic.General
                ~witness:text ("clause does not parse: " ^ msg);
            ]
        | Ok c -> Analyzer.check_clause db ~target c)
      clauses
  in
  let ds = constraint_ds @ clause_ds in
  (* The analyzer already renders JSON; re-parse to embed structurally. *)
  Protocol.ok
    [
      ("diagnostics", Json.of_string (Diagnostic.report_to_json ds));
      ("errors", Json.Bool (Diagnostic.has_errors ds));
    ]

let handle_query t req =
  let c = parse_clause_exn (string_exn "clause" req) in
  let limit =
    match Json.int_field "limit" req with Some n -> n | None -> 25
  in
  let oracle =
    Dlearn_query.Conjunctive.oracle_of_spec
      t.workload.Workload.config.Config.sim
  in
  let rows =
    Dlearn_query.Conjunctive.answers ~limit (Vdb.head t.vdb) oracle c
  in
  Protocol.ok
    [
      ( "rows",
        Json.List
          (List.map
             (fun tu ->
               Json.List
                 (List.init (Tuple.arity tu) (fun i ->
                      Json.String (Value.to_string (Tuple.get tu i)))))
             rows) );
    ]

let write_response t = function
  | Ok version ->
      Protocol.ok
        [
          ("version", Json.Int (Vdb.version_id version));
          ("invalidated", Json.Int (Atomic.get t.last_invalidated));
        ]
  | Error e -> Protocol.error (Vdb.error_to_string e)

let handle_insert t req =
  let rel = string_exn "relation" req in
  let tuple = tuple_exn "values" req in
  write_response t (Vdb.insert_one t.vdb rel tuple)

let handle_update t req =
  let rel = string_exn "relation" req in
  let id =
    match Json.int_field "id" req with
    | Some id -> id
    | None -> failwith "missing int field \"id\""
  in
  let tuple = tuple_exn "values" req in
  write_response t (Vdb.update_one t.vdb rel id tuple)

let handle_metrics () =
  (* [report_json] renders the registry; re-parse to embed. *)
  Protocol.ok [ ("metrics", Json.of_string (Obs.report_json ())) ]

(* Dispatch one request. Reads share the RW lock; writes (and shutdown)
   exclude them. Every handler error becomes an {"ok":false} response —
   a bad request must not kill the connection, let alone the server. *)
let handle t req =
  Obs.incr requests_c;
  let op = Protocol.op_of_request req in
  let dispatch () =
    match op with
    | "ping" -> Protocol.ok [ ("pong", Json.Bool true) ]
    | "status" -> Rwlock.read t.rw (fun () -> handle_status t)
    | "learn" -> Rwlock.read t.rw (fun () -> handle_learn t req)
    | "coverage" -> Rwlock.read t.rw (fun () -> handle_coverage t req)
    | "check" -> Rwlock.read t.rw (fun () -> handle_check t req)
    | "query" -> Rwlock.read t.rw (fun () -> handle_query t req)
    | "insert" -> Rwlock.write t.rw (fun () -> handle_insert t req)
    | "update" -> Rwlock.write t.rw (fun () -> handle_update t req)
    | "metrics" -> handle_metrics ()
    | "shutdown" ->
        Atomic.set t.stop true;
        Protocol.ok []
    | other -> Protocol.error (Printf.sprintf "unknown op %S" other)
  in
  try Obs.span ("serve." ^ op) dispatch
  with exn ->
    Obs.incr errors_c;
    Protocol.error (Printexc.to_string exn)

(* {2 The socket loop} *)

let rec accept_ready fd stop =
  (* Block in [select] with a short timeout so a shutdown request (or
     signal handler setting [stop]) is noticed without a connection. *)
  if Atomic.get stop then None
  else
    match Unix.select [ fd ] [] [] 0.2 with
    | [ _ ], _, _ -> Some (fst (Unix.accept fd))
    | _ -> accept_ready fd stop
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_ready fd stop

let serve_connection t fd =
  Obs.incr connections_c;
  let rec loop () =
    match Protocol.read_json fd with
    | req ->
        Protocol.write_json fd (handle t req);
        if not (Atomic.get t.stop) then loop ()
    | exception End_of_file -> ()
    | exception Protocol.Protocol_error msg ->
        Obs.incr errors_c;
        (try Protocol.write_json fd (Protocol.error msg)
         with Unix.Unix_error _ -> ())
  in
  Fun.protect loop ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())

let run t ~socket_path =
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    (fun () ->
      Unix.bind listener (Unix.ADDR_UNIX socket_path);
      Unix.listen listener 16;
      let threads = ref [] in
      let rec accept_loop () =
        match accept_ready listener t.stop with
        | None -> ()
        | Some conn ->
            threads :=
              Thread.create (fun () -> serve_connection t conn) () :: !threads;
            accept_loop ()
      in
      accept_loop ();
      (* Drain: connections observe [stop] after their in-flight request
         (or close on their own); join so the caller sees quiescence. *)
      List.iter Thread.join !threads)
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      if Sys.file_exists socket_path then Sys.remove socket_path)

let stop t = Atomic.set t.stop true
