(** Binary-classification metrics over the target relation (§6.1.3). *)

type confusion = {
  tp : int;
  fp : int;
  tn : int;
  fn : int;
}

val empty : confusion

val add : confusion -> confusion -> confusion

(** [of_predictions ~predict ~pos ~neg] runs the predictor over labelled
    test examples. *)
val of_predictions :
  predict:(Dlearn_relation.Tuple.t -> bool) ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  confusion

(** Precision TP/(TP+FP); 0 when the denominator is 0. *)
val precision : confusion -> float

(** Recall TP/(TP+FN); 0 when the denominator is 0. *)
val recall : confusion -> float

(** Harmonic mean of precision and recall; 0 when both are 0. *)
val f1 : confusion -> float

val accuracy : confusion -> float

val pp : Format.formatter -> confusion -> unit
