(** Schema typechecking of clauses (analyzer pass 2).

    Validates every schema atom of a clause against the database catalog,
    and the restriction literals against the attribute domains its
    variables are drawn from:

    - [DL201] (error): unknown predicate — a body atom over a relation
      absent from the catalog.
    - [DL202] (error): arity mismatch between an atom and its relation's
      schema.
    - [DL203] (error): a constant argument whose type conflicts with the
      attribute domain (e.g. a string constant in an integer column).
    - [DL204] (error): a similarity literal over a non-string operand —
      [≈] is defined on string domains only (§2.2).
    - [DL205] (error): a variable used at attributes of conflicting
      domains; equality across domains never holds, so the clause covers
      nothing.
    - [DL206] (hint): the head predicate differs from the configured
      target relation.

    The head atom is validated against [target] when provided; predicates
    matching [target]'s name are resolved against it rather than the
    catalog (the target relation typically holds the training examples and
    is not part of the background database). *)

val check :
  Dlearn_relation.Database.t ->
  ?target:Dlearn_relation.Schema.t ->
  Dlearn_logic.Clause.t ->
  Diagnostic.t list
