(** Conditional functional dependencies (§2.3).

    A CFD [(X → A, tp)] over relation [R] couples an FD with a pattern
    tuple [tp] over [X ∪ {A}]; each pattern entry is a constant or the
    unnamed wildcard ['-']. A pair of tuples violates the CFD when they
    agree on [X], match the pattern on [X], and fail to agree on [A] while
    matching [tp\[A\]] (a single tuple can violate a constant right-hand
    side on its own — the pair (t, t)). Following the paper we keep a
    single attribute on the right-hand side. *)

type pattern =
  | Const of Dlearn_relation.Value.t
  | Wildcard

type t = {
  id : string;
  relation : string;
  lhs : (string * pattern) list;  (** X with its pattern entries *)
  rhs : string * pattern;  (** A with its pattern entry *)
}

(** [make ~id ~relation ~lhs ~rhs] builds a CFD.
    @raise Invalid_argument if [lhs] is empty or [rhs]'s attribute also
    appears in [lhs]. *)
val make :
  id:string ->
  relation:string ->
  lhs:(string * pattern) list ->
  rhs:string * pattern ->
  t

(** [fd ~id ~relation xs a] is the plain FD [X → A] (all wildcards). *)
val fd : id:string -> relation:string -> string list -> string -> t

(** [matches p v] is the paper's [≍]: [v ≍ p] when [p] is the wildcard or
    the equal constant. *)
val matches : pattern -> Dlearn_relation.Value.t -> bool

(** [lhs_positions t schema] resolves attribute names to positions.
    @raise Invalid_argument naming the CFD, the missing attribute and the
    relation when an attribute is absent from [schema]. *)
val lhs_positions : t -> Dlearn_relation.Schema.t -> (int * pattern) list

(** [rhs_position t schema] resolves the right-hand attribute.
    @raise Invalid_argument as for {!lhs_positions}. *)
val rhs_position : t -> Dlearn_relation.Schema.t -> int * pattern

(** [pair_violates t schema t1 t2] holds when the tuple pair violates the
    CFD. *)
val pair_violates :
  t ->
  Dlearn_relation.Schema.t ->
  Dlearn_relation.Tuple.t ->
  Dlearn_relation.Tuple.t ->
  bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
