type t =
  | Null
  | Int of int
  | Float of float
  | String of string

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | (Null | Int _ | Float _ | String _), _ -> false

let compare a b =
  let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | String _ -> 3 in
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (1, x)
  | Float x -> Hashtbl.hash (2, x)
  | String x -> Hashtbl.hash (3, x)

let is_null = function Null -> true | Int _ | Float _ | String _ -> false

let to_string = function
  | Null -> "\xe2\x90\x80"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | String x -> x

let pp fmt v = Format.pp_print_string fmt (to_string v)

let of_string s =
  if String.length s = 0 then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> String s)

let as_string = to_string
