type t = {
  target : string;
  clauses : Clause.t list;
}

let empty target = { target; clauses = [] }

let add t c =
  if not (String.equal (Clause.head_pred c) t.target) then
    invalid_arg
      (Printf.sprintf "Definition.add: clause head %s, expected %s"
         (Clause.head_pred c) t.target);
  { t with clauses = t.clauses @ [ c ] }

let size t = List.length t.clauses
let is_empty t = t.clauses = []

let repaired_definitions ?(cap = 256) t =
  let choices = List.map Clause_repair.repaired_clauses t.clauses in
  let rec product = function
    | [] -> [ [] ]
    | cs :: rest ->
        let tails = product rest in
        List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) cs
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take cap (List.map (fun cs -> { t with clauses = cs }) (product choices))

let to_string t =
  match t.clauses with
  | [] -> Printf.sprintf "%s <- (empty definition)" t.target
  | cs -> String.concat "\n" (List.map Clause.to_string cs)

let pp fmt t = Format.pp_print_string fmt (to_string t)
