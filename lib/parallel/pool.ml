let src = Logs.Src.create "dlearn.pool" ~doc:"Domain pool counters"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Dlearn_obs.Obs

(* ------------------------------------------------------------------ *)
(* Cost model.

   Every batch starts by running items inline on the submitting domain
   while the clock runs. The measured per-item cost decides, per batch:

   - finish inline when the predicted remaining work is below
     [fanout_threshold_ns] — tiny batches never touch a mutex, a
     condition variable, or another domain;
   - otherwise fan out, with the chunk size derived from
     [remaining / (domains * chunking)] but floored so a chunk is worth
     at least [min_chunk_ns] of work (cheap items get big chunks, so
     per-chunk bookkeeping never dominates).

   The knobs are process-wide atomics so tests can force either path;
   [ewma_item_ns] is a feedback hook fed by every measured batch and
   exposed through {!last_item_cost_ns} for observability. *)

(* Environment overrides (DLEARN_POOL_FANOUT_NS / MIN_CHUNK_NS /
   PROBE_NS) seed the defaults: an ops knob for odd hosts, and the way
   to record a demonstrative fan-out trace on a machine where the model
   would otherwise keep everything inline (FANOUT_NS=0 forces fan-out,
   skipping both the probe and the spare-parallelism check). *)
let env_default name fallback =
  match Sys.getenv_opt name with
  | None -> fallback
  | Some s -> ( try int_of_string (String.trim s) with Failure _ -> fallback)

let default_fanout_threshold_ns = env_default "DLEARN_POOL_FANOUT_NS" 100_000
let default_min_chunk_ns = env_default "DLEARN_POOL_MIN_CHUNK_NS" 20_000
let default_probe_budget_ns = env_default "DLEARN_POOL_PROBE_NS" 10_000
let fanout_threshold_ns = Atomic.make default_fanout_threshold_ns
let min_chunk_ns = Atomic.make default_min_chunk_ns
let probe_budget_ns = Atomic.make default_probe_budget_ns
let ewma_item_ns = Atomic.make 0

let set_cost_model ?fanout_threshold ?min_chunk ?probe_budget () =
  Option.iter (Atomic.set fanout_threshold_ns) fanout_threshold;
  Option.iter (Atomic.set min_chunk_ns) min_chunk;
  Option.iter (Atomic.set probe_budget_ns) probe_budget

let reset_cost_model () =
  Atomic.set fanout_threshold_ns default_fanout_threshold_ns;
  Atomic.set min_chunk_ns default_min_chunk_ns;
  Atomic.set probe_budget_ns default_probe_budget_ns

let last_item_cost_ns () = Atomic.get ewma_item_ns

let note_item_cost per_item =
  let prev = Atomic.get ewma_item_ns in
  let next = if prev = 0 then per_item else (3 * prev + per_item) / 4 in
  Atomic.set ewma_item_ns next

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Jobs.

   A job covers items [base, total) of the caller's batch, split into
   [num_chunks] fixed-size chunks. Chunk indexes are dealt up front into
   one work-stealing deque per participant slot; a participant drains its
   own deque LIFO and then steals FIFO from the others. [completed]
   counts finished chunks; the first exception wins the [failed] slot and
   is re-raised by the submitter once the batch drains. *)
type job = {
  run : int -> int -> unit; (* [run lo hi] processes items [lo, hi) *)
  base : int;
  total : int;
  chunk_size : int;
  num_chunks : int;
  deques : Deque.t array; (* one per slot; slot 0 = submitter *)
  completed : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  size : int; (* participating domains, including the submitter *)
  mutable workers : unit Domain.t list;
  mutable spawned : bool; (* workers exist; guarded by [m] *)
  m : Mutex.t; (* guards job/generation/stopping *)
  cond : Condition.t; (* job arrival and shutdown *)
  done_m : Mutex.t;
  done_c : Condition.t; (* batch completion *)
  mutable job : job option;
  mutable generation : int;
  mutable stopping : bool;
  submit_m : Mutex.t; (* serializes submitters *)
  (* Counters live on the Obs registry under [pool.<size>.*] — pools of
     one size are process-wide singletons (see [get]), so the registry
     name is the pool's identity. The busy array stays local: one slot
     per participant, indexed by position, which the registry's
     per-domain shards cannot represent. *)
  tasks_c : Obs.counter;
  chunks_c : Obs.counter;
  items_c : Obs.counter;
  steals_c : Obs.counter;
  inline_c : Obs.counter;
  participate_h : Obs.histogram;
  chunk_size_h : Obs.histogram;
  busy : float array; (* slot 0 = submitter, 1.. = workers *)
}

type stats = {
  domains : int;
  tasks : int;
  chunks : int;
  items : int;
  steals : int;
  inline_batches : int;
  busy_seconds : float array;
}

(* True while this domain is executing a pool task; nested batches fall
   back to the sequential path instead of deadlocking on the pool. *)
let inside : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)
let in_worker () = !(Domain.DLS.get inside)

let run_chunk pool job c =
  let lo = job.base + (c * job.chunk_size) in
  let hi = min job.total (lo + job.chunk_size) in
  (try job.run lo hi
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set job.failed None (Some (e, bt))));
  Obs.incr pool.chunks_c;
  Obs.add pool.items_c (hi - lo);
  let finished = 1 + Atomic.fetch_and_add job.completed 1 in
  if finished = job.num_chunks then begin
    Mutex.lock pool.done_m;
    Condition.broadcast pool.done_c;
    Mutex.unlock pool.done_m
  end

(* Drain own deque LIFO, then steal FIFO from the others. Exit only after
   one clean scan in which every deque reported Empty and no CAS was
   lost — emptiness is monotone after publication, so a clean scan means
   the batch has no unclaimed chunks left. Runs in workers and in the
   submitting domain alike. *)
let participate pool job slot =
  let t0 = Unix.gettimeofday () in
  let flag = Domain.DLS.get inside in
  let previously = !flag in
  flag := true;
  let own = job.deques.(slot) in
  let nd = Array.length job.deques in
  let rec drain_own () =
    match Deque.pop own with
    | Some c ->
        run_chunk pool job c;
        drain_own ()
    | None -> steal_scan ()
  and steal_scan () =
    let progressed = ref false in
    let contended = ref false in
    for k = 1 to nd - 1 do
      match Deque.steal job.deques.((slot + k) mod nd) with
      | Deque.Stolen c ->
          Obs.incr pool.steals_c;
          run_chunk pool job c;
          progressed := true
      | Deque.Lost -> contended := true
      | Deque.Empty -> ()
    done;
    if !progressed || !contended then steal_scan ()
  in
  drain_own ();
  flag := previously;
  let dt = Unix.gettimeofday () -. t0 in
  pool.busy.(slot) <- pool.busy.(slot) +. dt;
  if Obs.active () then begin
    let dt_ns = int_of_float (dt *. 1e9) in
    Obs.observe_ns pool.participate_h dt_ns;
    if Obs.recording () then
      Obs.emit_event
        ~args:[ ("slot", string_of_int slot) ]
        ~name:"pool.participate"
        ~start_ns:(int_of_float (t0 *. 1e9))
        ~dur_ns:dt_ns ()
  end

let worker_loop pool slot ~generation =
  let seen = ref generation in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stopping) && pool.generation = !seen do
      Condition.wait pool.cond pool.m
    done;
    if pool.stopping then Mutex.unlock pool.m
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.m;
      (match job with Some j -> participate pool j slot | None -> ());
      loop ()
    end
  in
  loop ()

let create ~num_domains =
  let size = max 1 num_domains in
  let pool =
    {
      size;
      workers = [];
      spawned = false;
      m = Mutex.create ();
      cond = Condition.create ();
      done_m = Mutex.create ();
      done_c = Condition.create ();
      job = None;
      generation = 0;
      stopping = false;
      submit_m = Mutex.create ();
      tasks_c = Obs.counter (Printf.sprintf "pool.%d.tasks" size);
      chunks_c = Obs.counter (Printf.sprintf "pool.%d.chunks" size);
      items_c = Obs.counter (Printf.sprintf "pool.%d.items" size);
      steals_c = Obs.counter (Printf.sprintf "pool.%d.steals" size);
      inline_c = Obs.counter (Printf.sprintf "pool.%d.inline" size);
      participate_h = Obs.histogram (Printf.sprintf "pool.%d.participate" size);
      chunk_size_h = Obs.histogram (Printf.sprintf "pool.%d.chunk_size" size);
      busy = Array.make size 0.0;
    }
  in
  pool

(* Worker domains are spawned on the first fan-out, not at pool creation.
   Idle domains are not free: every minor collection is a stop-the-world
   across all spawned domains, so a pool whose batches all run inline
   (single-core host, or uniformly tiny batches) must not tax the
   process for workers it never uses. *)
let ensure_workers pool =
  Mutex.protect pool.m (fun () ->
      if (not pool.spawned) && not pool.stopping then begin
        pool.spawned <- true;
        let generation = pool.generation in
        pool.workers <-
          List.init (pool.size - 1) (fun i ->
              Domain.spawn (fun () -> worker_loop pool (i + 1) ~generation))
      end)

let num_domains pool = pool.size

let stats pool =
  {
    domains = pool.size;
    tasks = Obs.value pool.tasks_c;
    chunks = Obs.value pool.chunks_c;
    items = Obs.value pool.items_c;
    steals = Obs.value pool.steals_c;
    inline_batches = Obs.value pool.inline_c;
    busy_seconds = Array.copy pool.busy;
  }

let log_stats pool =
  let s = stats pool in
  Log.debug (fun m ->
      m "pool[%d domains]: %d tasks, %d chunks, %d items, %d steals, %d inline, busy %s"
        s.domains s.tasks s.chunks s.items s.steals s.inline_batches
        (String.concat "/"
           (Array.to_list
              (Array.map (fun b -> Printf.sprintf "%.2fs" b) s.busy_seconds))))

let shutdown pool =
  let workers =
    Mutex.protect pool.m (fun () ->
        if pool.stopping then []
        else begin
          pool.stopping <- true;
          Condition.broadcast pool.cond;
          let ws = pool.workers in
          pool.workers <- [];
          ws
        end)
  in
  List.iter Domain.join workers;
  if workers <> [] then log_stats pool

(* Publish the job, work on it, then wait for stragglers. The submit lock
   keeps concurrent submitters (and their jobs) strictly ordered. *)
let run_job pool job =
  Mutex.lock pool.submit_m;
  ensure_workers pool;
  Obs.incr pool.tasks_c;
  Mutex.lock pool.m;
  pool.job <- Some job;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.m;
  participate pool job 0;
  Mutex.lock pool.done_m;
  while Atomic.get job.completed < job.num_chunks do
    Condition.wait pool.done_c pool.done_m
  done;
  Mutex.unlock pool.done_m;
  Mutex.unlock pool.submit_m;
  match Atomic.get job.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Chunks per participant once we do fan out: small enough to even out
   skewed item costs (stealing rebalances the rest), large enough to keep
   per-chunk bookkeeping off the hot path. *)
let chunking = 8

let sequential pool = pool.size <= 1 || in_worker ()

(* Adaptive batch runner. Items [0, start) already ran inline on the
   caller starting at absolute time [t0]; finish items [start, n).
   Probing continues inline until the probe budget elapses, then the
   measured per-item cost picks inline finish vs fan-out (see the cost
   model above). Exceptions raised while inline propagate directly; on
   the fan-out path the first failure is re-raised after the batch
   drains, like before. *)
(* Hardware parallelism available to this process. A pool wider than the
   machine still computes correctly, but fanning out past [cores] — and in
   particular on a single-core host — can only add overhead, so the cost
   model folds it into the fan-out verdict. *)
let cores = lazy (Domain.recommended_domain_count ())

let run_from pool ~t0 ~start run n =
  let threshold = Atomic.get fanout_threshold_ns in
  let i = ref start in
  if threshold > 0 then begin
    let deadline = t0 + Atomic.get probe_budget_ns in
    while !i < n && now_ns () < deadline do
      run !i (!i + 1);
      incr i
    done
  end;
  let probed = !i in
  if probed > start then Obs.add pool.items_c (probed - start);
  if probed < n then begin
    let elapsed = now_ns () - t0 in
    let per_item = if probed = 0 then 0 else max 1 (elapsed / probed) in
    if per_item > 0 then note_item_cost per_item;
    let remaining = n - probed in
    if
      threshold > 0
      && (remaining * per_item < threshold || min pool.size (Lazy.force cores) <= 1)
    then begin
      Obs.incr pool.inline_c;
      Obs.add pool.items_c remaining;
      run probed n
    end
    else begin
      let by_cost =
        if per_item = 0 then 1 else Atomic.get min_chunk_ns / per_item
      in
      let chunk_size =
        min remaining (max 1 (max (remaining / (pool.size * chunking)) by_cost))
      in
      let num_chunks = (remaining + chunk_size - 1) / chunk_size in
      Obs.observe_ns pool.chunk_size_h chunk_size;
      let per_deque = (num_chunks + pool.size - 1) / pool.size in
      let deques =
        Array.init pool.size (fun s ->
            let lo = min num_chunks (s * per_deque) in
            Deque.make lo (min num_chunks (lo + per_deque)))
      in
      run_job pool
        {
          run;
          base = probed;
          total = n;
          chunk_size;
          num_chunks;
          deques;
          completed = Atomic.make 0;
          failed = Atomic.make None;
        }
    end
  end

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if sequential pool then Array.map f arr
  else begin
    let t0 = now_ns () in
    let r0 = f arr.(0) in
    let results = Array.make n r0 in
    if n > 1 then begin
      let run lo hi =
        for j = lo to hi - 1 do
          results.(j) <- f arr.(j)
        done
      in
      run_from pool ~t0 ~start:1 run n
    end;
    results
  end

let iter pool f arr =
  let n = Array.length arr in
  let run lo hi =
    for j = lo to hi - 1 do
      f arr.(j)
    done
  in
  if n = 0 then ()
  else if sequential pool then run 0 n
  else run_from pool ~t0:(now_ns ()) ~start:0 run n

let filter_count pool p arr =
  let n = Array.length arr in
  if sequential pool then
    Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 arr
  else begin
    let total = Atomic.make 0 in
    let run lo hi =
      let count = ref 0 in
      for j = lo to hi - 1 do
        if p arr.(j) then incr count
      done;
      if !count > 0 then ignore (Atomic.fetch_and_add total !count)
    in
    if n > 0 then run_from pool ~t0:(now_ns ()) ~start:0 run n;
    Atomic.get total
  end

(* Pack [p 0 .. p (n-1)] into a fresh bit buffer, bit [i] at byte
   [i lsr 3] / position [i land 7]. Work items are whole bytes, so no
   two domains ever read-modify-write the same byte — plain writes are
   race-free without atomics. *)
let fill pool ~n p =
  let nbytes = (max 0 n + 7) / 8 in
  let buf = Bytes.make nbytes '\000' in
  let fill_byte byte =
    let lo = byte lsl 3 in
    let hi = min n (lo + 8) in
    let v = ref 0 in
    for i = lo to hi - 1 do
      if p i then v := !v lor (1 lsl (i - lo))
    done;
    if !v <> 0 then Bytes.set buf byte (Char.chr !v)
  in
  let run lo hi =
    for byte = lo to hi - 1 do
      fill_byte byte
    done
  in
  if nbytes = 0 then ()
  else if sequential pool then run 0 nbytes
  else run_from pool ~t0:(now_ns ()) ~start:0 run nbytes;
  buf

let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

let filter_count_list pool p l = filter_count pool p (Array.of_list l)

let filter_list pool p l =
  let arr = Array.of_list l in
  let keep = map pool p arr in
  let out = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if keep.(i) then out := arr.(i) :: !out
  done;
  !out

(* Process-wide pools, one per size, shut down at exit so no domain is
   left blocked on a condition variable when the runtime tears down. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_m = Mutex.create ()
let at_exit_installed = ref false

let get num_domains =
  let size = max 1 num_domains in
  Mutex.protect registry_m (fun () ->
      match Hashtbl.find_opt registry size with
      | Some pool -> pool
      | None ->
          let pool = create ~num_domains:size in
          Hashtbl.add registry size pool;
          if not !at_exit_installed then begin
            at_exit_installed := true;
            at_exit (fun () ->
                let pools =
                  Mutex.protect registry_m (fun () ->
                      Hashtbl.fold (fun _ p acc -> p :: acc) registry [])
                in
                List.iter shutdown pools)
          end;
          pool)
