let jaro a b =
  let n = String.length a and m = String.length b in
  if n = 0 && m = 0 then 1.0
  else if n = 0 || m = 0 then 0.0
  else begin
    let window = max 0 ((max n m / 2) - 1) in
    let a_matched = Array.make n false and b_matched = Array.make m false in
    let matches = ref 0 in
    for i = 0 to n - 1 do
      let lo = max 0 (i - window) and hi = min (m - 1) (i + window) in
      let rec scan j =
        if j > hi then ()
        else if (not b_matched.(j)) && a.[i] = b.[j] then begin
          a_matched.(i) <- true;
          b_matched.(j) <- true;
          incr matches
        end
        else scan (j + 1)
      in
      scan lo
    done;
    if !matches = 0 then 0.0
    else begin
      (* Count transpositions between the matched subsequences. *)
      let transpositions = ref 0 in
      let j = ref 0 in
      for i = 0 to n - 1 do
        if a_matched.(i) then begin
          while not b_matched.(!j) do
            incr j
          done;
          if a.[i] <> b.[!j] then incr transpositions;
          incr j
        end
      done;
      let mf = float_of_int !matches in
      let t = float_of_int (!transpositions / 2) in
      ((mf /. float_of_int n) +. (mf /. float_of_int m) +. ((mf -. t) /. mf))
      /. 3.0
    end
  end

let similarity ?(prefix_scale = 0.1) a b =
  let j = jaro a b in
  let max_prefix = min 4 (min (String.length a) (String.length b)) in
  let rec common i =
    if i >= max_prefix || a.[i] <> b.[i] then i else common (i + 1)
  in
  let l = float_of_int (common 0) in
  j +. (l *. prefix_scale *. (1.0 -. j))
