open Dlearn_relation
open Dlearn_constraints

type t = {
  name : string;
  db : Database.t;
  mds : Md.t list;
  cfds : Cfd.t list;
  config : Dlearn_core.Config.t;
  pos : Tuple.t list;
  neg : Tuple.t list;
}

let replace_relation db name fresh =
  let db' = Database.create () in
  List.iter
    (fun r ->
      if String.equal (Relation.name r) name then Database.add_relation db' fresh
      else Database.add_relation db' r)
    (Database.relations db);
  db'

(* Corrupt one right-hand-side value: swap in a different value of the
   same attribute when one exists, otherwise apply a typo. *)
let corrupt_value rng relation pos v =
  let alternatives =
    List.filter (fun v' -> not (Value.equal v v')) (Relation.distinct_values relation pos)
  in
  match alternatives with
  | [] -> Value.String (Corrupt.typo rng (Value.as_string v))
  | _ -> List.nth alternatives (Random.State.int rng (List.length alternatives))

let inject_violations t ~p ~seed =
  if p <= 0.0 then t
  else begin
    let rng = Random.State.make [| seed; 0x1CFD |] in
    let db =
      List.fold_left
        (fun db (cfd : Cfd.t) ->
          match Database.find_opt db cfd.Cfd.relation with
          | None -> db
          | Some relation ->
              let schema = Relation.schema relation in
              let rhs_pos, _ = Cfd.rhs_position cfd schema in
              let card = Relation.cardinality relation in
              let count =
                int_of_float (ceil (p *. float_of_int card))
              in
              let fresh = Relation.copy relation in
              for _ = 1 to count do
                let id = Random.State.int rng card in
                let victim = Relation.get relation id in
                let bad =
                  Tuple.set victim rhs_pos
                    (corrupt_value rng relation rhs_pos
                       (Tuple.get victim rhs_pos))
                in
                ignore (Relation.insert fresh bad)
              done;
              replace_relation db cfd.Cfd.relation fresh)
        (Database.copy t.db) t.cfds
    in
    { t with db; name = Printf.sprintf "%s(p=%.2f)" t.name p }
  end

let sample rng n l =
  if List.length l <= n then l
  else begin
    let arr = Array.of_list l in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 n)
  end

let with_examples t ~pos ~neg ~seed =
  let rng = Random.State.make [| seed; 0xE5A |] in
  { t with pos = sample rng pos t.pos; neg = sample rng neg t.neg }

let describe t =
  Printf.sprintf "%s: %d relations, %d tuples, %d MDs, %d CFDs, %d+/%d- examples"
    t.name
    (List.length (Database.relations t.db))
    (Database.total_tuples t.db)
    (List.length t.mds) (List.length t.cfds) (List.length t.pos)
    (List.length t.neg)
