open Dlearn_relation

let value_tests =
  [
    Alcotest.test_case "of_string parses ints" `Quick (fun () ->
        Alcotest.(check bool) "int" true (Value.equal (Value.of_string "42") (Value.Int 42)));
    Alcotest.test_case "of_string parses floats" `Quick (fun () ->
        Alcotest.(check bool)
          "float" true
          (Value.equal (Value.of_string "3.5") (Value.Float 3.5)));
    Alcotest.test_case "of_string keeps strings" `Quick (fun () ->
        Alcotest.(check bool)
          "string" true
          (Value.equal (Value.of_string "Star Wars") (Value.String "Star Wars")));
    Alcotest.test_case "of_string empty is null" `Quick (fun () ->
        Alcotest.(check bool) "null" true (Value.is_null (Value.of_string "")));
    Alcotest.test_case "equality is per constructor" `Quick (fun () ->
        Alcotest.(check bool)
          "Int 1 <> String 1" false
          (Value.equal (Value.Int 1) (Value.String "1")));
    Alcotest.test_case "compare orders within constructor" `Quick (fun () ->
        Alcotest.(check bool) "1 < 2" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
        Alcotest.(check bool)
          "a < b" true
          (Value.compare (Value.String "a") (Value.String "b") < 0));
    Alcotest.test_case "hash agrees with equal" `Quick (fun () ->
        Alcotest.(check int)
          "same hash"
          (Value.hash (Value.String "x"))
          (Value.hash (Value.String "x")));
  ]

let schema_tests =
  [
    Alcotest.test_case "position lookup" `Quick (fun () ->
        let s = Schema.string_attrs "movies" [ "id"; "title"; "year" ] in
        Alcotest.(check int) "title at 1" 1 (Schema.position s "title");
        Alcotest.(check int) "arity" 3 (Schema.arity s));
    Alcotest.test_case "missing attribute raises" `Quick (fun () ->
        let s = Schema.string_attrs "r" [ "a" ] in
        Alcotest.check_raises "Not_found" Not_found (fun () ->
            ignore (Schema.position s "zz")));
    Alcotest.test_case "duplicate attribute rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Schema.string_attrs "r" [ "a"; "a" ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "empty attributes rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Schema.make "r" []);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "comparable by domain" `Quick (fun () ->
        let s = Schema.make "r" [ { Schema.attr_name = "a"; domain = Schema.Dint } ] in
        let u = Schema.string_attrs "q" [ "b" ] in
        Alcotest.(check bool) "int vs string" false (Schema.comparable s 0 u 0);
        Alcotest.(check bool) "string vs string" true (Schema.comparable u 0 u 0));
  ]

let tuple_tests =
  [
    Alcotest.test_case "project keeps order" `Quick (fun () ->
        let t = Tuple.of_strings [ "a"; "b"; "c" ] in
        let p = Tuple.project t [| 2; 0 |] in
        Alcotest.(check string) "projected" "(c, a)" (Tuple.to_string p));
    Alcotest.test_case "set is persistent" `Quick (fun () ->
        let t = Tuple.of_strings [ "a"; "b" ] in
        let t' = Tuple.set t 0 (Value.String "z") in
        Alcotest.(check bool) "original intact" true
          (Value.equal (Tuple.get t 0) (Value.String "a"));
        Alcotest.(check bool) "copy updated" true
          (Value.equal (Tuple.get t' 0) (Value.String "z")));
    Alcotest.test_case "equal tuples share hash" `Quick (fun () ->
        let a = Tuple.of_strings [ "x"; "7" ] and b = Tuple.of_strings [ "x"; "7" ] in
        Alcotest.(check bool) "equal" true (Tuple.equal a b);
        Alcotest.(check int) "hash" (Tuple.hash a) (Tuple.hash b));
    Alcotest.test_case "compare is lexicographic" `Quick (fun () ->
        let a = Tuple.of_strings [ "a"; "b" ] and b = Tuple.of_strings [ "a"; "c" ] in
        Alcotest.(check bool) "a < b" true (Tuple.compare a b < 0));
  ]

let movies_relation () =
  let s = Schema.string_attrs "movies" [ "id"; "title"; "year" ] in
  let r = Relation.create s in
  Relation.insert_all r
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ];
      Tuple.of_strings [ "m3"; "Orphanage (2007)"; "y2007" ];
    ];
  r

let relation_tests =
  [
    Alcotest.test_case "indexed selection" `Quick (fun () ->
        let r = movies_relation () in
        let hits = Relation.select_eq r 2 (Value.String "y2007") in
        Alcotest.(check int) "two 2007 movies" 2 (List.length hits));
    Alcotest.test_case "duplicates are kept" `Quick (fun () ->
        let r = movies_relation () in
        ignore (Relation.insert r (Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ]));
        Alcotest.(check int) "4 tuples" 4 (Relation.cardinality r);
        Alcotest.(check int) "two m1 hits" 2
          (List.length (Relation.select_eq r 0 (Value.String "m1"))));
    Alcotest.test_case "distinct values" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check int) "2 distinct years" 2
          (List.length (Relation.distinct_values r 2)));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Relation.insert r (Tuple.of_strings [ "only-one" ]));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "filter builds fresh indexed relation" `Quick (fun () ->
        let r = movies_relation () in
        let dramas = Relation.filter (fun t ->
            Value.equal (Tuple.get t 2) (Value.String "y2007")) r in
        Alcotest.(check int) "2 kept" 2 (Relation.cardinality dramas);
        Alcotest.(check int) "index rebuilt" 1
          (List.length (Relation.select_eq dramas 0 (Value.String "m1"))));
    Alcotest.test_case "contains" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check bool) "present" true
          (Relation.contains r (Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ]));
        Alcotest.(check bool) "absent" false
          (Relation.contains r (Tuple.of_strings [ "m2"; "Zoolander"; "y2001" ])));
    Alcotest.test_case "holds_value" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check bool) "yes" true (Relation.holds_value r 0 (Value.String "m3"));
        Alcotest.(check bool) "no" false (Relation.holds_value r 0 (Value.String "m9")));
    Alcotest.test_case "map_tuples rewrites" `Quick (fun () ->
        let r = movies_relation () in
        let r' = Relation.map_tuples (fun t -> Tuple.set t 2 (Value.String "yX")) r in
        Alcotest.(check int) "all rewritten" 3
          (List.length (Relation.select_eq r' 2 (Value.String "yX"))));
  ]

let database_tests =
  [
    Alcotest.test_case "find and mem" `Quick (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        Alcotest.(check bool) "mem" true (Database.mem db "movies");
        Alcotest.(check int) "tuples" 3 (Database.total_tuples db));
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        Alcotest.(check bool) "raises" true
          (try
             Database.add_relation db (movies_relation ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "copy is deep" `Quick (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        let db' = Database.copy db in
        ignore
          (Relation.insert (Database.find db' "movies")
             (Tuple.of_strings [ "m4"; "New"; "y2020" ]));
        Alcotest.(check int) "original unchanged" 3
          (Relation.cardinality (Database.find db "movies"));
        Alcotest.(check int) "copy grew" 4
          (Relation.cardinality (Database.find db' "movies")));
    Alcotest.test_case "relation order preserved" `Quick (fun () ->
        let db = Database.create () in
        ignore (Database.create_relation db (Schema.string_attrs "b" [ "x" ]));
        ignore (Database.create_relation db (Schema.string_attrs "a" [ "x" ]));
        Alcotest.(check (list string)) "order" [ "b"; "a" ] (Database.relation_names db));
  ]

let csv_tests =
  [
    Alcotest.test_case "parse simple" `Quick (fun () ->
        Alcotest.(check (list string)) "fields" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c"));
    Alcotest.test_case "parse quoted with comma" `Quick (fun () ->
        Alcotest.(check (list string))
          "fields" [ "a,b"; "c" ]
          (Csv.parse_line "\"a,b\",c"));
    Alcotest.test_case "parse doubled quotes" `Quick (fun () ->
        Alcotest.(check (list string))
          "fields" [ "say \"hi\""; "x" ]
          (Csv.parse_line "\"say \"\"hi\"\"\",x"));
    Alcotest.test_case "parse empty fields" `Quick (fun () ->
        Alcotest.(check (list string)) "fields" [ ""; ""; "" ] (Csv.parse_line ",,"));
    Alcotest.test_case "render quotes when needed" `Quick (fun () ->
        Alcotest.(check string) "quoted" "\"a,b\",c" (Csv.render_line [ "a,b"; "c" ]));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let r = movies_relation () in
        let path = Filename.temp_file "dlearn" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Csv.save r path;
            let r' = Csv.load (Relation.schema r) path in
            Alcotest.(check int) "same size" (Relation.cardinality r)
              (Relation.cardinality r');
            Relation.iter
              (fun _ t ->
                Alcotest.(check bool) "tuple present" true (Relation.contains r' t))
              r));
    Alcotest.test_case "load strips CRLF line endings" `Quick (fun () ->
        (* A file written by a Windows tool: every record ends in \r\n.
           The \r must not leak into the last column's value. *)
        let schema = Schema.string_attrs "m" [ "id"; "title" ] in
        let path = Filename.temp_file "dlearn_crlf" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "m1,Alien\r\nm2,\"Up, Down\"\r\n";
            close_out oc;
            let r = Csv.load schema path in
            Alcotest.(check int) "two tuples" 2 (Relation.cardinality r);
            Alcotest.(check bool)
              "last column clean" true
              (Relation.contains r (Tuple.of_strings [ "m1"; "Alien" ]));
            Alcotest.(check bool)
              "quoted field clean" true
              (Relation.contains r (Tuple.of_strings [ "m2"; "Up, Down" ]))));
    Alcotest.test_case "round trip survives CRLF rewriting" `Quick (fun () ->
        (* save/load over a file whose LF terminators were rewritten to
           CRLF in transit — including a field that itself contains \r,
           which save quotes and load must preserve. *)
        let schema = Schema.string_attrs "m" [ "id"; "note" ] in
        let r = Relation.create schema in
        ignore (Relation.insert r (Tuple.of_strings [ "m1"; "line\rfeed" ]));
        ignore (Relation.insert r (Tuple.of_strings [ "m2"; "plain" ]));
        let path = Filename.temp_file "dlearn_crlf_rt" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Csv.save r path;
            let ic = open_in_bin path in
            let contents = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let crlf =
              String.concat "\r\n" (String.split_on_char '\n' contents)
            in
            let oc = open_out_bin path in
            output_string oc crlf;
            close_out oc;
            let r' = Csv.load schema path in
            Alcotest.(check int) "same size" 2 (Relation.cardinality r');
            Relation.iter
              (fun _ t ->
                Alcotest.(check bool) "tuple survives" true
                  (Relation.contains r' t))
              r));
  ]

let index_tests =
  [
    Alcotest.test_case "lookup returns insertion order" `Quick (fun () ->
        let idx = Index.create () in
        let v = Value.String "x" in
        List.iter (Index.add idx v) [ 1; 2; 3 ];
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Index.lookup idx v);
        (* The memoized view must stay physically stable across repeated
           lookups and be invalidated by the next insertion. *)
        Alcotest.(check bool)
          "memoized" true
          (Index.lookup idx v == Index.lookup idx v);
        Index.add idx v 4;
        Alcotest.(check (list int))
          "order after insert" [ 1; 2; 3; 4 ] (Index.lookup idx v));
    Alcotest.test_case "lookup keeps duplicates in order" `Quick (fun () ->
        let idx = Index.create () in
        let v = Value.Int 7 in
        List.iter (Index.add idx v) [ 5; 5; 9 ];
        Alcotest.(check (list int)) "duplicates" [ 5; 5; 9 ] (Index.lookup idx v));
    Alcotest.test_case "lookup of absent value is empty" `Quick (fun () ->
        let idx = Index.create () in
        Alcotest.(check (list int)) "empty" [] (Index.lookup idx (Value.Int 0)));
  ]

let text_table_tests =
  [
    Alcotest.test_case "columns aligned" `Quick (fun () ->
        let out = Text_table.render ~header:[ "a"; "long" ] [ [ "xxx"; "y" ] ] in
        let lines = String.split_on_char '\n' out in
        (match lines with
        | h :: _ :: row :: _ ->
            Alcotest.(check int) "same width" (String.length h) (String.length row)
        | _ -> Alcotest.fail "unexpected shape"));
    Alcotest.test_case "short rows padded" `Quick (fun () ->
        let out = Text_table.render ~header:[ "a"; "b" ] [ [ "only" ] ] in
        Alcotest.(check bool) "renders" true (String.length out > 0));
    Alcotest.test_case "of_relation truncates" `Quick (fun () ->
        let r = movies_relation () in
        let out = Text_table.of_relation ~limit:2 r in
        Alcotest.(check bool) "mentions more" true
          (let re = "more tuples" in
           let rec contains i =
             i + String.length re <= String.length out
             && (String.sub out i (String.length re) = re || contains (i + 1))
           in
           contains 0));
  ]

let qcheck_tests =
  let field_gen =
    QCheck.Gen.(
      string_size ~gen:(oneof [ char_range 'a' 'z'; return ','; return '"' ]) (0 -- 8))
  in
  let fields_arb =
    QCheck.make
      ~print:(fun fs -> String.concat "|" fs)
      QCheck.Gen.(list_size (1 -- 5) field_gen)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"csv render/parse round-trips" ~count:300 fields_arb
         (fun fields ->
           Csv.parse_line (Csv.render_line fields) = fields));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"value of_string/to_string round-trips ints"
         ~count:200 QCheck.int (fun i ->
           Value.equal (Value.of_string (Value.to_string (Value.Int i))) (Value.Int i)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tuple full projection is identity" ~count:200
         QCheck.(list_of_size (QCheck.Gen.int_range 1 6) small_string)
         (fun fields ->
           let t = Tuple.of_strings fields in
           Tuple.equal t (Tuple.project t (Array.init (Tuple.arity t) Fun.id))));
  ]


let storage_tests =
  [
    Alcotest.test_case "database round-trips through a directory" `Quick
      (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        let prices =
          Database.create_relation db
            (Schema.make "prices"
               [
                 { Schema.attr_name = "id"; domain = Schema.Dstring };
                 { Schema.attr_name = "amount"; domain = Schema.Dint };
               ])
        in
        ignore
          (Relation.insert prices
             (Tuple.make [ Value.String "m1"; Value.Int 12 ]));
        let dir = Filename.temp_file "dlearn" "" in
        Sys.remove dir;
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir then begin
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir f))
                (Sys.readdir dir);
              Sys.rmdir dir
            end)
          (fun () ->
            Storage.save db dir;
            let db2 = Storage.load dir in
            Alcotest.(check int) "same tuples" (Database.total_tuples db)
              (Database.total_tuples db2);
            Alcotest.(check (list string)) "same relations"
              (Database.relation_names db) (Database.relation_names db2);
            (* Numeric strings stay strings when the domain says string:
               the movie years were stored in a string column. *)
            let m = Database.find db2 "movies" in
            Alcotest.(check bool) "year is a string" true
              (Relation.fold
                 (fun _ t acc ->
                   acc
                   && (match Tuple.get t 2 with
                      | Value.String _ -> true
                      | _ -> false))
                 m true);
            (* And ints stay ints. *)
            let p = Database.find db2 "prices" in
            Alcotest.(check bool) "amount is an int" true
              (match Tuple.get (Relation.get p 0) 1 with
              | Value.Int 12 -> true
              | _ -> false)));
    Alcotest.test_case "loading a missing directory fails" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Storage.load "/nonexistent-dlearn-db");
             false
           with Sys_error _ -> true));
  ]


(* {2 Streaming}

   The chunked CSV reader and lazy storage layer behind the scale path:
   records spanning the 64 KiB read-chunk boundary, CRLF in the same
   stream, files without trailing newlines, relation scans that never
   materialize, and deferred relation loading. *)

let with_temp_dir f =
  let dir = Filename.temp_file "dlearn_scale" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let streaming_tests =
  [
    Alcotest.test_case "fold streams large quoted fields across chunks" `Quick
      (fun () ->
        (* One field of 100 000 characters: spans two 64 KiB read chunks,
           is quoted (contains a comma), and the file ends CRLF. The
           reader must reassemble it byte-perfectly. *)
        let big = String.init 100_000 (fun i -> Char.chr (97 + (i mod 23))) in
        let path = Filename.temp_file "dlearn_big" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "first,plain\r\n";
            output_string oc (Csv.render_line [ "second"; big ^ ",tail" ]);
            output_string oc "\r\n";
            close_out oc;
            let records =
              Csv.fold_records path ~init:[] ~f:(fun acc _line fields ->
                  fields :: acc)
            in
            match List.rev records with
            | [ [ "first"; "plain" ]; [ "second"; huge ] ] ->
                Alcotest.(check int)
                  "field length" (String.length big + 5) (String.length huge);
                Alcotest.(check string) "field content" (big ^ ",tail") huge
            | other -> Alcotest.failf "unexpected shape: %d records" (List.length other)));
    Alcotest.test_case "fold handles a missing trailing newline" `Quick
      (fun () ->
        let path = Filename.temp_file "dlearn_eof" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "a,b\nc,d";
            close_out oc;
            let records =
              Csv.fold_records path ~init:[] ~f:(fun acc _line fields ->
                  fields :: acc)
            in
            Alcotest.(check (list (list string)))
              "both records" [ [ "a"; "b" ]; [ "c"; "d" ] ] (List.rev records)));
    Alcotest.test_case "fold skips blank lines but counts them" `Quick
      (fun () ->
        let path = Filename.temp_file "dlearn_blank" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "a,b\n\nc,d\n";
            close_out oc;
            let records =
              Csv.fold_records path ~init:[] ~f:(fun acc line fields ->
                  (line, fields) :: acc)
            in
            (* The blank line is skipped yet still advances line numbers —
               what load's arity errors report. *)
            Alcotest.(check (list (list string)))
              "records" [ [ "a"; "b" ]; [ "c"; "d" ] ]
              (List.rev_map snd records);
            Alcotest.(check (list int)) "line numbers" [ 1; 3 ]
              (List.rev_map fst records)));
    Alcotest.test_case "load reports arity errors with line numbers" `Quick
      (fun () ->
        let schema = Schema.string_attrs "m" [ "id"; "title" ] in
        let path = Filename.temp_file "dlearn_arity" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "m1,Alien\nm2,Up,extra\n";
            close_out oc;
            match Csv.load schema path with
            | _ -> Alcotest.fail "expected arity failure"
            | exception Invalid_argument msg ->
                Alcotest.(check bool)
                  (Printf.sprintf "message names line 2: %s" msg)
                  true
                  (let sub = "line 2" in
                   let rec contains i =
                     i + String.length sub <= String.length msg
                     && (String.sub msg i (String.length sub) = sub
                        || contains (i + 1))
                   in
                   contains 0)));
    Alcotest.test_case "scan streams a stored relation without loading it"
      `Quick (fun () ->
        with_temp_dir (fun dir ->
            let db = Database.create () in
            Database.add_relation db (movies_relation ());
            Storage.save db dir;
            let expected = Relation.cardinality (Database.find db "movies") in
            let rows =
              Storage.scan dir "movies" ~init:0 ~f:(fun acc tu ->
                  (* Tuples arrive typed against the manifest schema. *)
                  (match Tuple.get tu 0 with
                  | Value.String _ -> ()
                  | v ->
                      Alcotest.failf "expected string id, got %s"
                        (Value.to_string v));
                  acc + 1)
            in
            Alcotest.(check int) "all rows scanned" expected rows;
            Alcotest.(check bool) "unknown relation rejected" true
              (try
                 ignore (Storage.scan dir "nope" ~init:0 ~f:(fun a _ -> a));
                 false
               with Invalid_argument _ -> true)));
    Alcotest.test_case "lazy load defers relations until first access" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let db = Database.create () in
            Database.add_relation db (movies_relation ());
            let prices =
              Database.create_relation db
                (Schema.make "prices"
                   [
                     { Schema.attr_name = "id"; domain = Schema.Dstring };
                     { Schema.attr_name = "amount"; domain = Schema.Dint };
                   ])
            in
            ignore
              (Relation.insert prices
                 (Tuple.make [ Value.String "m1"; Value.Int 12 ]));
            Storage.save db dir;
            let db2 = Storage.load ~lazy_load:true dir in
            Alcotest.(check int) "all pending" 2 (Database.pending_count db2);
            Alcotest.(check bool) "movies not loaded" false
              (Database.is_loaded db2 "movies");
            (* Names are known without touching any CSV. *)
            Alcotest.(check (list string)) "names visible"
              (Database.relation_names db) (Database.relation_names db2);
            (* First access forces exactly that relation. *)
            let m = Database.find db2 "movies" in
            Alcotest.(check int) "movies loaded in full"
              (Relation.cardinality (Database.find db "movies"))
              (Relation.cardinality m);
            Alcotest.(check bool) "movies now loaded" true
              (Database.is_loaded db2 "movies");
            Alcotest.(check int) "prices still pending" 1
              (Database.pending_count db2);
            (* materialize forces the rest; contents match an eager load. *)
            Database.materialize db2;
            Alcotest.(check int) "nothing pending" 0
              (Database.pending_count db2);
            Alcotest.(check int) "same tuples" (Database.total_tuples db)
              (Database.total_tuples db2)));
  ]

let stress_tests =
  [
    Alcotest.test_case "100k-tuple relation stays responsive" `Slow (fun () ->
        let r = Relation.create (Schema.string_attrs "big" [ "k"; "v" ]) in
        let t0 = Unix.gettimeofday () in
        for i = 0 to 99_999 do
          ignore
            (Relation.insert r
               (Tuple.make
                  [
                    Value.String (Printf.sprintf "k%06d" i);
                    Value.Int (i mod 97);
                  ]))
        done;
        let insert_time = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "bulk insert under 5s" true (insert_time < 5.0);
        let t1 = Unix.gettimeofday () in
        for i = 0 to 9_999 do
          let hits =
            Relation.select_eq r 0 (Value.String (Printf.sprintf "k%06d" (i * 7)))
          in
          Alcotest.(check int) "unique key" 1 (List.length hits)
        done;
        let lookup_time = Unix.gettimeofday () -. t1 in
        Alcotest.(check bool) "10k lookups under 1s" true (lookup_time < 1.0);
        Alcotest.(check int) "value index groups" 97
          (List.length (Relation.distinct_values r 1)));
  ]

let snapshot_tests =
  [
    Alcotest.test_case "snapshot does not see later inserts" `Quick (fun () ->
        let r = movies_relation () in
        let s = Relation.snapshot r in
        Alcotest.(check bool) "is_snapshot" true (Relation.is_snapshot s);
        Alcotest.(check bool) "live is not" false (Relation.is_snapshot r);
        ignore (Relation.insert r (Tuple.of_strings [ "m4"; "New"; "y2020" ]));
        Alcotest.(check int) "snapshot bounded" 3 (Relation.cardinality s);
        Alcotest.(check int) "live grew" 4 (Relation.cardinality r);
        (* Index probes share the live relation's indexes but filter by
           the recorded size: the new tuple is invisible through them. *)
        Alcotest.(check int) "live probe sees it" 1
          (List.length (Relation.select_eq r 0 (Value.String "m4")));
        Alcotest.(check int) "snapshot probe does not" 0
          (List.length (Relation.select_eq s 0 (Value.String "m4")));
        Alcotest.(check bool) "distinct_values bounded" false
          (List.exists
             (fun v -> Value.equal v (Value.String "m4"))
             (Relation.distinct_values s 0)))
    ;
    Alcotest.test_case "insert into a snapshot raises" `Quick (fun () ->
        let s = Relation.snapshot (movies_relation ()) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Relation.insert s (Tuple.of_strings [ "x"; "y"; "z" ]));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "with_tuple is copy-on-write" `Quick (fun () ->
        let r = movies_relation () in
        let s = Relation.snapshot r in
        let updated = Tuple.of_strings [ "m1"; "Superbad"; "y2007" ] in
        let r' = Relation.with_tuple r 0 updated in
        Alcotest.(check bool) "new relation updated" true
          (Tuple.equal (Relation.get r' 0) updated);
        Alcotest.(check bool) "original untouched" true
          (Tuple.equal (Relation.get r 0) (Relation.get s 0));
        Alcotest.(check int) "same cardinality" (Relation.cardinality r)
          (Relation.cardinality r');
        Alcotest.(check int) "other ids preserved" 1
          (List.length (Relation.select_eq r' 0 (Value.String "m2"))));
    Alcotest.test_case "with_tuple validates id and arity" `Quick (fun () ->
        let r = movies_relation () in
        List.iter
          (fun f ->
            Alcotest.(check bool) "raises" true
              (try
                 ignore (f ());
                 false
               with Invalid_argument _ -> true))
          [
            (fun () -> Relation.with_tuple r 99 (Tuple.of_strings [ "a"; "b"; "c" ]));
            (fun () -> Relation.with_tuple r 0 (Tuple.of_strings [ "a" ]));
          ]);
  ]

let vdb_tests =
  let fresh_store () =
    let db = Database.create () in
    Database.add_relation db (movies_relation ());
    Vdb.of_database db
  in
  [
    Alcotest.test_case "insert is invisible to earlier versions" `Quick
      (fun () ->
        let store = fresh_store () in
        let v0 = Vdb.version store in
        (match Vdb.insert_one store "movies" (Tuple.of_strings [ "m4"; "New"; "y2020" ]) with
        | Ok v1 ->
            Alcotest.(check int) "version advanced" 1 (Vdb.version_id v1);
            Alcotest.(check int) "v1 sees it" 4
              (Relation.cardinality (Database.find (Vdb.database v1) "movies"))
        | Error e -> Alcotest.failf "commit failed: %s" (Vdb.error_to_string e));
        Alcotest.(check int) "v0 does not" 3
          (Relation.cardinality (Database.find (Vdb.database v0) "movies"));
        Alcotest.(check int) "head does" 4
          (Relation.cardinality (Database.find (Vdb.head store) "movies")));
    Alcotest.test_case "update is copy-on-write across versions" `Quick
      (fun () ->
        let store = fresh_store () in
        let v0 = Vdb.version store in
        let before = Relation.get (Database.find (Vdb.database v0) "movies") 0 in
        let updated = Tuple.of_strings [ "m1"; "Renamed"; "y2007" ] in
        (match Vdb.update_one store "movies" 0 updated with
        | Ok v1 ->
            Alcotest.(check bool) "v1 updated" true
              (Tuple.equal
                 (Relation.get (Database.find (Vdb.database v1) "movies") 0)
                 updated)
        | Error e -> Alcotest.failf "commit failed: %s" (Vdb.error_to_string e));
        Alcotest.(check bool) "v0 keeps the old tuple" true
          (Tuple.equal
             (Relation.get (Database.find (Vdb.database v0) "movies") 0)
             before));
    Alcotest.test_case "first committer wins on update conflicts" `Quick
      (fun () ->
        let store = fresh_store () in
        let t1 = Vdb.begin_txn store and t2 = Vdb.begin_txn store in
        (match Vdb.update t1 "movies" 0 (Tuple.of_strings [ "m1"; "A"; "y" ]) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "buffer: %s" (Vdb.error_to_string e));
        (match Vdb.update t2 "movies" 0 (Tuple.of_strings [ "m1"; "B"; "y" ]) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "buffer: %s" (Vdb.error_to_string e));
        (match Vdb.commit t1 with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "t1: %s" (Vdb.error_to_string e));
        (match Vdb.commit t2 with
        | Error (Vdb.Conflict { rel; id }) ->
            Alcotest.(check string) "relation" "movies" rel;
            Alcotest.(check int) "id" 0 id
        | Ok _ -> Alcotest.fail "t2 should conflict"
        | Error e -> Alcotest.failf "unexpected: %s" (Vdb.error_to_string e)));
    Alcotest.test_case "insert transactions always merge" `Quick (fun () ->
        let store = fresh_store () in
        let t1 = Vdb.begin_txn store and t2 = Vdb.begin_txn store in
        ignore (Vdb.insert t1 "movies" (Tuple.of_strings [ "m4"; "A"; "y" ]));
        ignore (Vdb.insert t2 "movies" (Tuple.of_strings [ "m5"; "B"; "y" ]));
        (match (Vdb.commit t1, Vdb.commit t2) with
        | Ok _, Ok v2 ->
            Alcotest.(check int) "both applied" 5
              (Relation.cardinality (Database.find (Vdb.database v2) "movies"))
        | _ -> Alcotest.fail "insert-only transactions must both commit"));
    Alcotest.test_case "abort discards buffered writes" `Quick (fun () ->
        let store = fresh_store () in
        let t = Vdb.begin_txn store in
        ignore (Vdb.insert t "movies" (Tuple.of_strings [ "m4"; "A"; "y" ]));
        Vdb.abort t;
        Alcotest.(check int) "nothing applied" 3
          (Relation.cardinality (Database.find (Vdb.head store) "movies"));
        Alcotest.(check int) "no version minted" 0
          (Vdb.version_id (Vdb.version store));
        match Vdb.insert t "movies" (Tuple.of_strings [ "m5"; "B"; "y" ]) with
        | Error Vdb.Closed -> ()
        | _ -> Alcotest.fail "writes after abort must report Closed");
    Alcotest.test_case "subscribers see commits with their deltas" `Quick
      (fun () ->
        let store = fresh_store () in
        let seen = ref [] in
        Vdb.subscribe store (fun v deltas ->
            seen := (Vdb.version_id v, Vdb.changed_tuples deltas) :: !seen);
        let extra = Tuple.of_strings [ "m4"; "New"; "y2020" ] in
        ignore (Vdb.insert_one store "movies" extra);
        let updated = Tuple.of_strings [ "m1"; "Renamed"; "y2007" ] in
        ignore (Vdb.update_one store "movies" 0 updated);
        match List.rev !seen with
        | [ (1, [ ("movies", [ t1 ]) ]); (2, [ ("movies", [ t2; prev ]) ]) ]
          ->
            Alcotest.(check bool) "insert delta" true (Tuple.equal t1 extra);
            Alcotest.(check bool) "update delta" true (Tuple.equal t2 updated);
            Alcotest.(check bool) "previous value" true
              (Tuple.equal prev (Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ]))
        | other ->
            Alcotest.failf "unexpected notifications: %d" (List.length other));
  ]

(* Regression pins for the lazy-database fixes: summaries must not force
   pending relations, and the find fast path must be safe under
   multi-domain contention with loads in flight. *)
let lazy_db_tests =
  [
    Alcotest.test_case "pp_summary and total_tuples never force" `Quick
      (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        let calls = ref 0 in
        Database.add_lazy db "lazy" (fun () ->
            incr calls;
            let r = Relation.create (Schema.string_attrs "lazy" [ "id" ]) in
            ignore (Relation.insert r (Tuple.of_strings [ "x" ]));
            r);
        let summary = Format.asprintf "%a" Database.pp_summary db in
        Alcotest.(check bool) "summary reports pending" true
          (let sub = "pending" in
           let rec contains i =
             i + String.length sub <= String.length summary
             && (String.sub summary i (String.length sub) = sub
                || contains (i + 1))
           in
           contains 0);
        Alcotest.(check int) "loaded tuples only" 3 (Database.total_tuples db);
        Alcotest.(check int) "loader never ran" 0 !calls;
        Alcotest.(check bool) "still pending" false
          (Database.is_loaded db "lazy"));
    Alcotest.test_case "copy preserves pending relations unforced" `Quick
      (fun () ->
        let db = Database.create () in
        let calls = ref 0 in
        Database.add_lazy db "lazy" (fun () ->
            incr calls;
            let r = Relation.create (Schema.string_attrs "lazy" [ "id" ]) in
            ignore (Relation.insert r (Tuple.of_strings [ "x" ]));
            r);
        let db' = Database.copy db in
        Alcotest.(check int) "copy does not force" 0 !calls;
        Alcotest.(check bool) "copy still pending" false
          (Database.is_loaded db' "lazy");
        (* Forcing the copy leaves the original untouched. *)
        Alcotest.(check int) "copy loads on demand" 1
          (Relation.cardinality (Database.find db' "lazy"));
        Alcotest.(check bool) "original still pending" false
          (Database.is_loaded db "lazy"));
    Alcotest.test_case "concurrent lazy find is race-free" `Quick (fun () ->
        (* Regression: the find fast path read the table unlocked while
           loaders ran [Hashtbl.replace] on it. With loads in flight every
           lookup must serialize; afterwards the atomic pending counter
           publishes the loaded table to lock-free readers. *)
        let db = Database.create () in
        let rels = 8 in
        for i = 0 to rels - 1 do
          let name = Printf.sprintf "r%d" i in
          Database.add_lazy db name (fun () ->
              let r = Relation.create (Schema.string_attrs name [ "id" ]) in
              for j = 0 to 99 do
                ignore
                  (Relation.insert r (Tuple.of_strings [ Printf.sprintf "k%d" j ]))
              done;
              r)
        done;
        let workers =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  let ok = ref true in
                  for k = 0 to 2_499 do
                    let name = Printf.sprintf "r%d" ((k + d) land (rels - 1)) in
                    let r = Database.find db name in
                    if Relation.cardinality r <> 100 then ok := false
                  done;
                  !ok))
        in
        List.iter
          (fun w ->
            Alcotest.(check bool) "every lookup consistent" true (Domain.join w))
          workers;
        Alcotest.(check int) "all loaded exactly once" 0
          (Database.pending_count db));
  ]

(* Regression pins for Storage.mkdir_p / write_manifest: nested target
   directories and already-existing directories must both work. *)
let mkdir_tests =
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let with_temp_root f =
    let root = Filename.temp_file "dlearn_mkdir" "" in
    Sys.remove root;
    Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)
  in
  [
    Alcotest.test_case "mkdir_p creates nested directories" `Quick (fun () ->
        with_temp_root (fun root ->
            let deep = Filename.concat (Filename.concat root "a") "b" in
            Storage.mkdir_p deep;
            Alcotest.(check bool) "directory exists" true (Sys.is_directory deep);
            (* Idempotent over an existing directory — the TOCTOU pin. *)
            Storage.mkdir_p deep;
            Alcotest.(check bool) "still there" true (Sys.is_directory deep)));
    Alcotest.test_case "mkdir_p rejects a file in the way" `Quick (fun () ->
        let file = Filename.temp_file "dlearn_mkdir_file" "" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            Alcotest.(check bool) "raises" true
              (try
                 Storage.mkdir_p file;
                 false
               with Invalid_argument _ -> true)));
    Alcotest.test_case "write_manifest creates nested directories" `Quick
      (fun () ->
        with_temp_root (fun root ->
            let dir = Filename.concat (Filename.concat root "x") "y" in
            let schema = Schema.string_attrs "m" [ "id"; "title" ] in
            Storage.write_manifest dir [ schema ];
            Alcotest.(check int) "manifest readable" 1
              (List.length (Storage.manifest dir));
            (* Rewriting over the existing directory must not raise. *)
            Storage.write_manifest dir [ schema ];
            Alcotest.(check int) "still one schema" 1
              (List.length (Storage.manifest dir))));
  ]

let () =
  Alcotest.run "relation"
    [
      ("value", value_tests);
      ("schema", schema_tests);
      ("tuple", tuple_tests);
      ("relation", relation_tests);
      ("database", database_tests);
      ("csv", csv_tests);
      ("index", index_tests);
      ("text_table", text_table_tests);
      ("storage", storage_tests);
      ("streaming", streaming_tests);
      ("stress", stress_tests);
      ("properties", qcheck_tests);
      ("snapshot", snapshot_tests);
      ("vdb", vdb_tests);
      ("lazy_db", lazy_db_tests);
      ("mkdir", mkdir_tests);
    ]
