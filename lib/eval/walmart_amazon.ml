open Dlearn_relation
open Dlearn_constraints
open Dlearn_core

type product = {
  pid : string;
  aid : string;
  upc : string;
  title : string;
  brand : string;
  category : string;
  price : int;
  weight : int;
}

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* Walmart's group names are much coarser than Amazon's categories — the
   paper's learned definitions show "Electronics - General" as a lossy
   proxy for "Computers Accessories": it also covers general electronics
   and office products, so alone it cannot meet the precision bar. *)
let group_of_category = function
  | "Computers Accessories" | "Electronics General" | "Office Products" ->
      "Electronics - General"
  | "Home Kitchen" | "Sports Outdoors" -> "Home"
  | _ -> "General Merchandise"

let generate ?(n = 180) ?(seed = 11) () =
  let rng = Random.State.make [| seed; 0x11A |] in
  let used = Hashtbl.create 64 in
  let fresh_name () =
    let rec go attempts =
      let t = Names.product_name rng in
      if Hashtbl.mem used t && attempts < 20 then go (attempts + 1)
      else begin
        Hashtbl.add used t ();
        t
      end
    in
    go 0
  in
  let products =
    List.init n (fun i ->
        let title = fresh_name () in
        let category =
          (* Accessory-sounding items are usually Computers Accessories;
             the rest are spread over the other categories. *)
          if Random.State.int rng 10 < 3 then "Computers Accessories"
          else pick rng (List.tl Names.product_categories)
        in
        {
          pid = Printf.sprintf "wp%04d" i;
          aid = Printf.sprintf "ap%04d" i;
          upc = Printf.sprintf "upc%06d" (100000 + i);
          title;
          brand = pick rng Names.brands;
          category;
          price = 5 + Random.State.int rng 500;
          weight = 1 + Random.State.int rng 40;
        })
  in
  let db = Database.create () in
  let w_ids =
    Database.create_relation db
      (Schema.string_attrs "walmart_ids" [ "pid"; "brand"; "upc" ])
  in
  let w_title =
    Database.create_relation db
      (Schema.string_attrs "walmart_title" [ "pid"; "title" ])
  in
  let w_group =
    Database.create_relation db
      (Schema.string_attrs "walmart_groupname" [ "pid"; "groupname" ])
  in
  let w_brand =
    Database.create_relation db
      (Schema.string_attrs "walmart_brand" [ "pid"; "brand" ])
  in
  let a_title =
    Database.create_relation db
      (Schema.string_attrs "amazon_title" [ "aid"; "title" ])
  in
  let a_category =
    Database.create_relation db
      (Schema.string_attrs "amazon_category" [ "aid"; "category" ])
  in
  let a_price =
    Database.create_relation db
      (Schema.string_attrs "amazon_listprice" [ "aid"; "price" ])
  in
  let a_weight =
    Database.create_relation db
      (Schema.string_attrs "amazon_itemweight" [ "aid"; "weight" ])
  in
  List.iter
    (fun p ->
      let sv s = Value.String s in
      ignore
        (Relation.insert w_ids (Tuple.make [ sv p.pid; sv p.brand; sv p.upc ]));
      ignore (Relation.insert w_title (Tuple.make [ sv p.pid; sv p.title ]));
      ignore
        (Relation.insert w_group
           (Tuple.make [ sv p.pid; sv (group_of_category p.category) ]));
      ignore (Relation.insert w_brand (Tuple.make [ sv p.pid; sv p.brand ]));
      let amazon_title =
        Corrupt.maybe rng 0.1 (Corrupt.typo rng)
          (Corrupt.product_title_variant rng p.title)
      in
      ignore (Relation.insert a_title (Tuple.make [ sv p.aid; sv amazon_title ]));
      ignore
        (Relation.insert a_category (Tuple.make [ sv p.aid; sv p.category ]));
      ignore
        (Relation.insert a_price
           (Tuple.make [ sv p.aid; sv (string_of_int p.price) ]));
      ignore
        (Relation.insert a_weight
           (Tuple.make [ sv p.aid; sv (string_of_int p.weight) ])))
    products;
  let md_title =
    Md.make ~id:"md_product_title" ~left:"walmart_title" ~right:"amazon_title"
      ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
  in
  let cfds =
    [
      Cfd.fd ~id:"cfd_w_upc" ~relation:"walmart_ids" [ "pid" ] "upc";
      Cfd.fd ~id:"cfd_w_title" ~relation:"walmart_title" [ "pid" ] "title";
      Cfd.fd ~id:"cfd_w_group" ~relation:"walmart_groupname" [ "pid" ] "groupname";
      Cfd.fd ~id:"cfd_a_title" ~relation:"amazon_title" [ "aid" ] "title";
      Cfd.fd ~id:"cfd_a_category" ~relation:"amazon_category" [ "aid" ] "category";
      Cfd.fd ~id:"cfd_a_price" ~relation:"amazon_listprice" [ "aid" ] "price";
    ]
  in
  let target = Schema.string_attrs "upcOfComputersAccessories" [ "upc" ] in
  let config =
    {
      (Config.default ~target) with
      Config.depth = 4;
      constant_attrs =
        [
          ("amazon_category", "category");
          ("walmart_groupname", "groupname");
          ("walmart_brand", "brand");
        ];
      searchable_attrs =
        [
          ("walmart_ids", "pid"); ("walmart_ids", "upc");
          ("walmart_title", "pid"); ("walmart_groupname", "pid");
          ("walmart_brand", "pid"); ("amazon_title", "aid");
          ("amazon_category", "aid"); ("amazon_listprice", "aid");
          ("amazon_itemweight", "aid");
        ];
      sim = { Md.default_sim with Md.threshold = 0.7 };
      seed;
    }
  in
  let is_positive p = String.equal p.category "Computers Accessories" in
  let pos =
    List.filter_map
      (fun p -> if is_positive p then Some (Tuple.make [ Value.String p.upc ]) else None)
      products
  in
  let others =
    List.filter_map
      (fun p ->
        if is_positive p then None else Some (Tuple.make [ Value.String p.upc ]))
      products
  in
  let neg = Workload.sample rng (2 * List.length pos) others in
  { Workload.name = "Walmart+Amazon"; db; mds = [ md_title ]; cfds; config; pos; neg }
