(** A fixed-size domain pool for data-parallel fan-out (OCaml 5 domains).

    The pool owns [num_domains - 1] worker domains, spawned lazily on the
    first batch that actually fans out — a pool whose batches all run
    inline never spawns a domain (idle domains are not free: every minor
    GC is a stop-the-world across all spawned domains). The submitting
    domain participates in every batch, so a pool of size [n] computes
    with [n] domains in total.

    Every batch goes through an adaptive cost model. The submitter first
    runs items inline while measuring their cost (the probe); if the
    predicted remaining work is below a fan-out threshold — or the host
    has no spare hardware parallelism to exploit
    ([Domain.recommended_domain_count () <= 1]) — the batch simply
    finishes inline: tiny batches never touch a mutex, a condition
    variable, or another domain. Otherwise the remaining items
    are split into chunks (sized from [remaining / (domains * chunking)],
    floored so each chunk is worth a minimum amount of measured work) and
    dealt into one work-stealing {!Deque} per participant: each domain
    drains its own deque LIFO and then steals FIFO from the others, which
    balances load when per-item cost is skewed (as it is for coverage
    checks, where one example may trigger a full repair enumeration while
    its neighbours hit the fast path).

    Guarantees:
    - {b Deterministic ordering}: [map] writes each result at its input
      index, so the output is identical to the sequential [Array.map]
      regardless of which domain computed which chunk — and regardless of
      how the probe / inline / fan-out decision falls. [filter_count]
      returns the same count as the sequential filter.
    - {b Exception propagation}: if any item raises, one of the raised
      exceptions is re-raised (with its backtrace) in the submitting
      domain. Items run inline (probe or inline finish) raise directly;
      on the fan-out path the first failure is re-raised after the batch
      drains, and remaining chunks still run.
    - {b Reentrancy}: a batch submitted from inside a pool task (any
      domain, including the submitter while it participates) runs
      sequentially in place instead of deadlocking on the pool.
    - {b Sequential path}: a pool of size [<= 1] spawns no domains and
      runs every batch as a plain sequential loop — bit-for-bit the
      pre-parallelism behaviour. *)

type t

(** [create ~num_domains] spawns [max 0 (num_domains - 1)] worker
    domains. Workers block on a condition variable between batches and
    consume no CPU while idle. *)
val create : num_domains:int -> t

(** Total participating domains, including the submitter; [1] means the
    pool is purely sequential. *)
val num_domains : t -> int

(** [get n] returns the process-wide shared pool of size [n], creating it
    on first use. Pools obtained this way are shut down automatically at
    exit. Use this rather than [create] when several subsystems (coverage,
    learner, experiments) should share one set of worker domains. *)
val get : int -> t

(** [in_worker ()] is [true] while the calling domain is executing a pool
    task. Exposed for code that must pick a sequential code path when it
    may be called from inside a fan-out. *)
val in_worker : unit -> bool

(** [map pool f arr] is [Array.map f arr] computed in parallel with
    deterministic result ordering. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [filter_count pool p arr] is the number of elements satisfying [p]. *)
val filter_count : t -> ('a -> bool) -> 'a array -> int

val filter_count_list : t -> ('a -> bool) -> 'a list -> int

(** [filter_list pool p l] keeps the elements satisfying [p], in their
    original order ([p] is evaluated in parallel, once per element). *)
val filter_list : t -> ('a -> bool) -> 'a list -> 'a list

(** [iter pool f arr] runs [f] on every element, in parallel. *)
val iter : t -> ('a -> unit) -> 'a array -> unit

(** [fill pool ~n p] packs the verdicts [p 0 .. p (n-1)] into a fresh bit
    buffer of [(n + 7) / 8] bytes: bit [i] lives at byte [i lsr 3],
    position [i land 7], and is set iff [p i]. The work is chunked on
    whole-byte boundaries, so no two domains write the same byte and the
    result equals the sequential fill bit-for-bit. *)
val fill : t -> n:int -> (int -> bool) -> Bytes.t

(** {2 Cost model}

    Process-wide knobs for the adaptive fan-out decision, in
    nanoseconds. Defaults: fan-out threshold 100µs (batches predicted
    cheaper than this finish inline), minimum chunk cost 20µs, probe
    budget 10µs. Exposed primarily so tests can force a path:
    [set_cost_model ~fanout_threshold:0 ~min_chunk:0 ()] makes every
    parallel-eligible batch fan out with small chunks (maximum stealing);
    a huge [fanout_threshold] forces everything inline. *)

val set_cost_model :
  ?fanout_threshold:int -> ?min_chunk:int -> ?probe_budget:int -> unit -> unit

(** Restore the default cost model. *)
val reset_cost_model : unit -> unit

(** Exponentially-weighted moving average of the measured per-item cost
    (ns) across recent batches — the cost model's feedback hook, exposed
    for observability. [0] until the first measured batch. *)
val last_item_cost_ns : unit -> int

(** Cumulative counters since pool creation. [busy_seconds.(0)] is the
    submitting side; slots [1..] are the workers. *)
type stats = {
  domains : int;
  tasks : int;  (** batches that fanned out to the workers *)
  chunks : int;  (** chunks claimed and run *)
  items : int;  (** items processed through parallel-eligible batches *)
  steals : int;  (** chunks taken from another participant's deque *)
  inline_batches : int;  (** batches the cost model kept inline *)
  busy_seconds : float array;
}

val stats : t -> stats

(** Log the counters on the [dlearn.pool] source at debug level. *)
val log_stats : t -> unit

(** Stop the workers and join them. The pool must not be used afterwards;
    idempotent. Pools from {!get} are shut down at exit automatically. *)
val shutdown : t -> unit
