(** Jaro and Jaro-Winkler string similarity. Offered as an alternative
    similarity operator (the paper's results are orthogonal to the choice
    of operator); used by the MD-discovery extension. *)

val jaro : string -> string -> float

(** [similarity ?prefix_scale a b] boosts the Jaro score by the length (≤4)
    of the common prefix, scaled by [prefix_scale] (default 0.1). *)
val similarity : ?prefix_scale:float -> string -> string -> float
