let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Registry: metrics are identified by name; each holds one cell per
   writing domain. The registry mutex guards only name lookup and shard
   registration — every update after a domain's first touch of a metric
   goes through domain-local storage and plain field writes.             *)

(* One domain's shard of a metric. A cell has exactly one writing domain,
   so plain mutable fields are race-free; readers merging shards may see
   a value a few updates stale, never a torn one (OCaml immediate ints
   do not tear). *)
type cell = {
  mutable count : int;
  mutable sum : int;
  mutable mn : int;
  mutable mx : int;
}

type kind = Counter | Gauge | Histogram

type metric = {
  id : int;
  name : string;
  kind : kind;
  mutable cells : cell list; (* appended under [registry_m] *)
  mutable gauge_v : float; (* gauges only: last write wins *)
}

type counter = metric
type gauge = metric
type histogram = metric

let registry_m = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let intern kind name =
  Mutex.protect registry_m (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m ->
          if m.kind <> kind then
            invalid_arg
              (Printf.sprintf "Obs: metric %s already registered with another kind"
                 name);
          m
      | None ->
          let m =
            {
              id = !next_id;
              name;
              kind;
              cells = [];
              gauge_v = 0.0;
            }
          in
          incr next_id;
          Hashtbl.add registry name m;
          m)

(* Per-domain name -> metric cache so repeated lookups (notably [span],
   which resolves its histogram by name on every call) stay off the
   registry mutex. *)
let local_metrics : (string, metric) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let find_or_create kind name =
  let local = Domain.DLS.get local_metrics in
  match Hashtbl.find_opt local name with
  | Some m when m.kind = kind -> m
  | _ ->
      let m = intern kind name in
      Hashtbl.replace local name m;
      m

let counter name = find_or_create Counter name
let gauge name = find_or_create Gauge name
let histogram name = find_or_create Histogram name

(* Domain-local metric-id -> cell table. Created lazily per domain; the
   pool keeps its domains alive across batches, so each worker pays the
   registration cost once per metric. *)
let local_cells : (int, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let cell_of (m : metric) =
  let local = Domain.DLS.get local_cells in
  match Hashtbl.find_opt local m.id with
  | Some c -> c
  | None ->
      let c = { count = 0; sum = 0; mn = max_int; mx = min_int } in
      Hashtbl.add local m.id c;
      Mutex.protect registry_m (fun () -> m.cells <- c :: m.cells);
      c

let add (m : counter) k =
  let c = cell_of m in
  c.count <- c.count + 1;
  c.sum <- c.sum + k

let incr m = add m 1

let value (m : counter) = List.fold_left (fun acc c -> acc + c.sum) 0 m.cells

let reset_cells m =
  List.iter
    (fun c ->
      c.count <- 0;
      c.sum <- 0;
      c.mn <- max_int;
      c.mx <- min_int)
    m.cells

let reset_counter = reset_cells
let set_gauge (m : gauge) v = m.gauge_v <- v
let gauge_value (m : gauge) = m.gauge_v

let observe_ns (m : histogram) ns =
  let c = cell_of m in
  c.count <- c.count + 1;
  c.sum <- c.sum + ns;
  if ns < c.mn then c.mn <- ns;
  if ns > c.mx then c.mx <- ns

type histogram_snapshot = {
  count : int;
  total_ns : int;
  min_ns : int;
  max_ns : int;
}

let histogram_snapshot (m : histogram) =
  let count, total, mn, mx =
    List.fold_left
      (fun (count, total, mn, mx) (c : cell) ->
        (count + c.count, total + c.sum, min mn c.mn, max mx c.mx))
      (0, 0, max_int, min_int) m.cells
  in
  if count = 0 then { count = 0; total_ns = 0; min_ns = 0; max_ns = 0 }
  else { count; total_ns = total; min_ns = mn; max_ns = mx }

(* ------------------------------------------------------------------ *)
(* Trace events. One buffer per domain, registered globally on first
   use; recording toggles an atomic flag that every producer checks
   before touching its buffer.                                          *)

type event = {
  ev_name : string;
  ev_args : (string * string) list;
  ev_ts_ns : int;
  ev_dur_ns : int;
  ev_tid : int;
}

type buffer = { mutable evs : event list }

let buffers_m = Mutex.create ()
let buffers : buffer list ref = ref []

let local_buffer : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { evs = [] } in
      Mutex.protect buffers_m (fun () -> buffers := b :: !buffers);
      b)

let recording_flag = Atomic.make false
let trace_start_ns = Atomic.make 0
let recording () = Atomic.get recording_flag

(* Spans are pay-for-what-you-use: with neither span metrics nor trace
   recording switched on, [span] must cost nothing beyond calling its
   closure. [active_flag] is the single flag producers read on the fast
   path; it is refreshed whenever either input flag changes. *)
let metrics_flag = Atomic.make false
let active_flag = Atomic.make false

let refresh_active () =
  Atomic.set active_flag (Atomic.get metrics_flag || Atomic.get recording_flag)

let set_metrics on =
  Atomic.set metrics_flag on;
  refresh_active ()

let metrics_enabled () = Atomic.get metrics_flag
let active () = Atomic.get active_flag

let clear_events () =
  Mutex.protect buffers_m (fun () -> List.iter (fun b -> b.evs <- []) !buffers)

let start_recording () =
  clear_events ();
  Atomic.set trace_start_ns (now_ns ());
  Atomic.set recording_flag true;
  refresh_active ()

let stop_recording () =
  Atomic.set recording_flag false;
  refresh_active ()

let push_event ev =
  let b = Domain.DLS.get local_buffer in
  b.evs <- ev :: b.evs

let emit_event ?(args = []) ~name ~start_ns ~dur_ns () =
  if recording () then
    push_event
      {
        ev_name = name;
        ev_args = args;
        ev_ts_ns = start_ns;
        ev_dur_ns = dur_ns;
        ev_tid = (Domain.self () :> int);
      }

let span_slow ~args name f =
  let h = histogram name in
  let t0 = now_ns () in
  match f () with
  | v ->
      let dt = now_ns () - t0 in
      observe_ns h dt;
      emit_event ~args ~name ~start_ns:t0 ~dur_ns:dt ();
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      let dt = now_ns () - t0 in
      observe_ns h dt;
      emit_event
        ~args:(("exception", Printexc.to_string e) :: args)
        ~name ~start_ns:t0 ~dur_ns:dt ();
      Printexc.raise_with_backtrace e bt

(* The common case — no report requested, no trace recording — must not
   pay for timestamps, DLS lookups, or event argument lists: one atomic
   read, then the bare closure call. *)
let span ?(args = []) name f =
  if Atomic.get active_flag then span_slow ~args name f else f ()

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export.                                          *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         args)
  ^ "}"

let write_trace path =
  let evs =
    Mutex.protect buffers_m (fun () ->
        List.concat_map (fun b -> b.evs) !buffers)
  in
  let evs =
    List.sort (fun a b -> Int.compare a.ev_ts_ns b.ev_ts_ns) evs
  in
  (* Rebase to the recording start so viewers open near t = 0. *)
  let base =
    match evs with
    | [] -> Atomic.get trace_start_ns
    | e :: _ -> min e.ev_ts_ns (Atomic.get trace_start_ns)
  in
  let pid = Unix.getpid () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
      Printf.fprintf oc
        "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"dlearn\"}}"
        pid;
      let tids =
        List.sort_uniq Int.compare (List.map (fun e -> e.ev_tid) evs)
      in
      List.iter
        (fun tid ->
          Printf.fprintf oc
            ",\n\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
            pid tid tid)
        tids;
      List.iter
        (fun e ->
          Printf.fprintf oc
            ",\n\
             {\"name\":\"%s\",\"cat\":\"dlearn\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":%s}"
            (json_escape e.ev_name)
            (float_of_int (e.ev_ts_ns - base) /. 1e3)
            (float_of_int e.ev_dur_ns /. 1e3)
            pid e.ev_tid (render_args e.ev_args))
        evs;
      output_string oc "\n]}\n")

let install_env_trace () =
  match Sys.getenv_opt "DLEARN_TRACE" with
  | Some path when String.trim path <> "" ->
      start_recording ();
      at_exit (fun () -> write_trace path)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

let metrics_sorted () =
  Mutex.protect registry_m (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let secs ns = float_of_int ns /. 1e9

let pp_duration ns =
  let s = secs ns in
  if s >= 1.0 then Printf.sprintf "%.3fs" s
  else if s >= 1e-3 then Printf.sprintf "%.3fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let report () =
  let ms = metrics_sorted () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== observability report ==\n";
  let spans =
    List.filter_map
      (fun m ->
        if m.kind <> Histogram then None
        else
          let s = histogram_snapshot m in
          if s.count = 0 then None else Some (m, s))
      ms
    |> List.sort (fun (_, a) (_, b) -> Int.compare b.total_ns a.total_ns)
  in
  if spans <> [] then begin
    Buffer.add_string buf "spans:\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-32s %10s %12s %12s %12s\n" "name" "count" "total"
         "mean" "max");
    List.iter
      (fun (m, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %10d %12s %12s %12s\n" m.name s.count
             (pp_duration s.total_ns)
             (pp_duration (s.total_ns / max 1 s.count))
             (pp_duration s.max_ns)))
      spans
  end;
  let counters =
    List.filter_map
      (fun m ->
        if m.kind <> Counter then None
        else
          let v = value m in
          if v = 0 then None else Some (m.name, v))
      ms
  in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-32s %14d\n" name v))
      counters
  end;
  let gauges =
    List.filter_map
      (fun m -> if m.kind = Gauge then Some (m.name, m.gauge_v) else None)
      ms
  in
  if gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-32s %14.2f\n" name v))
      gauges
  end;
  Buffer.contents buf

let report_json () =
  let ms = metrics_sorted () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"spans\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ','
  in
  List.iter
    (fun m ->
      if m.kind = Histogram then begin
        let s = histogram_snapshot m in
        if s.count > 0 then begin
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"count\":%d,\"total_ns\":%d,\"min_ns\":%d,\"max_ns\":%d}"
               (json_escape m.name) s.count s.total_ns s.min_ns s.max_ns)
        end
      end)
    ms;
  Buffer.add_string buf "],\"counters\":[";
  first := true;
  List.iter
    (fun m ->
      if m.kind = Counter then begin
        sep ();
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"value\":%d}" (json_escape m.name)
             (value m))
      end)
    ms;
  Buffer.add_string buf "],\"gauges\":[";
  first := true;
  List.iter
    (fun m ->
      if m.kind = Gauge then begin
        sep ();
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"value\":%.6f}"
             (json_escape m.name) m.gauge_v)
      end)
    ms;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let reset () =
  List.iter
    (fun m ->
      reset_cells m;
      m.gauge_v <- 0.0)
    (metrics_sorted ());
  clear_events ()

(* {2 Process memory} *)

let peak_rss_kb () =
  (* VmHWM is the process's lifetime peak resident set — the number the
     scale bench compares streaming vs. materializing ingestion with. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                  let digits =
                    String.to_seq (String.sub line 6 (String.length line - 6))
                    |> Seq.filter (fun c -> c >= '0' && c <= '9')
                    |> String.of_seq
                  in
                  int_of_string_opt digits
                else scan ()
          in
          scan ())
