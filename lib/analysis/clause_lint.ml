open Dlearn_logic

let subject_of clause = Diagnostic.Clause_head (Clause.head_pred clause)

(* DL101: every head variable must occur in a body schema atom. *)
let unsafe_head_vars clause =
  let subject = subject_of clause in
  let body_rel_vars =
    List.concat_map Literal.vars (Clause.rel_body clause)
    |> List.sort_uniq String.compare
  in
  Literal.vars clause.Clause.head
  |> List.filter (fun v -> not (List.mem v body_rel_vars))
  |> List.map (fun v ->
         Diagnostic.error ~code:"DL101" ~subject ~witness:v
           (Printf.sprintf
              "head variable %s is not bound by any body schema atom (the \
               clause is not range-restricted)"
              v))

(* DL102: literals head_connected would drop. *)
let disconnected_literals clause =
  let subject = subject_of clause in
  let kept = (Clause.head_connected clause).Clause.body in
  List.filter (fun l -> not (List.memq l kept)) clause.Clause.body
  |> List.map (fun l ->
         Diagnostic.warning ~code:"DL102" ~subject
           ~witness:(Literal.to_string l)
           "body literal shares no variable chain with the head; \
            generalisation would silently drop it")

(* DL103: variables with a single occurrence. *)
let singleton_vars clause =
  let subject = subject_of clause in
  let occurrences = Hashtbl.create 16 in
  let bump t =
    match t with
    | Term.Var v ->
        Hashtbl.replace occurrences v
          (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences v))
    | Term.Const _ -> ()
  in
  List.iter
    (fun l -> List.iter bump (Literal.terms l))
    (clause.Clause.head :: clause.Clause.body);
  let head_vars = Literal.vars clause.Clause.head in
  Hashtbl.fold
    (fun v n acc ->
      if n = 1 && not (List.mem v head_vars) then
        Diagnostic.warning ~code:"DL103" ~subject ~witness:v
          (Printf.sprintf
             "variable %s occurs exactly once; it constrains nothing" v)
        :: acc
      else acc)
    occurrences []
  |> List.sort compare

(* DL104: duplicated body literals. *)
let duplicate_literals clause =
  let subject = subject_of clause in
  let rec go seen = function
    | [] -> []
    | l :: rest ->
        if List.exists (Literal.equal l) seen then
          Diagnostic.warning ~code:"DL104" ~subject
            ~witness:(Literal.to_string l) "duplicate body literal"
          :: go seen rest
        else go (l :: seen) rest
  in
  go [] clause.Clause.body

(* DL105/DL106: trivially true / trivially false restriction literals. *)
let trivial_restrictions clause =
  let subject = subject_of clause in
  List.filter_map
    (fun l ->
      let tautology () =
        Some
          (Diagnostic.warning ~code:"DL105" ~subject
             ~witness:(Literal.to_string l)
             "restriction literal is always satisfied")
      in
      let contradiction () =
        Some
          (Diagnostic.error ~code:"DL106" ~subject
             ~witness:(Literal.to_string l)
             "restriction literal can never be satisfied; the clause \
              covers nothing")
      in
      match l with
      | Literal.Eq (a, b) when Term.equal a b -> tautology ()
      | Literal.Sim (a, b) when Term.equal a b -> tautology ()
      | Literal.Neq (a, b) when Term.equal a b -> contradiction ()
      | Literal.Eq (Term.Const a, Term.Const b)
        when not (Dlearn_relation.Value.equal a b) ->
          contradiction ()
      | _ -> None)
    clause.Clause.body

(* DL401–DL403: what the Clause_norm simplification pipeline would
   rewrite. Emitted from the pipeline's own pass implementations
   ([Clause_norm.plan]), so lint and rewrite can never disagree: a
   diagnostic fires exactly when normalization would fire. Duplicates are
   skipped — DL104 above already reports them (and the pipeline's
   duplicate pass agrees with it by construction: both match with
   [Literal.equal]). *)
let simplifiable clause =
  let subject = subject_of clause in
  List.filter_map
    (fun rw ->
      let witness = Clause_norm.rewrite_to_string rw in
      match rw with
      | Clause_norm.Drop_duplicate _ -> None
      | Clause_norm.Drop_tautology _ | Clause_norm.Drop_cond_atom _ ->
          Some
            (Diagnostic.warning ~code:"DL401" ~subject ~witness
               "literal is trivially satisfied under the clause \
                environment; normalization drops it")
      | Clause_norm.Contradiction _ ->
          Some
            (Diagnostic.error ~code:"DL402" ~subject ~witness
               "literal can never be satisfied; normalization rewrites \
                the clause to its trivially-false form (it covers \
                nothing)")
      | Clause_norm.Condense _ ->
          Some
            (Diagnostic.warning ~code:"DL403" ~subject ~witness
               "alpha-redundant body literal: a substitution of its \
                local variables maps it onto another literal; \
                normalization drops it"))
    (Clause_norm.plan clause)

let check clause =
  unsafe_head_vars clause
  @ disconnected_literals clause
  @ singleton_vars clause
  @ duplicate_literals clause
  @ trivial_restrictions clause
  @ simplifiable clause
