open Dlearn_relation

let src = Logs.Src.create "dlearn.repair"

module Log = (val Logs.src_log src : Logs.LOG)

(* One repair pass for one CFD: unify each violating group's rhs values. *)
let repair_pass (cfd : Cfd.t) relation =
  let schema = Relation.schema relation in
  let lhs = Cfd.lhs_positions cfd schema in
  let rhs_pos, rhs_pat = Cfd.rhs_position cfd schema in
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun id tuple ->
      if List.for_all (fun (pos, pat) -> Cfd.matches pat (Tuple.get tuple pos)) lhs
      then begin
        let key =
          String.concat "\x00"
            (List.map (fun (pos, _) -> Value.to_string (Tuple.get tuple pos)) lhs)
        in
        match Hashtbl.find_opt groups key with
        | Some ids -> ids := id :: !ids
        | None -> Hashtbl.add groups key (ref [ id ])
      end)
    relation;
  (* Decide the target value of every group that needs repair. *)
  let targets : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ ids ->
      let ids = !ids in
      let values =
        List.map (fun id -> Tuple.get (Relation.get relation id) rhs_pos) ids
      in
      let all_equal =
        match values with
        | [] -> true
        | v :: rest -> List.for_all (Value.equal v) rest
      in
      let all_match = List.for_all (Cfd.matches rhs_pat) values in
      if not (all_equal && all_match) then begin
        let target =
          match rhs_pat with
          | Cfd.Const c -> c
          | Cfd.Wildcard ->
              (* Most frequent value; ties resolved by value order for
                 determinism. *)
              let counts = Hashtbl.create 8 in
              List.iter
                (fun v ->
                  let k = Value.to_string v in
                  Hashtbl.replace counts k
                    (match Hashtbl.find_opt counts k with
                    | Some (n, _) -> (n + 1, v)
                    | None -> (1, v)))
                values;
              Hashtbl.fold
                (fun _ (n, v) best ->
                  match best with
                  | Some (bn, bv)
                    when bn > n || (bn = n && Value.compare bv v <= 0) ->
                      best
                  | _ -> Some (n, v))
                counts None
              |> Option.map snd
              |> Option.value ~default:Value.Null
        in
        List.iter (fun id -> Hashtbl.replace targets id target) ids
      end)
    groups;
  if Hashtbl.length targets = 0 then (relation, false)
  else begin
    let fresh = Relation.create schema in
    Relation.iter
      (fun id tuple ->
        let tuple' =
          match Hashtbl.find_opt targets id with
          | Some v -> Tuple.set tuple rhs_pos v
          | None -> tuple
        in
        ignore (Relation.insert fresh tuple'))
      relation;
    (fresh, true)
  end

let repair_relation ?(max_rounds = 10) cfds relation =
  let relevant =
    List.filter
      (fun (c : Cfd.t) -> String.equal c.Cfd.relation (Relation.name relation))
      cfds
  in
  let rec rounds n rel =
    if n >= max_rounds then begin
      Log.warn (fun m ->
          m "minimal repair of %s did not converge within %d rounds"
            (Relation.name rel) max_rounds);
      rel
    end
    else begin
      let rel', changed =
        List.fold_left
          (fun (r, ch) cfd ->
            let r', ch' = repair_pass cfd r in
            (r', ch || ch'))
          (rel, false) relevant
      in
      if changed then rounds (n + 1) rel' else rel'
    end
  in
  if relevant = [] then Relation.copy relation else rounds 0 relation

let repair ?max_rounds cfds db =
  let db' = Database.create () in
  List.iter
    (fun r -> Database.add_relation db' (repair_relation ?max_rounds cfds r))
    (Database.relations db);
  db'

let modifications before after =
  if Relation.cardinality before <> Relation.cardinality after then
    invalid_arg "Minimal_repair.modifications: cardinality mismatch";
  Relation.fold
    (fun id t acc ->
      let t' = Relation.get after id in
      let diff = ref 0 in
      for pos = 0 to Tuple.arity t - 1 do
        if not (Value.equal (Tuple.get t pos) (Tuple.get t' pos)) then incr diff
      done;
      acc + !diff)
    before 0
