open Dlearn_relation
open Dlearn_constraints
open Dlearn_logic
module Obs = Dlearn_obs.Obs

type mode =
  | Variable
  | Ground

(* ------------------------------------------------------------------ *)
(* Phase 1: gather the relevant tuples I_e (Algorithm 2).              *)
(* ------------------------------------------------------------------ *)

type site = {
  site_md : Md.t;
  left_id : int;
  right_id : int;
}

type gathered = {
  order : (string * int) list;  (** tuples in discovery order *)
  sites : site list;
}

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let gather (ctx : Context.t) rng (e : Tuple.t) =
  let config = ctx.Context.config in
  let db = ctx.Context.db in
  let seen : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let per_rel : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let m_values : (Value.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let frontier_values = ref [] in
  let frontier_tuples = ref [] in
  let sites = ref [] in
  let site_seen : (string * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let note_value v =
    if (not (Value.is_null v)) && not (Hashtbl.mem m_values v) then begin
      Hashtbl.add m_values v ();
      frontier_values := v :: !frontier_values
    end
  in
  (* Add one tuple, respecting the per-relation sample cap. Returns true
     when the tuple is (already or newly) part of I_e. *)
  let add_tuple rel id =
    if Hashtbl.mem seen (rel, id) then true
    else begin
      let count = Option.value ~default:0 (Hashtbl.find_opt per_rel rel) in
      if count >= config.Config.sample_size then false
      else begin
        Hashtbl.add seen (rel, id) ();
        Hashtbl.replace per_rel rel (count + 1);
        order := (rel, id) :: !order;
        frontier_tuples := (rel, id) :: !frontier_tuples;
        let tuple = Relation.get (Database.find db rel) id in
        Array.iter note_value tuple;
        true
      end
    end
  in
  Array.iter note_value e;
  for _iteration = 1 to config.Config.depth do
    let values = List.rev !frontier_values in
    let tuples = List.rev !frontier_tuples in
    frontier_values := [];
    frontier_tuples := [];
    (* Exact search: σ_{A ∈ M}(R) through the per-attribute indexes. *)
    List.iter
      (fun relation ->
        let rel = Relation.name relation in
        let arity = Schema.arity (Relation.schema relation) in
        let candidates = ref [] in
        let cand_seen = Hashtbl.create 16 in
        List.iter
          (fun v ->
            for pos = 0 to arity - 1 do
              if Context.is_searchable_attr ctx rel pos then
                List.iter
                  (fun id ->
                    if
                      (not (Hashtbl.mem seen (rel, id)))
                      && not (Hashtbl.mem cand_seen id)
                    then begin
                      Hashtbl.add cand_seen id ();
                      candidates := id :: !candidates
                    end)
                  (Relation.select_eq relation pos v)
            done)
          values;
        List.iter
          (fun id -> ignore (add_tuple rel id))
          (shuffle rng !candidates))
      (Database.relations db);
    (* Similarity search: ψ_{B ≈ M}(R) per MD, in both directions.

       Match discovery — the [Sim_index] query through the first compared
       attribute plus verification of the remaining pairs — is pure over
       the database, so it fans out across the pool, one work item per
       (MD, driver tuple, direction). The stateful application (sample
       caps, the per-driver km budget, site recording) then replays the
       discovered matches sequentially in exactly the order the old
       nested loops used — MD, then driver tuple, then left/right — so
       I_e and the site list are identical to the sequential build. *)
    let md_info =
      Array.of_list
        (List.map
           (fun (md : Md.t) ->
             let spec = Md.effective_spec md config.Config.sim in
             let left_rel = Database.find db md.Md.left_rel in
             let right_rel = Database.find db md.Md.right_rel in
             let ls = Relation.schema left_rel
             and rs = Relation.schema right_rel in
             let compared =
               List.map
                 (fun (a, b) -> (Schema.position ls a, Schema.position rs b))
                 md.Md.compared
             in
             (md, spec, left_rel, right_rel, compared))
           ctx.Context.mds)
    in
    let record_site (md : Md.t) left_id right_id =
      let key = (md.Md.id, left_id, right_id) in
      if not (Hashtbl.mem site_seen key) then begin
        Hashtbl.add site_seen key ();
        sites := { site_md = md; left_id; right_id } :: !sites
      end
    in
    (* A driver tuple on one side searches the other side through the
       first compared attribute, then the remaining pairs are verified.
       Returns the matching other-side ids in deterministic candidate
       order; read-only. *)
    let discover (mi, drive_left, (drv_rel, drv_id)) =
      let md, spec, left_rel, right_rel, compared = md_info.(mi) in
      let drv_name = if drive_left then md.Md.left_rel else md.Md.right_rel in
      if not (String.equal drv_rel drv_name) then []
      else begin
        let other_name, other_rel, drv_pos, other_pos =
          if drive_left then
            ( md.Md.right_rel,
              right_rel,
              fst (List.hd compared),
              snd (List.hd compared) )
          else
            ( md.Md.left_rel,
              left_rel,
              snd (List.hd compared),
              fst (List.hd compared) )
        in
        let driver = Relation.get (Database.find db drv_rel) drv_id in
        let v1 = Tuple.get driver drv_pos in
        if Value.is_null v1 || Md.Merge.is_merged v1 then []
        else begin
          let candidate_values =
            if config.Config.exact_matching then
              if Relation.holds_value other_rel other_pos v1 then [ v1 ]
              else []
            else
              Dlearn_similarity.Sim_index.query
                (Context.sim_index ctx other_name other_pos)
                ~km:config.Config.km ~threshold:spec.Md.threshold
                (Value.as_string v1)
              |> List.map (fun (s, _) -> Value.String s)
          in
          List.concat_map
            (fun v2 ->
              List.filter
                (fun other_id ->
                  let other_tuple = Relation.get other_rel other_id in
                  List.for_all
                    (fun (pl, pr) ->
                      let a, b =
                        if drive_left then
                          (Tuple.get driver pl, Tuple.get other_tuple pr)
                        else (Tuple.get other_tuple pl, Tuple.get driver pr)
                      in
                      if config.Config.exact_matching then Value.equal a b
                      else Md.similar spec a b)
                    compared)
                (Relation.select_eq other_rel other_pos v2))
            candidate_values
        end
      end
    in
    let work =
      Array.of_list
        (List.concat
           (List.mapi
              (fun mi _ ->
                List.concat_map
                  (fun drv -> [ (mi, true, drv); (mi, false, drv) ])
                  tuples)
              ctx.Context.mds))
    in
    let found =
      Obs.span "learn.sim_search"
        ~args:[ ("queries", string_of_int (Array.length work)) ]
        (fun () -> Dlearn_parallel.Pool.map (Context.pool ctx) discover work)
    in
    Array.iteri
      (fun w (mi, drive_left, (_, drv_id)) ->
        let md, _, _, _, _ = md_info.(mi) in
        let other_name =
          if drive_left then md.Md.right_rel else md.Md.left_rel
        in
        (* At most km match sites per driver tuple: km is the number of
           top matches considered (§6.2.1). *)
        let sites_left = ref config.Config.km in
        List.iter
          (fun other_id ->
            if !sites_left > 0 && add_tuple other_name other_id then begin
              decr sites_left;
              if drive_left then record_site md drv_id other_id
              else record_site md other_id drv_id
            end)
          found.(w))
      work
  done;
  { order = List.rev !order; sites = List.rev !sites }

(* ------------------------------------------------------------------ *)
(* Phase 2: assemble the clause.                                       *)
(* ------------------------------------------------------------------ *)

(* Mutable assembly state: CFD occurrence-splitting rewrites terms in
   every component, so literals are only materialised at the end. *)
type cell = {
  pred : string;
  cell_rel : string;
  cell_id : int;
  tuple : Tuple.t;
  args : Term.t array;
}

type rspec = {
  r_origin : Literal.origin;
  r_group : int;
  mutable r_cond : Cond.t;
  mutable r_subject : Term.t;
  mutable r_replacement : Term.t;
  r_drops_sims : bool;  (** MD repairs consume sims mentioning the subject *)
  mutable r_drops_eqs : (Term.t * Term.t) list;
}

type assembly = {
  mutable head_args : Term.t array;
  mutable cells : cell list;
  mutable sims : (Term.t * Term.t) list;
  mutable eqs : (Term.t * Term.t) list;  (** restriction + induced equalities *)
  mutable neqs : (Term.t * Term.t) list;
  mutable rspecs : rspec list;
}

let subst_everywhere (asm : assembly) x x' =
  let f t = if Term.equal t x then x' else t in
  asm.head_args <- Array.map f asm.head_args;
  List.iter
    (fun c ->
      Array.iteri (fun i t -> c.args.(i) <- f t) c.args)
    asm.cells;
  asm.sims <- List.map (fun (a, b) -> (f a, f b)) asm.sims;
  asm.eqs <- List.map (fun (a, b) -> (f a, f b)) asm.eqs;
  asm.neqs <- List.map (fun (a, b) -> (f a, f b)) asm.neqs;
  List.iter
    (fun r ->
      r.r_cond <- Cond.map_terms f r.r_cond;
      r.r_subject <- f r.r_subject;
      r.r_replacement <- f r.r_replacement;
      r.r_drops_eqs <- List.map (fun (a, b) -> (f a, f b)) r.r_drops_eqs)
    asm.rspecs

(* Split a shared term into a tagged copy for one occurrence: a fresh
   variable in variable mode, a tagged constant in ground mode. *)
let split_term mode gen suffix = function
  | Term.Var _ -> (
      match mode with
      | Variable | Ground -> Term.Fresh.next gen)
  | Term.Const v -> (
      match mode with
      | Ground | Variable ->
          Term.Const (Value.String (Value.to_string v ^ "\xc2\xa7" ^ suffix)))

let fresh_replacement mode gen tag =
  match mode with
  | Variable -> Term.Fresh.next gen
  | Ground -> Term.Const (Value.String ("\xe2\x8a\xa5" ^ tag))

let build (ctx : Context.t) mode (e : Tuple.t) =
  let config = ctx.Context.config in
  if Tuple.arity e <> Schema.arity config.Config.target then
    invalid_arg "Bottom_clause.build: example arity mismatch";
  (* Deterministic per-example randomness for sampling. *)
  let rng =
    Random.State.make [| config.Config.seed; Tuple.hash e |]
  in
  let gathered = gather ctx rng e in
  let db = ctx.Context.db in
  let var_gen = Term.Fresh.make "v" in
  let repair_gen = Term.Fresh.make "r" in
  let var_of : (Value.t, Term.t) Hashtbl.t = Hashtbl.create 64 in
  let term_of rel pos v =
    match mode with
    | Ground -> Term.Const v
    | Variable ->
        if Context.is_constant_attr ctx rel pos then Term.Const v
        else begin
          match Hashtbl.find_opt var_of v with
          | Some t -> t
          | None ->
              let t =
                if Value.is_null v then Term.Fresh.next var_gen
                else Term.Fresh.next var_gen
              in
              if not (Value.is_null v) then Hashtbl.add var_of v t;
              t
        end
  in
  let head_term v =
    match mode with
    | Ground -> Term.Const v
    | Variable -> (
        if Value.is_null v then Term.Fresh.next var_gen
        else
          match Hashtbl.find_opt var_of v with
          | Some t -> t
          | None ->
              let t = Term.Fresh.next var_gen in
              Hashtbl.add var_of v t;
              t)
  in
  let asm =
    {
      head_args = Array.map head_term e;
      cells = [];
      sims = [];
      eqs = [];
      neqs = [];
      rspecs = [];
    }
  in
  (* Schema atoms. *)
  asm.cells <-
    List.map
      (fun (rel, id) ->
        let tuple = Relation.get (Database.find db rel) id in
        {
          pred = rel;
          cell_rel = rel;
          cell_id = id;
          tuple;
          args = Array.mapi (fun pos v -> term_of rel pos v) tuple;
        })
      gathered.order;
  let find_cell rel id =
    List.find
      (fun c -> String.equal c.cell_rel rel && c.cell_id = id)
      asm.cells
  in
  (* MD similarity matches: similarity literals plus one simultaneous
     repair group per match site. *)
  let group_counter = ref 0 in
  (* Sites whose terms coincide — the same value pair matched through
     different tuple pairs (venues and names repeat across tuples) —
     collapse into one repair group. *)
  let group_seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun site ->
      let md = site.site_md in
      let lcell = find_cell md.Md.left_rel site.left_id in
      let rcell = find_cell md.Md.right_rel site.right_id in
      let ls = Relation.schema (Database.find db md.Md.left_rel) in
      let rs = Relation.schema (Database.find db md.Md.right_rel) in
      let compared_terms =
        List.filter_map
          (fun (a, b) ->
            let pa = Schema.position ls a and pb = Schema.position rs b in
            let ta = lcell.args.(pa) and tb = rcell.args.(pb) in
            if Term.equal ta tb then None else Some (ta, tb))
          md.Md.compared
      in
      List.iter
        (fun (ta, tb) ->
          if
            not
              (List.exists
                 (fun (a, b) ->
                   (Term.equal a ta && Term.equal b tb)
                   || (Term.equal a tb && Term.equal b ta))
                 asm.sims)
          then asm.sims <- asm.sims @ [ (ta, tb) ])
        compared_terms;
      let uc, ud = md.Md.unified in
      let puc = Schema.position ls uc and pud = Schema.position rs ud in
      let tl = lcell.args.(puc) and tr = rcell.args.(pud) in
      let group_key =
        Printf.sprintf "%s|%s|%s" md.Md.id (Term.to_string tl)
          (Term.to_string tr)
      in
      if (not (Term.equal tl tr)) && not (Hashtbl.mem group_seen group_key)
      then begin
        Hashtbl.add group_seen group_key ();
        let gid = !group_counter in
        incr group_counter;
        let cond = List.map (fun (a, b) -> Cond.Csim (a, b)) compared_terms in
        let vl, vr =
          match mode with
          | Variable ->
              (Term.Fresh.next repair_gen, Term.Fresh.next repair_gen)
          | Ground ->
              let merged =
                match tl, tr with
                | Term.Const a, Term.Const b -> Term.Const (Md.Merge.merge a b)
                | _ -> assert false
              in
              (merged, merged)
        in
        asm.rspecs <-
          asm.rspecs
          @ [
              {
                r_origin = Literal.From_md md.Md.id;
                r_group = gid;
                r_cond = cond;
                r_subject = tl;
                r_replacement = vl;
                r_drops_sims = true;
                r_drops_eqs = [];
              };
              {
                r_origin = Literal.From_md md.Md.id;
                r_group = gid;
                r_cond = cond;
                r_subject = tr;
                r_replacement = vr;
                r_drops_sims = true;
                r_drops_eqs = [];
              };
            ];
        if not (Term.equal vl vr) then asm.eqs <- asm.eqs @ [ (vl, vr) ]
      end)
    gathered.sites;
  (* CFD violations among the clause's literals, with later rounds finding
     the violations induced by hypothetical repairs (whose conditions
     reference the inducing repair's terms). *)
  let violation_seen : (string * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let hyp_pairs round =
    if round <= 1 then []
    else
      List.concat_map
        (fun r ->
          match r.r_origin with
          | Literal.From_cfd _ -> [ (r.r_subject, r.r_replacement) ]
          | Literal.From_md _ -> [])
        asm.rspecs
      @ (* An applied MD group makes its two unified terms equal. *)
      (let md_groups = Hashtbl.create 8 in
       List.iter
         (fun r ->
           match r.r_origin with
           | Literal.From_md _ ->
               Hashtbl.replace md_groups r.r_group
                 (r.r_subject
                 :: Option.value ~default:[]
                      (Hashtbl.find_opt md_groups r.r_group))
           | Literal.From_cfd _ -> ())
         asm.rspecs;
       Hashtbl.fold
         (fun _ subjects acc ->
           match subjects with [ a; b ] -> (a, b) :: acc | _ -> acc)
         md_groups [])
  in
  let terms_hyp_equal hyps a b =
    Term.equal a b
    || List.exists
         (fun (x, y) ->
           (Term.equal x a && Term.equal y b)
           || (Term.equal x b && Term.equal y a))
         hyps
  in
  for round = 1 to config.Config.cfd_rounds do
    let hyps = hyp_pairs round in
    List.iter
      (fun (cfd : Cfd.t) ->
        match Database.find_opt db cfd.Cfd.relation with
        | None -> ()
        | Some relation ->
            let schema = Relation.schema relation in
            let lhs = Cfd.lhs_positions cfd schema in
            let rhs_pos, rhs_pat = Cfd.rhs_position cfd schema in
            let cells =
              List.filter
                (fun c -> String.equal c.pred cfd.Cfd.relation)
                asm.cells
            in
            let arr = Array.of_list cells in
            let n = Array.length arr in
            for i = 0 to n - 1 do
              for j = i to n - 1 do
                let ci = arr.(i) and cj = arr.(j) in
                let key = (cfd.Cfd.id, min ci.cell_id cj.cell_id, max ci.cell_id cj.cell_id) in
                if not (Hashtbl.mem violation_seen key) then begin
                  let lhs_agrees =
                    List.for_all
                      (fun (pos, pat) ->
                        terms_hyp_equal hyps ci.args.(pos) cj.args.(pos)
                        && Cfd.matches pat (Tuple.get ci.tuple pos)
                        && Cfd.matches pat (Tuple.get cj.tuple pos))
                      lhs
                  in
                  let z = ci.args.(rhs_pos) and t = cj.args.(rhs_pos) in
                  let violates =
                    if i = j then
                      lhs_agrees
                      && not (Cfd.matches rhs_pat (Tuple.get ci.tuple rhs_pos))
                    else
                      lhs_agrees
                      && not
                           (Term.equal z t
                           && Cfd.matches rhs_pat (Tuple.get ci.tuple rhs_pos))
                  in
                  if violates then begin
                    Hashtbl.add violation_seen key ();
                    let gid = !group_counter in
                    incr group_counter;
                    if i = j then begin
                      (* Single-tuple violation of a constant rhs: repair by
                         setting the value to the pattern constant. *)
                      match rhs_pat with
                      | Cfd.Const c ->
                          let target = Term.Const c in
                          let cond =
                            List.map
                              (fun (pos, _) -> Cond.Ceq (ci.args.(pos), ci.args.(pos)))
                              lhs
                            @ [ Cond.Cneq (z, target) ]
                          in
                          asm.rspecs <-
                            asm.rspecs
                            @ [
                                {
                                  r_origin = Literal.From_cfd cfd.Cfd.id;
                                  r_group = gid;
                                  r_cond = cond;
                                  r_subject = z;
                                  r_replacement = target;
                                  r_drops_sims = false;
                                  r_drops_eqs = [];
                                };
                              ]
                      | Cfd.Wildcard -> ()
                    end
                    else begin
                      (* Split the shared wildcard left-hand-side
                         occurrences apart (Example 3.1). *)
                      let split_pairs =
                        List.filter_map
                          (fun (pos, pat) ->
                            match pat with
                            | Cfd.Const _ -> None
                            | Cfd.Wildcard ->
                                let x = ci.args.(pos) in
                                if Term.equal x cj.args.(pos) then begin
                                  let x1 =
                                    split_term mode var_gen
                                      (Printf.sprintf "g%da" gid) x
                                  in
                                  let x2 =
                                    split_term mode var_gen
                                      (Printf.sprintf "g%db" gid) x
                                  in
                                  (* Every occurrence moves to x1, then the
                                     second literal's occurrence to x2. *)
                                  subst_everywhere asm x x1;
                                  cj.args.(pos) <- x2;
                                  asm.eqs <- asm.eqs @ [ (x1, x2) ];
                                  Some (x1, x2)
                                end
                                else None)
                          lhs
                      in
                      let z = ci.args.(rhs_pos) and t = cj.args.(rhs_pos) in
                      (* Left-hand-side positions whose terms are only
                         hypothetically equal (an induced violation, round
                         >= 2) contribute their equality to the condition:
                         the repair stays inert until the inducing repair
                         actually makes the terms equal. *)
                      let hyp_eqs =
                        List.filter_map
                          (fun (pos, _) ->
                            let a = ci.args.(pos) and b = cj.args.(pos) in
                            if Term.equal a b then None
                            else Some (Cond.Ceq (a, b)))
                          lhs
                      in
                      let cond =
                        List.map (fun (a, b) -> Cond.Ceq (a, b)) split_pairs
                        @ hyp_eqs
                        @ [ Cond.Cneq (z, t) ]
                      in
                      let mk_rhs subject replacement =
                        {
                          r_origin = Literal.From_cfd cfd.Cfd.id;
                          r_group = gid;
                          r_cond = cond;
                          r_subject = subject;
                          r_replacement = replacement;
                          r_drops_sims = false;
                          r_drops_eqs = [];
                        }
                      in
                      let lhs_specs =
                        List.concat_map
                          (fun (x1, x2) ->
                            let f1 =
                              fresh_replacement mode repair_gen
                                (Printf.sprintf "g%dL" gid)
                            and f2 =
                              fresh_replacement mode repair_gen
                                (Printf.sprintf "g%dR" gid)
                            in
                            asm.neqs <- asm.neqs @ [ (f1, x2); (f2, x1) ];
                            [
                              {
                                r_origin = Literal.From_cfd cfd.Cfd.id;
                                r_group = gid;
                                r_cond = cond;
                                r_subject = x1;
                                r_replacement = f1;
                                r_drops_sims = false;
                                r_drops_eqs = [ (x1, x2) ];
                              };
                              {
                                r_origin = Literal.From_cfd cfd.Cfd.id;
                                r_group = gid;
                                r_cond = cond;
                                r_subject = x2;
                                r_replacement = f2;
                                r_drops_sims = false;
                                r_drops_eqs = [ (x1, x2) ];
                              };
                            ])
                          split_pairs
                      in
                      asm.rspecs <-
                        asm.rspecs @ [ mk_rhs z t; mk_rhs t z ] @ lhs_specs
                    end
                  end
                end
              done
            done)
      ctx.Context.cfds
  done;
  (* Materialise literals. *)
  let sim_literals = List.map (fun (a, b) -> Literal.Sim (a, b)) asm.sims in
  let repair_literals =
    List.map
      (fun r ->
        let drops =
          (if r.r_drops_sims then
             List.filter
               (fun l -> List.exists (Term.equal r.r_subject) (Literal.terms l))
               sim_literals
           else [])
          @ List.map (fun (a, b) -> Literal.Eq (a, b)) r.r_drops_eqs
        in
        Literal.Repair
          {
            origin = r.r_origin;
            group = r.r_group;
            cond = r.r_cond;
            subject = r.r_subject;
            replacement = r.r_replacement;
            drops;
          })
      asm.rspecs
  in
  let head =
    Literal.Rel
      { pred = Schema.name config.Config.target; args = asm.head_args }
  in
  let body =
    List.map (fun c -> Literal.Rel { pred = c.pred; args = c.args }) asm.cells
    @ sim_literals
    @ List.map (fun (a, b) -> Literal.Eq (a, b)) asm.eqs
    @ List.map (fun (a, b) -> Literal.Neq (a, b)) asm.neqs
    @ repair_literals
  in
  Clause.make ~head body

(* Double-checked: the build runs outside the cache lock so distinct
   examples ground in parallel. Two domains racing on one key both build
   (the same clause — construction is deterministic in the example) and
   the first insert wins, so every caller shares one entry. *)
let ground (ctx : Context.t) e =
  let key = Context.example_key e in
  let cached =
    Mutex.protect ctx.Context.ground_lock (fun () ->
        Hashtbl.find_opt ctx.Context.ground_cache key)
  in
  match cached with
  | Some entry -> entry
  | None -> (
      let entry =
        {
          Context.ground = build ctx Ground e;
          lock = Mutex.create ();
          cfd_apps = None;
          repairs = None;
          target = None;
          repair_targets = None;
          prefilter_target = None;
        }
      in
      Mutex.protect ctx.Context.ground_lock (fun () ->
          match Hashtbl.find_opt ctx.Context.ground_cache key with
          | Some existing -> existing
          | None ->
              Hashtbl.add ctx.Context.ground_cache key entry;
              entry))
