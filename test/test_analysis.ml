open Dlearn_relation
open Dlearn_logic
open Dlearn_constraints
open Dlearn_analysis

let v = Term.var
let s = Term.str
let rel = Literal.rel

(* Catalog with mixed domains: movies(id:string, title:string, year:int),
   ratings(mid:string, score:float), people(name:string) empty. *)
let fixture_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.make "movies"
         [
           { Schema.attr_name = "id"; domain = Schema.Dstring };
           { Schema.attr_name = "title"; domain = Schema.Dstring };
           { Schema.attr_name = "year"; domain = Schema.Dint };
         ])
  in
  Relation.insert_all movies
    [
      Tuple.make
        [ Value.String "10"; Value.String "Star Wars"; Value.Int 1977 ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.make "ratings"
         [
           { Schema.attr_name = "mid"; domain = Schema.Dstring };
           { Schema.attr_name = "score"; domain = Schema.Dfloat };
         ])
  in
  Relation.insert_all ratings
    [ Tuple.make [ Value.String "10"; Value.Float 8.6 ] ];
  ignore (Database.create_relation db (Schema.string_attrs "people" [ "name" ]));
  db

let codes ds =
  List.map (fun d -> d.Diagnostic.code) ds |> List.sort_uniq String.compare

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_has code ds =
  Alcotest.(check bool)
    (Printf.sprintf "emits %s (got %s)" code (String.concat "," (codes ds)))
    true
    (List.mem code (codes ds))

let check_lacks code ds =
  Alcotest.(check bool)
    (Printf.sprintf "does not emit %s" code)
    false
    (List.mem code (codes ds))

let lint c = Clause_lint.check c
let typecheck ?target c = Schema_check.check (fixture_db ()) ?target c

let clause_tests =
  [
    Alcotest.test_case "DL101 flags unbound head variables" `Quick (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "movies" [ v "y"; v "t"; v "z" ] ]
        in
        check_has "DL101" (lint bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "movies" [ v "x"; v "t"; v "z" ] ]
        in
        check_lacks "DL101" (lint good));
    Alcotest.test_case "DL102 reports literals head_connected drops" `Quick
      (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "z" ]; rel "ratings" [ v "a"; v "b" ] ]
        in
        let ds = lint bad in
        check_has "DL102" ds;
        Alcotest.(check bool) "witness carries the dropped literal" true
          (List.exists
             (fun d ->
               d.Diagnostic.code = "DL102"
               && d.Diagnostic.witness = Some "ratings(a, b)")
             ds);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "z" ]; rel "ratings" [ v "x"; v "b" ] ]
        in
        check_lacks "DL102" (lint good));
    Alcotest.test_case "DL103 flags singleton variables" `Quick (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "movies" [ v "x"; v "t"; v "z" ] ]
        in
        check_has "DL103" (lint bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "t" ] ]
        in
        check_lacks "DL103" (lint good));
    Alcotest.test_case "DL104 flags duplicate body literals" `Quick (fun () ->
        let atom = rel "movies" [ v "x"; v "t"; v "t" ] in
        let bad = Clause.make ~head:(rel "h" [ v "x" ]) [ atom; atom ] in
        check_has "DL104" (lint bad);
        check_lacks "DL104"
          (lint (Clause.make ~head:(rel "h" [ v "x" ]) [ atom ])));
    Alcotest.test_case "DL105 flags tautological restrictions" `Quick (fun () ->
        let base = rel "movies" [ v "x"; v "t"; v "t" ] in
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ]) [ base; Literal.Eq (v "x", v "x") ]
        in
        check_has "DL105" (lint bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ]) [ base; Literal.Eq (v "x", v "t") ]
        in
        check_lacks "DL105" (lint good));
    Alcotest.test_case "DL106 flags contradictory restrictions" `Quick
      (fun () ->
        let base = rel "movies" [ v "x"; v "t"; v "t" ] in
        let neq =
          Clause.make ~head:(rel "h" [ v "x" ]) [ base; Literal.Neq (v "x", v "x") ]
        in
        check_has "DL106" (lint neq);
        let const_eq =
          Clause.make ~head:(rel "h" [ v "x" ]) [ base; Literal.Eq (s "a", s "b") ]
        in
        check_has "DL106" (lint const_eq);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ]) [ base; Literal.Neq (v "x", v "t") ]
        in
        check_lacks "DL106" (lint good));
  ]

let simplifiable_tests =
  let base = rel "movies" [ v "x"; v "t"; v "z" ] in
  let head = rel "h" [ v "x" ] in
  [
    Alcotest.test_case "DL401 flags literals normalization would drop" `Quick
      (fun () ->
        let bad =
          Clause.make ~head [ base; Literal.Eq (v "x", v "x") ]
        in
        check_has "DL401" (lint bad);
        check_lacks "DL401" (lint (Clause.make ~head [ base ])));
    Alcotest.test_case "DL401 is narrower than DL105 on unbound ~ vars" `Quick
      (fun () ->
        (* u is bound by no schema atom: the engines can only satisfy
           u ~ u through an explicit target similarity edge, so the
           pipeline keeps the literal — and the lint must agree — while
           the syntactic DL105 still flags it. *)
        let unbound = Clause.make ~head [ base; Literal.Sim (v "u", v "u") ] in
        check_has "DL105" (lint unbound);
        check_lacks "DL401" (lint unbound);
        let bound = Clause.make ~head [ base; Literal.Sim (v "t", v "t") ] in
        check_has "DL401" (lint bound));
    Alcotest.test_case "DL401 flags trivially-true repair condition atoms"
      `Quick (fun () ->
        let repair =
          Literal.Repair
            {
              Literal.origin = Literal.From_md "m";
              group = 0;
              cond = [ Cond.Ceq (v "t", v "t"); Cond.Cneq (v "t", v "z") ];
              subject = v "t";
              replacement = v "r";
              drops = [];
            }
        in
        check_has "DL401" (lint (Clause.make ~head [ base; repair ])));
    Alcotest.test_case "DL402 flags clauses normalization sends to falsum"
      `Quick (fun () ->
        let bad = Clause.make ~head [ base; Literal.Neq (v "x", v "x") ] in
        let ds = lint bad in
        check_has "DL402" ds;
        Alcotest.(check bool) "DL402 is an error" true
          (List.exists
             (fun d ->
               d.Diagnostic.code = "DL402"
               && d.Diagnostic.severity = Diagnostic.Error)
             ds);
        (* Distinct-constant equality: DL106 flags it syntactically, but
           the closure can merge constants, so the pipeline keeps it and
           DL402 stays silent. *)
        let const_eq = Clause.make ~head [ base; Literal.Eq (s "a", s "b") ] in
        check_has "DL106" (lint const_eq);
        check_lacks "DL402" (lint const_eq));
    Alcotest.test_case "DL403 flags alpha-redundant body literals" `Quick
      (fun () ->
        let bad =
          Clause.make ~head [ base; rel "movies" [ v "x"; v "a"; v "b" ] ]
        in
        check_has "DL403" (lint bad);
        (* Every variable shared: nothing is strictly local, no drop. *)
        let good = Clause.make ~head [ base; rel "ratings" [ v "t"; v "z" ] ] in
        check_lacks "DL403" (lint good));
    Alcotest.test_case "DL4xx respects repair drops protection" `Quick
      (fun () ->
        (* The Eq literal is recorded in a repair's drops list: rewriting
           it would change what the repair deletes, so the pipeline keeps
           it and no DL401 fires. *)
        let eq = Literal.Eq (v "t", v "t") in
        let repair =
          Literal.Repair
            {
              Literal.origin = Literal.From_cfd "c";
              group = 0;
              cond = [];
              subject = v "t";
              replacement = v "r";
              drops = [ eq ];
            }
        in
        let protected_c = Clause.make ~head [ base; repair; eq ] in
        check_lacks "DL401" (lint protected_c);
        let unprotected_c =
          Clause.make ~head
            [ base; Literal.Repair
                (match repair with
                | Literal.Repair r -> { r with Literal.drops = [] }
                | _ -> assert false); eq ]
        in
        check_has "DL401" (lint unprotected_c));
  ]

let schema_tests =
  [
    Alcotest.test_case "DL201 flags unknown predicates" `Quick (fun () ->
        let bad = Clause.make ~head:(rel "h" [ v "x" ]) [ rel "zzz" [ v "x" ] ] in
        check_has "DL201" (typecheck bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "people" [ v "x" ] ]
        in
        check_lacks "DL201" (typecheck good));
    Alcotest.test_case "DL202 flags arity mismatches" `Quick (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "movies" [ v "x"; v "t" ] ]
        in
        check_has "DL202" (typecheck bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "movies" [ v "x"; v "t"; v "y" ] ]
        in
        check_lacks "DL202" (typecheck good));
    Alcotest.test_case "DL203 flags constants outside the domain" `Quick
      (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; s "nineteen" ] ]
        in
        check_has "DL203" (typecheck bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; Term.const (Value.Int 1977) ] ]
        in
        check_lacks "DL203" (typecheck good));
    Alcotest.test_case "DL204 flags similarity over non-strings" `Quick
      (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "y" ]; Literal.Sim (v "y", v "t") ]
        in
        check_has "DL204" (typecheck bad);
        let const_bad =
          Clause.make ~head:(rel "h" [ v "x" ])
            [
              rel "movies" [ v "x"; v "t"; v "y" ];
              Literal.Sim (v "t", Term.const (Value.Int 3));
            ]
        in
        check_has "DL204" (typecheck const_bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "y" ]; Literal.Sim (v "t", v "u") ]
        in
        check_lacks "DL204" (typecheck good));
    Alcotest.test_case "DL205 flags variables joining across domains" `Quick
      (fun () ->
        let bad =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "y" ]; rel "ratings" [ v "z"; v "y" ] ]
        in
        check_has "DL205" (typecheck bad);
        let good =
          Clause.make ~head:(rel "h" [ v "x" ])
            [ rel "movies" [ v "x"; v "t"; v "y" ]; rel "ratings" [ v "x"; v "w" ] ]
        in
        check_lacks "DL205" (typecheck good));
    Alcotest.test_case "DL206 hints at a non-target head" `Quick (fun () ->
        let target = Schema.string_attrs "target" [ "id" ] in
        let c =
          Clause.make ~head:(rel "h" [ v "x" ]) [ rel "people" [ v "x" ] ]
        in
        check_has "DL206" (typecheck ~target c);
        let matching =
          Clause.make ~head:(rel "target" [ v "x" ]) [ rel "people" [ v "x" ] ]
        in
        check_lacks "DL206" (typecheck ~target matching);
        (* Without a configured target the hint cannot apply. *)
        check_lacks "DL206" (typecheck c));
  ]

let constraints ?(mds = []) ?(cfds = []) () =
  Constraint_check.check (fixture_db ()) ~mds ~cfds

let cfd_tests =
  [
    Alcotest.test_case "DL301 flags CFDs over unknown relations" `Quick
      (fun () ->
        let bad = Cfd.fd ~id:"c" ~relation:"nosuch" [ "a" ] "b" in
        check_has "DL301" (constraints ~cfds:[ bad ] ());
        let good = Cfd.fd ~id:"c" ~relation:"movies" [ "id" ] "title" in
        check_lacks "DL301" (constraints ~cfds:[ good ] ()));
    Alcotest.test_case "DL302 flags missing CFD attributes" `Quick (fun () ->
        let bad = Cfd.fd ~id:"c" ~relation:"movies" [ "id" ] "genre" in
        check_has "DL302" (constraints ~cfds:[ bad ] ());
        let good = Cfd.fd ~id:"c" ~relation:"movies" [ "id" ] "title" in
        check_lacks "DL302" (constraints ~cfds:[ good ] ()));
    Alcotest.test_case "DL303 flags patterns outside the domain" `Quick
      (fun () ->
        let bad =
          Cfd.make ~id:"c" ~relation:"movies"
            ~lhs:[ ("year", Cfd.Const (Value.String "late")) ]
            ~rhs:("title", Cfd.Wildcard)
        in
        check_has "DL303" (constraints ~cfds:[ bad ] ());
        let good =
          Cfd.make ~id:"c" ~relation:"movies"
            ~lhs:[ ("year", Cfd.Const (Value.Int 1977)) ]
            ~rhs:("title", Cfd.Wildcard)
        in
        check_lacks "DL303" (constraints ~cfds:[ good ] ()));
    Alcotest.test_case
      "DL304 witnesses the consistency.mli conflicting pair" `Quick
      (fun () ->
        (* The docstring's unsatisfiable pair: every tuple's title would
           have to equal both constants. *)
        let c1 =
          Cfd.make ~id:"phi1" ~relation:"movies"
            ~lhs:[ ("id", Cfd.Wildcard) ]
            ~rhs:("title", Cfd.Const (Value.String "b1"))
        in
        let c2 =
          Cfd.make ~id:"phi2" ~relation:"movies"
            ~lhs:[ ("id", Cfd.Wildcard) ]
            ~rhs:("title", Cfd.Const (Value.String "b2"))
        in
        let ds = constraints ~cfds:[ c1; c2 ] () in
        check_has "DL304" ds;
        let d =
          List.find (fun d -> d.Diagnostic.code = "DL304") ds
        in
        Alcotest.(check bool) "is an error" true
          (d.Diagnostic.severity = Diagnostic.Error);
        (match d.Diagnostic.witness with
        | Some w ->
            Alcotest.(check bool) "witness shows both conflicting patterns"
              true
              (contains "phi1" w && contains "phi2" w && contains "b1" w
             && contains "b2" w)
        | None -> Alcotest.fail "DL304 must carry a witness"));
    Alcotest.test_case "circular constant patterns stay satisfiable" `Quick
      (fun () ->
        (* (A -> B, a1 || b1) with (B -> A, b1 || a2) has the satisfying
           tuple (a2, b1) — the analyzer must not cry wolf. *)
        let c1 =
          Cfd.make ~id:"phi1" ~relation:"movies"
            ~lhs:[ ("id", Cfd.Const (Value.String "a1")) ]
            ~rhs:("title", Cfd.Const (Value.String "b1"))
        in
        let c2 =
          Cfd.make ~id:"phi2" ~relation:"movies"
            ~lhs:[ ("title", Cfd.Const (Value.String "b1")) ]
            ~rhs:("id", Cfd.Const (Value.String "a2"))
        in
        check_lacks "DL304" (constraints ~cfds:[ c1; c2 ] ()));
    Alcotest.test_case "DL304 core is minimal" `Quick (fun () ->
        let harmless = Cfd.fd ~id:"ok" ~relation:"movies" [ "id" ] "year" in
        let c1 =
          Cfd.make ~id:"phi1" ~relation:"movies"
            ~lhs:[ ("id", Cfd.Wildcard) ]
            ~rhs:("title", Cfd.Const (Value.String "b1"))
        in
        let c2 =
          Cfd.make ~id:"phi2" ~relation:"movies"
            ~lhs:[ ("id", Cfd.Wildcard) ]
            ~rhs:("title", Cfd.Const (Value.String "b2"))
        in
        match Consistency.inconsistent_cores [ harmless; c1; c2 ] with
        | [ core ] ->
            Alcotest.(check (list string))
              "core excludes the harmless FD" [ "phi1"; "phi2" ]
              (List.map (fun c -> c.Cfd.id) core)
        | other -> Alcotest.failf "expected 1 core, got %d" (List.length other));
    Alcotest.test_case "DL305 flags subsumed CFDs" `Quick (fun () ->
        let general = Cfd.fd ~id:"general" ~relation:"movies" [ "id" ] "title" in
        let special =
          Cfd.make ~id:"special" ~relation:"movies"
            ~lhs:[ ("id", Cfd.Const (Value.String "10")); ("year", Cfd.Wildcard) ]
            ~rhs:("title", Cfd.Wildcard)
        in
        let ds = constraints ~cfds:[ general; special ] () in
        check_has "DL305" ds;
        Alcotest.(check bool) "the special CFD is the redundant one" true
          (List.exists
             (fun d ->
               d.Diagnostic.code = "DL305"
               && d.Diagnostic.subject = Diagnostic.Constraint "special")
             ds);
        let different_rhs = Cfd.fd ~id:"other" ~relation:"movies" [ "id" ] "year" in
        check_lacks "DL305" (constraints ~cfds:[ general; different_rhs ] ()));
    Alcotest.test_case "DL306 flags duplicate constraint ids" `Quick (fun () ->
        let c1 = Cfd.fd ~id:"dup" ~relation:"movies" [ "id" ] "title" in
        let c2 = Cfd.fd ~id:"dup" ~relation:"movies" [ "id" ] "year" in
        check_has "DL306" (constraints ~cfds:[ c1; c2 ] ());
        let c3 = Cfd.fd ~id:"other" ~relation:"movies" [ "id" ] "year" in
        check_lacks "DL306" (constraints ~cfds:[ c1; c3 ] ()));
    Alcotest.test_case "DL307 hints at empty relations" `Quick (fun () ->
        let md =
          Md.make ~id:"m" ~left:"people" ~right:"movies"
            ~compared:[ ("name", "title") ] ~unified:("name", "title") ()
        in
        check_has "DL307" (constraints ~mds:[ md ] ());
        let populated =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "mid") ] ~unified:("title", "mid") ()
        in
        check_lacks "DL307" (constraints ~mds:[ populated ] ()))
  ]

let md_tests =
  [
    Alcotest.test_case "DL310 flags MDs over unknown relations" `Quick
      (fun () ->
        let bad = Md.symmetric ~id:"m" "movies" "nosuch" "title" in
        check_has "DL310" (constraints ~mds:[ bad ] ());
        let good =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("id", "mid") ] ~unified:("id", "mid") ()
        in
        check_lacks "DL310" (constraints ~mds:[ good ] ()));
    Alcotest.test_case "DL311 flags missing MD attributes" `Quick (fun () ->
        let bad =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "nosuchattr") ] ~unified:("id", "mid") ()
        in
        check_has "DL311" (constraints ~mds:[ bad ] ());
        let good =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("id", "mid") ] ~unified:("id", "mid") ()
        in
        check_lacks "DL311" (constraints ~mds:[ good ] ()));
    Alcotest.test_case "DL312 flags non-string MD attributes" `Quick
      (fun () ->
        let bad =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("year", "score") ] ~unified:("id", "mid") ()
        in
        let ds = constraints ~mds:[ bad ] () in
        check_has "DL312" ds;
        let good =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "mid") ] ~unified:("id", "mid") ()
        in
        check_lacks "DL312" (constraints ~mds:[ good ] ()));
    Alcotest.test_case "DL313 flags thresholds outside (0,1]" `Quick (fun () ->
        let bad =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("id", "mid") ] ~unified:("id", "mid") ~threshold:1.5 ()
        in
        check_has "DL313" (constraints ~mds:[ bad ] ());
        let zero =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("id", "mid") ] ~unified:("id", "mid") ~threshold:0.0 ()
        in
        check_has "DL313" (constraints ~mds:[ zero ] ());
        let good =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("id", "mid") ] ~unified:("id", "mid") ~threshold:0.6 ()
        in
        check_lacks "DL313" (constraints ~mds:[ good ] ()));
    Alcotest.test_case "DL314 flags MD interaction cycles" `Quick (fun () ->
        let m1 =
          Md.make ~id:"m1" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "mid") ] ~unified:("id", "mid") ()
        in
        let m2 =
          Md.make ~id:"m2" ~left:"movies" ~right:"ratings"
            ~compared:[ ("id", "mid") ] ~unified:("title", "mid") ()
        in
        let ds = constraints ~mds:[ m1; m2 ] () in
        check_has "DL314" ds;
        (* A symmetric MD re-triggering itself is the normal idempotent
           merge semantics, not a cycle. *)
        let sym =
          Md.make ~id:"m" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "mid") ] ~unified:("title", "mid") ()
        in
        check_lacks "DL314" (constraints ~mds:[ sym ] ()));
  ]

let analyzer_tests =
  [
    Alcotest.test_case "clean paper-style inputs produce no diagnostics"
      `Quick (fun () ->
        let db = fixture_db () in
        let mds =
          [
            Md.make ~id:"m" ~left:"movies" ~right:"ratings"
              ~compared:[ ("id", "mid") ] ~unified:("id", "mid") ();
          ]
        in
        let cfds = [ Cfd.fd ~id:"c" ~relation:"movies" [ "id" ] "title" ] in
        let ds = Analyzer.preflight db ~mds ~cfds [] in
        Alcotest.(check (list string)) "no diagnostics" [] (codes ds));
    Alcotest.test_case "reject_on_errors raises only on errors" `Quick
      (fun () ->
        let warning =
          Diagnostic.warning ~code:"DL999" ~subject:Diagnostic.General "w"
        in
        Analyzer.reject_on_errors [ warning ];
        let error =
          Diagnostic.error ~code:"DL999" ~subject:Diagnostic.General "e"
        in
        Alcotest.(check bool) "raises" true
          (try
             Analyzer.reject_on_errors [ warning; error ];
             false
           with Analyzer.Rejected ds -> List.length ds = 2));
    Alcotest.test_case "JSON rendering escapes and sorts" `Quick (fun () ->
        let ds =
          [
            Diagnostic.hint ~code:"DL307" ~subject:Diagnostic.General "later";
            Diagnostic.error ~code:"DL304"
              ~subject:(Diagnostic.Relation "movies")
              ~witness:"say \"hi\"\n" "first";
          ]
        in
        let json = Diagnostic.report_to_json ds in
        Alcotest.(check bool) "escaped quote" true
          (contains {|say \"hi\"\n|} json
           && contains {|"code":"DL304"|} json
           &&
           (* errors sort before hints *)
           let i304 = ref 0 and i307 = ref 0 in
           String.iteri
             (fun i c ->
               if c = '3' && i + 3 <= String.length json then begin
                 if String.sub json i 3 = "304" && !i304 = 0 then i304 := i;
                 if String.sub json i 3 = "307" && !i307 = 0 then i307 := i
               end)
             json;
           !i304 < !i307));
  ]

let learner_tests =
  let learning_context ~allow_dirty =
    let db = fixture_db () in
    let target = Schema.string_attrs "target" [ "id" ] in
    let config =
      { (Dlearn_core.Config.default ~target) with
        Dlearn_core.Config.allow_dirty_constraints = allow_dirty }
    in
    let bad_cfds =
      [
        Cfd.make ~id:"phi1" ~relation:"movies"
          ~lhs:[ ("id", Cfd.Wildcard) ]
          ~rhs:("title", Cfd.Const (Value.String "b1"));
        Cfd.make ~id:"phi2" ~relation:"movies"
          ~lhs:[ ("id", Cfd.Wildcard) ]
          ~rhs:("title", Cfd.Const (Value.String "b2"));
      ]
    in
    Dlearn_core.Context.create config db [] bad_cfds
  in
  [
    Alcotest.test_case "learner preflight rejects unsatisfiable CFDs" `Quick
      (fun () ->
        let ctx = learning_context ~allow_dirty:false in
        Alcotest.(check bool) "raises Rejected" true
          (try
             Dlearn_core.Learner.preflight ctx;
             false
           with Analyzer.Rejected ds -> Diagnostic.has_errors ds));
    Alcotest.test_case "allow_dirty_constraints skips the preflight" `Quick
      (fun () ->
        let ctx = learning_context ~allow_dirty:true in
        Dlearn_core.Learner.preflight ctx);
  ]

let () =
  Alcotest.run "analysis"
    [
      ("clause lints", clause_tests);
      ("simplifiable clauses", simplifiable_tests);
      ("schema typecheck", schema_tests);
      ("cfd analysis", cfd_tests);
      ("md analysis", md_tests);
      ("analyzer", analyzer_tests);
      ("learner preflight", learner_tests);
    ]
