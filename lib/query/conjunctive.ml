open Dlearn_relation
open Dlearn_logic

type oracle = {
  similar : Value.t -> Value.t -> bool;
}

let oracle_of_spec spec =
  { similar = (fun a b -> Dlearn_constraints.Md.similar spec a b) }

(* A binding environment: variable name -> value. *)
module Env = Map.Make (String)

let term_value env = function
  | Term.Const v -> Some v
  | Term.Var x -> Env.find_opt x env

let bind env x v =
  match Env.find_opt x env with
  | Some v' -> if Value.equal v v' then Some env else None
  | None -> Some (Env.add x v env)

let unify_tuple env args tuple =
  let n = Array.length args in
  let rec go env i =
    if i >= n then Some env
    else
      match args.(i) with
      | Term.Const v ->
          if Value.equal v (Tuple.get tuple i) then go env (i + 1) else None
      | Term.Var x -> (
          match bind env x (Tuple.get tuple i) with
          | Some env' -> go env' (i + 1)
          | None -> None)
  in
  go env 0

(* Check a restriction literal; [`Unknown] when a side is unbound. *)
let check_restriction oracle env = function
  | Literal.Sim (a, b) -> (
      match term_value env a, term_value env b with
      | Some va, Some vb ->
          if Value.equal va vb || oracle.similar va vb then `Sat else `Unsat
      | _ -> `Unknown)
  | Literal.Eq (a, b) -> (
      match term_value env a, term_value env b with
      | Some va, Some vb -> if Value.equal va vb then `Sat else `Unsat
      | _ -> `Unknown)
  | Literal.Neq (a, b) -> (
      match term_value env a, term_value env b with
      | Some va, Some vb -> if Value.equal va vb then `Unsat else `Sat
      | _ -> `Unknown)
  | Literal.Rel _ | Literal.Repair _ -> `Unknown

(* One-sided Eq propagation: Eq(x, t) with one side bound binds the other. *)
let propagate_eq env = function
  | Literal.Eq (Term.Var x, t) when Env.mem x env = false -> (
      match term_value env t with
      | Some v -> bind env x v
      | None -> Some env)
  | Literal.Eq (t, Term.Var x) when Env.mem x env = false -> (
      match term_value env t with
      | Some v -> bind env x v
      | None -> Some env)
  | _ -> Some env

let bound_positions env args =
  let bound = ref [] in
  Array.iteri
    (fun i t ->
      match term_value env t with
      | Some v -> bound := (i, v) :: !bound
      | None -> ())
    args;
  !bound

(* Enumerate candidate tuples for one atom under the environment: use the
   most selective bound position's index, or scan the relation when
   nothing is bound. *)
let atom_candidates db env pred args =
  let relation =
    match Database.find_opt db pred with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Conjunctive: unknown relation %s" pred)
  in
  if Array.length args <> Schema.arity (Relation.schema relation) then
    invalid_arg (Printf.sprintf "Conjunctive: arity mismatch on %s" pred);
  match bound_positions env args with
  | [] -> Relation.fold (fun _ t acc -> t :: acc) relation []
  | bound ->
      let best_pos, best_v, _ =
        List.fold_left
          (fun (bp, bv, bn) (pos, v) ->
            let n = List.length (Relation.select_eq relation pos v) in
            if n < bn then (pos, v, n) else (bp, bv, bn))
          (-1, Value.Null, max_int) bound
      in
      Relation.select_eq relation best_pos best_v
      |> List.map (Relation.get relation)

let solve ?(node_budget = 1_000_000) db oracle body env0 on_solution =
  let budget = ref node_budget in
  let rec go remaining env =
    if !budget <= 0 then ()
    else begin
      decr budget;
      (* Propagate one-sided equalities, then evaluate decided
         restrictions and drop them. *)
      let env_opt =
        List.fold_left
          (fun acc l ->
            match acc with
            | None -> None
            | Some env -> propagate_eq env l)
          (Some env) remaining
      in
      match env_opt with
      | None -> ()
      | Some env -> (
          let verdict = ref `Continue in
          let remaining =
            List.filter
              (fun l ->
                match l with
                | Literal.Rel _ -> true
                | _ -> (
                    match check_restriction oracle env l with
                    | `Sat -> false
                    | `Unsat ->
                        verdict := `Fail;
                        false
                    | `Unknown -> true))
              remaining
          in
          match !verdict with
          | `Fail -> ()
          | `Continue -> (
              let atoms =
                List.filter (function Literal.Rel _ -> true | _ -> false)
                  remaining
              in
              match atoms with
              | [] ->
                  (* Only undecided restrictions are left: a similarity or
                     inequality over a variable no atom binds. Such clauses
                     are not range-restricted; reject the branch. *)
                  if remaining = [] then on_solution env
              | _ ->
                  (* Most-bound atom first. *)
                  let score = function
                    | Literal.Rel { args; _ } ->
                        -List.length (bound_positions env args)
                    | _ -> max_int
                  in
                  let next =
                    List.fold_left
                      (fun best l ->
                        if score l < score best then l else best)
                      (List.hd atoms) (List.tl atoms)
                  in
                  let rest = List.filter (fun l -> not (l == next)) remaining in
                  (match next with
                  | Literal.Rel { pred; args } ->
                      List.iter
                        (fun tuple ->
                          match unify_tuple env args tuple with
                          | Some env' -> go rest env'
                          | None -> ())
                        (atom_candidates db env pred args)
                  | _ -> assert false)))
    end
  in
  go body env0

let reject_repairs (clause : Clause.t) =
  if Clause.repair_body clause <> [] then
    invalid_arg "Conjunctive: repair literals are not evaluable; repair the clause first"

exception Enough

let answers ?(limit = 1000) db oracle (clause : Clause.t) =
  reject_repairs clause;
  let head_args =
    match clause.Clause.head with
    | Literal.Rel { args; _ } -> args
    | _ -> assert false
  in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let count = ref 0 in
  (try
     solve db oracle clause.Clause.body Env.empty (fun env ->
         let answer =
           Array.map
             (fun t ->
               match term_value env t with Some v -> v | None -> Value.Null)
             head_args
         in
         let key = Tuple.to_string answer in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.add seen key ();
           incr count;
           results := answer :: !results;
           if !count >= limit then raise Enough
         end)
   with Enough -> ());
  List.rev !results

let entails db oracle (clause : Clause.t) example =
  reject_repairs clause;
  let head_args =
    match clause.Clause.head with
    | Literal.Rel { args; _ } -> args
    | _ -> assert false
  in
  if Array.length head_args <> Tuple.arity example then false
  else begin
    let env0 =
      let rec go env i =
        if i >= Array.length head_args then Some env
        else
          match head_args.(i) with
          | Term.Const v ->
              if Value.equal v (Tuple.get example i) then go env (i + 1)
              else None
          | Term.Var x -> (
              match bind env x (Tuple.get example i) with
              | Some env' -> go env' (i + 1)
              | None -> None)
      in
      go Env.empty 0
    in
    match env0 with
    | None -> false
    | Some env0 -> (
        try
          solve db oracle clause.Clause.body env0 (fun _ -> raise Enough);
          false
        with Enough -> true)
  end
