(* Versioned, transactional database core (ROADMAP item 1, modeled on
   project-m36-style snapshot/versioned relations).

   The store owns one {b live} database (the head): relations there are
   append-only between versions. A {b version handle} is an immutable
   [Database.t] of [Relation.snapshot] views minted at commit time —
   O(relations), sharing the live tuple arrays. Transactions buffer
   tuple deltas (inserts and updates) and [commit] applies them under
   the store lock:

   - inserts append to the live relation — snapshots bound their index
     probes by their recorded size, so every older version keeps its
     exact contents for free;
   - updates rebuild the touched relation copy-on-write
     ([Relation.with_tuple]) and swap it into the head — older versions
     keep pointing at the superseded object, which nobody writes again.

   Commit is first-committer-wins on updates: a transaction that updates
   a (relation, id) already updated by a version committed after the
   transaction began conflicts and is rejected (inserts are blind
   appends and always merge). Subscribers observe every committed delta
   list — the cache-invalidation hook the learning context uses to
   re-resolve only affected examples (docs/SERVE.md). *)

type delta =
  | Insert of { rel : string; tuple : Tuple.t }
  | Update of { rel : string; id : int; tuple : Tuple.t; previous : Tuple.t }

type version = { vid : int; db : Database.t }

type t = {
  head : Database.t;
  lock : Mutex.t;
  mutable current : version;
  mutable log : (int * delta list) list; (* newest first *)
  mutable subscribers : (version -> delta list -> unit) list;
}

type txn_state = Open | Committed | Aborted

type txn = {
  store : t;
  base : version;
  mutable writes : delta list; (* reverse buffer order *)
  mutable state : txn_state;
}

type error =
  | Conflict of { rel : string; id : int }
  | Closed

let error_to_string = function
  | Conflict { rel; id } ->
      Printf.sprintf "write-write conflict on %s tuple %d" rel id
  | Closed -> "transaction already committed or aborted"

let of_database db =
  Database.materialize db;
  {
    head = db;
    lock = Mutex.create ();
    current = { vid = 0; db = Database.snapshot db };
    log = [];
    subscribers = [];
  }

let head t = t.head
let version t = Mutex.protect t.lock (fun () -> t.current)
let version_id v = v.vid
let database v = v.db

let subscribe t f =
  Mutex.protect t.lock (fun () -> t.subscribers <- f :: t.subscribers)

let begin_txn t =
  { store = t; base = version t; writes = []; state = Open }

let base txn = txn.base

let check_open txn =
  match txn.state with Open -> Ok () | Committed | Aborted -> Error Closed

let schema_of txn rel =
  (* Arity is validated against the head schema at buffer time so a
     malformed write fails fast, in the caller, not at commit. *)
  Relation.schema (Database.find txn.store.head rel)

let insert txn rel tuple =
  match check_open txn with
  | Error e -> Error e
  | Ok () ->
      if Tuple.arity tuple <> Schema.arity (schema_of txn rel) then
        invalid_arg
          (Printf.sprintf "Vdb.insert: arity %d tuple into %s"
             (Tuple.arity tuple) rel);
      txn.writes <- Insert { rel; tuple } :: txn.writes;
      Ok ()

let update txn rel id tuple =
  match check_open txn with
  | Error e -> Error e
  | Ok () ->
      if Tuple.arity tuple <> Schema.arity (schema_of txn rel) then
        invalid_arg
          (Printf.sprintf "Vdb.update: arity %d tuple into %s"
             (Tuple.arity tuple) rel);
      let base_rel = Database.find txn.base.db rel in
      if id < 0 || id >= Relation.cardinality base_rel then
        invalid_arg (Printf.sprintf "Vdb.update: id %d out of range" id);
      txn.writes <-
        Update { rel; id; tuple; previous = Relation.get base_rel id }
        :: txn.writes;
      Ok ()

let abort txn = txn.state <- Aborted

let conflicts_with_log txn deltas =
  (* Updates committed after the transaction's base version, keyed by
     (rel, id); an intersecting update in [deltas] loses. *)
  let committed_updates =
    List.concat_map
      (fun (vid, ds) ->
        if vid <= txn.base.vid then []
        else
          List.filter_map
            (function
              | Update { rel; id; _ } -> Some (rel, id)
              | Insert _ -> None)
            ds)
      txn.store.log
  in
  List.find_map
    (function
      | Update { rel; id; _ }
        when List.exists (fun (r, i) -> r = rel && i = id) committed_updates
        ->
          Some (rel, id)
      | Update _ | Insert _ -> None)
    deltas

let commit txn =
  match check_open txn with
  | Error e -> Error e
  | Ok () ->
      let t = txn.store in
      let outcome =
        Mutex.protect t.lock (fun () ->
            let deltas = List.rev txn.writes in
            match conflicts_with_log txn deltas with
            | Some (rel, id) ->
                txn.state <- Aborted;
                Error (Conflict { rel; id })
            | None ->
                (* Apply; this cannot raise after the validation above —
                   arities were checked at buffer time and update ids are
                   re-checked against the (only-growing) head. *)
                List.iter
                  (function
                    | Insert { rel; tuple } ->
                        ignore
                          (Relation.insert (Database.find t.head rel) tuple)
                    | Update { rel; id; tuple; _ } ->
                        let live = Database.find t.head rel in
                        Database.replace_relation t.head
                          (Relation.with_tuple live id tuple))
                  deltas;
                let v =
                  { vid = t.current.vid + 1; db = Database.snapshot t.head }
                in
                t.current <- v;
                if deltas <> [] then t.log <- (v.vid, deltas) :: t.log;
                txn.state <- Committed;
                Ok (v, deltas, t.subscribers))
      in
      (* Subscribers run outside the store lock: an invalidation hook may
         itself read the store (deadlock otherwise). The caller holding a
         coarser writer lock (the serve loop does) keeps this ordered
         with respect to other commits. *)
      match outcome with
      | Error e -> Error e
      | Ok (v, deltas, subscribers) ->
          List.iter (fun f -> f v deltas) subscribers;
          Ok v

(* One-shot write helpers for callers without multi-statement needs. *)
let insert_one t rel tuple =
  let txn = begin_txn t in
  match insert txn rel tuple with
  | Error e -> Error e
  | Ok () -> commit txn

let update_one t rel id tuple =
  let txn = begin_txn t in
  match update txn rel id tuple with
  | Error e -> Error e
  | Ok () -> commit txn

let changed_tuples deltas =
  (* Every tuple value a delta touches, old and new — the invalidation
     universe consumers key on. *)
  List.map
    (function
      | Insert { rel; tuple } -> (rel, [ tuple ])
      | Update { rel; tuple; previous; _ } -> (rel, [ tuple; previous ]))
    deltas
