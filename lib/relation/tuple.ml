type t = Value.t array

let make vs = Array.of_list vs
let of_strings ss = Array.of_list (List.map Value.of_string ss)
let arity = Array.length
let get t i = t.(i)

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let rec go i =
    if i >= Array.length a && i >= Array.length b then 0
    else if i >= Array.length a then -1
    else if i >= Array.length b then 1
    else
      match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let project t positions = Array.map (fun i -> t.(i)) positions

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_string t)))

let to_string t = Format.asprintf "%a" pp t
