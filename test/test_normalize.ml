(* The clause-normalization suite (docs/NORMALIZATION.md).

   Clause_norm promises three things: the normalized form is a canonical
   representative (alpha-renaming and body reordering wash out), the
   pipeline is idempotent, and normalization preserves coverage — so the
   learner may swap normalized clauses for raw ones without changing any
   decision. This suite pins all three: unit tests per pass (including
   the engine-soundness guards), QCheck invariance/idempotence over
   random clauses, a coverage-preservation differential over realistic
   bottom/ARMG clauses, and a 500-case learn differential with
   [Config.normalize_clauses] on vs off that also accounts solve work —
   normalization must never test more coverage verdicts than the raw
   path, and alpha-variant rescoring must hit the cache outright. *)

open Dlearn_relation
open Dlearn_constraints
open Dlearn_logic
open Dlearn_core
module Obs = Dlearn_obs.Obs

let v = Term.var
let s = Term.str
let rel = Literal.rel

let clause_eq = Alcotest.testable Clause.pp Clause.equal

(* ------------------------------------------------------------------ *)
(* Pass unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let head = rel "h" [ v "x" ]
let base = rel "p" [ v "x"; v "t" ]

let norm c = Clause_norm.normalize c

let unit_tests =
  [
    Alcotest.test_case "x = x is dropped" `Quick (fun () ->
        Alcotest.check clause_eq "same form"
          (norm (Clause.make ~head [ base ]))
          (norm (Clause.make ~head [ base; Literal.Eq (v "t", v "t") ])));
    Alcotest.test_case "x ~ x drops only when generatively bound" `Quick
      (fun () ->
        (* t is a schema-atom argument: the engines bind it, reflexivity
           applies, the literal goes. *)
        Alcotest.check clause_eq "bound: dropped"
          (norm (Clause.make ~head [ base ]))
          (norm (Clause.make ~head [ base; Literal.Sim (v "t", v "t") ]));
        (* u is bound by nothing: u ~ u must match an explicit target
           similarity edge, so it stays. *)
        let kept = norm (Clause.make ~head [ base; Literal.Sim (v "u", v "u") ]) in
        Alcotest.(check int) "unbound: kept" 2 (Clause.body_size kept);
        (* constants are ground from the start *)
        Alcotest.check clause_eq "const: dropped"
          (norm (Clause.make ~head [ base ]))
          (norm (Clause.make ~head [ base; Literal.Sim (s "a", s "a") ])));
    Alcotest.test_case "x != x sends the clause to the shared falsum form"
      `Quick (fun () ->
        let f1 = Clause.make ~head [ base; Literal.Neq (v "t", v "t") ] in
        let f2 =
          Clause.make ~head
            [ rel "q" [ v "a"; v "b"; v "c" ]; Literal.Neq (v "b", v "b") ]
        in
        Alcotest.(check bool) "detected" true (Clause_norm.is_trivially_false f1);
        (* same head shape: both collapse to one cover-cache key *)
        Alcotest.check clause_eq "shared form" (norm f1) (norm f2);
        Alcotest.(check int) "falsum body" 1 (Clause.body_size (norm f1)));
    Alcotest.test_case "distinct-constant checks are kept" `Quick (fun () ->
        (* the closure can merge constants, so these are not static *)
        let c = Clause.make ~head [ base; Literal.Eq (s "a", s "b") ] in
        Alcotest.(check int) "kept" 2 (Clause.body_size (norm c));
        let n = Clause.make ~head [ base; Literal.Neq (s "a", s "b") ] in
        Alcotest.(check bool) "not falsum" false (Clause_norm.is_trivially_false n);
        Alcotest.(check int) "kept too" 2 (Clause.body_size (norm n)));
    Alcotest.test_case "trivially-true repair condition atoms are deleted"
      `Quick (fun () ->
        let repair cond =
          Literal.Repair
            {
              Literal.origin = Literal.From_md "m";
              group = 0;
              cond;
              subject = v "t";
              replacement = v "r";
              drops = [];
            }
        in
        let keepme = Cond.Cneq (v "t", v "r") in
        Alcotest.check clause_eq "Ceq(t,t) removed"
          (norm (Clause.make ~head [ base; repair [ keepme ] ]))
          (norm
             (Clause.make ~head
                [ base; repair [ Cond.Ceq (v "t", v "t"); keepme ] ])));
    Alcotest.test_case "duplicates merge" `Quick (fun () ->
        Alcotest.check clause_eq "merged"
          (norm (Clause.make ~head [ base ]))
          (norm (Clause.make ~head [ base; base; base ])));
    Alcotest.test_case "condensation drops self-subsumed literals" `Quick
      (fun () ->
        (* p(x,a) maps onto p(x,t) through its local a *)
        Alcotest.check clause_eq "condensed"
          (norm (Clause.make ~head [ base ]))
          (norm (Clause.make ~head [ base; rel "p" [ v "x"; v "a" ] ]));
        (* shared variables block the drop *)
        let c =
          Clause.make ~head [ base; rel "p" [ v "t"; v "x" ] ]
        in
        Alcotest.(check int) "no locals: kept" 2 (Clause.body_size (norm c)));
    Alcotest.test_case "drops-protected literals survive every pass" `Quick
      (fun () ->
        let eq = Literal.Eq (v "t", v "t") in
        let repair =
          Literal.Repair
            {
              Literal.origin = Literal.From_cfd "c";
              group = 0;
              cond = [];
              subject = v "t";
              replacement = v "r";
              drops = [ eq ];
            }
        in
        let c = Clause.make ~head [ base; repair; eq ] in
        (* the Eq literal is recorded in the repair's drops list: repair
           application deletes it by Literal.equal, so normalization must
           keep the body copy byte-compatible *)
        Alcotest.(check int) "kept" 3 (Clause.body_size (norm c)));
    Alcotest.test_case "normalize is invariant on its own output" `Quick
      (fun () ->
        let c =
          Clause.make ~head
            [
              base;
              rel "q" [ v "t"; v "z" ];
              Literal.Sim (v "z", v "w");
              Literal.Eq (v "x", v "x");
            ]
        in
        let n1 = norm c in
        Alcotest.check clause_eq "idempotent" n1 (norm n1));
    Alcotest.test_case "dedup_target strips exact duplicates only" `Quick
      (fun () ->
        let ground =
          Clause.make ~head
            [ base; base; Literal.Eq (v "t", v "t"); Literal.Eq (v "t", v "t") ]
        in
        let d = Clause_norm.dedup_target ground in
        (* duplicates go; the tautological Eq stays — target literals are
           closure data, not checks *)
        Alcotest.(check int) "deduped" 2 (Clause.body_size d);
        Alcotest.check clause_eq "order preserved"
          (Clause.make ~head [ base; Literal.Eq (v "t", v "t") ])
          d);
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: invariance and idempotence                                  *)
(* ------------------------------------------------------------------ *)

let pool = [| "a"; "b"; "c"; "d"; "e"; "f" |]

let term_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> v pool.(i)) (0 -- (Array.length pool - 1)));
        (1, map s (oneofl [ "k1"; "k2" ]));
      ])

(* Repair conditions and drops are deterministic functions of the fields
   [Literal.compare] looks at: the comparator ignores [cond], so two
   random repairs that compare equal but carried different conditions
   would make [sort_uniq]'s survivor depend on body order — a
   pre-existing property of [Clause.canonical] the generator must not
   trip over. *)
let repair_gen =
  QCheck.Gen.(
    let* subject = term_gen in
    let* replacement = term_gen in
    let* group = 0 -- 2 in
    let cond =
      match group with
      | 0 -> []
      | 1 -> [ Cond.Cneq (subject, replacement) ]
      | _ -> [ Cond.Ceq (subject, subject); Cond.Csim (subject, replacement) ]
    in
    let drops = if group = 1 then [ Literal.Eq (subject, replacement) ] else [] in
    return
      (Literal.Repair
         { Literal.origin = Literal.From_md "m"; group; cond; subject;
           replacement; drops }))

let literal_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          let* p = oneofl [ ("p", 2); ("q", 3); ("r", 1) ] in
          let* args = list_repeat (snd p) term_gen in
          return (rel (fst p) args) );
        (1, map2 (fun a b -> Literal.Sim (a, b)) term_gen term_gen);
        (1, map2 (fun a b -> Literal.Eq (a, b)) term_gen term_gen);
        (1, map2 (fun a b -> Literal.Neq (a, b)) term_gen term_gen);
        (1, repair_gen);
      ])

let clause_gen =
  QCheck.Gen.(
    let* hv = 0 -- (Array.length pool - 1) in
    let* body = list_size (1 -- 8) literal_gen in
    return (Clause.make ~head:(rel "h" [ v pool.(hv) ]) body))

let clause_print c = Clause.to_string c

(* A variant: an alpha-renaming (a permutation of the variable pool) plus
   a permutation of the body literals. *)
let variant_gen =
  QCheck.Gen.(
    let* c = clause_gen in
    let perm = Array.copy pool in
    let* () = shuffle_a perm in
    let* body = shuffle_l c.Clause.body in
    let rename t =
      match t with
      | Term.Var name ->
          let rec find i =
            if i >= Array.length pool then t
            else if String.equal pool.(i) name then Term.var perm.(i)
            else find (i + 1)
          in
          find 0
      | Term.Const _ -> t
    in
    return (c, Clause.map_terms rename { c with Clause.body }))

let fallbacks = Obs.counter "normalize.rename_fallbacks"

(* The individualization budget is a documented escape hatch: when it
   trips, the representative is still fixed and coverage-sound, just not
   alpha-invariant. The properties skip those (counted) cases. *)
let without_fallback f =
  let before = Obs.value fallbacks in
  let r = f () in
  if Obs.value fallbacks > before then None else Some r

let invariance_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"alpha-renaming + body permutation normalize byte-identically"
       ~count:1000
       (QCheck.make
          ~print:(fun (c, c') ->
            clause_print c ^ "\n  variant: " ^ clause_print c')
          variant_gen)
       (fun (c, c') ->
         match without_fallback (fun () -> (norm c, norm c')) with
         | None -> true
         | Some (n, n') ->
             if Clause.equal n n' then true
             else
               QCheck.Test.fail_reportf
                 "normal forms differ:\n  %s\n  %s" (clause_print n)
                 (clause_print n')))

let idempotence_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"normalize (normalize c) = normalize c"
       ~count:1000
       (QCheck.make ~print:clause_print clause_gen)
       (fun c ->
         match without_fallback (fun () -> norm c) with
         | None -> true
         | Some n ->
             if Clause.equal n (norm n) then true
             else
               QCheck.Test.fail_reportf "not idempotent:\n  %s\n  %s"
                 (clause_print n)
                 (clause_print (norm n))))

(* ------------------------------------------------------------------ *)
(* Toy workload (mirrors test_incremental.ml)                          *)
(* ------------------------------------------------------------------ *)

let sv x = Value.String x

let toy_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.string_attrs "imdb_movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ];
      Tuple.of_strings [ "m3"; "The Orphanage (2007)"; "y2007" ];
      Tuple.of_strings [ "m4"; "Alien (1979)"; "y1979" ];
    ];
  let genres =
    Database.create_relation db
      (Schema.string_attrs "imdb_genres" [ "id"; "genre" ])
  in
  Relation.insert_all genres
    [
      Tuple.of_strings [ "m1"; "comedy" ];
      Tuple.of_strings [ "m2"; "comedy" ];
      Tuple.of_strings [ "m3"; "drama" ];
      Tuple.of_strings [ "m4"; "scifi" ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.string_attrs "bom_ratings" [ "title"; "rating" ])
  in
  Relation.insert_all ratings
    [
      Tuple.of_strings [ "Superbad [2007]"; "R" ];
      Tuple.of_strings [ "Zoolander [2001]"; "PG-13" ];
      Tuple.of_strings [ "The Orphanage [2007]"; "R" ];
      Tuple.of_strings [ "Alien [1979]"; "R" ];
    ];
  let locale =
    Database.create_relation db
      (Schema.string_attrs "locale" [ "id"; "language"; "country" ])
  in
  Relation.insert_all locale
    [
      Tuple.of_strings [ "m1"; "English"; "USA" ];
      Tuple.of_strings [ "m1"; "English"; "Ireland" ];
      Tuple.of_strings [ "m2"; "English"; "USA" ];
    ];
  db

let phi =
  Cfd.make ~id:"phi" ~relation:"locale"
    ~lhs:[ ("id", Cfd.Wildcard); ("language", Cfd.Const (sv "English")) ]
    ~rhs:("country", Cfd.Wildcard)

let md_title =
  Md.make ~id:"title_md" ~left:"imdb_movies" ~right:"bom_ratings"
    ~compared:[ ("title", "title") ] ~unified:("title", "title") ()

let target = Schema.string_attrs "restricted" [ "id" ]

let toy_config ~normalize =
  {
    (Config.default ~target) with
    Config.constant_attrs =
      [ ("bom_ratings", "rating"); ("imdb_genres", "genre") ];
    sim = { Md.default_sim with Md.threshold = 0.6 };
    min_pos = 2;
    sample_positives = 4;
    num_domains = 1;
    incremental_coverage = true;
    normalize_clauses = normalize;
    allow_dirty_constraints = true;
  }

let make_ctx ~normalize =
  Context.create (toy_config ~normalize) (toy_db ()) [ md_title ] [ phi ]

let ex id = Tuple.of_strings [ id ]
let examples = [| ex "m1"; ex "m2"; ex "m3"; ex "m4" |]

(* ------------------------------------------------------------------ *)
(* Coverage preservation: normalized clause ≡ raw clause               *)
(* ------------------------------------------------------------------ *)

(* Prepared in a normalize-off context, so both sides are tested exactly
   as given: this checks the pipeline's rewrites against the real
   engines over repair-laden bottom/ARMG clauses, not just the climb. *)
let coverage_preservation_test =
  let ctx = lazy (make_ctx ~normalize:false) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"coverage of the normalized clause equals the raw clause"
       ~count:60
       QCheck.(
         make
           ~print:(fun (i, js) ->
             Printf.sprintf "seed=%d others=%s" i
               (String.concat ","
                  (List.map string_of_int js)))
           Gen.(pair (0 -- 3) (list_size (0 -- 3) (0 -- 3))))
       (fun (i, js) ->
         let ctx = Lazy.force ctx in
         let seed = examples.(i) in
         let bottom = Bottom_clause.build ctx Bottom_clause.Variable seed in
         let clauses =
           bottom
           :: List.filter_map
                (fun j -> Generalization.armg ctx bottom examples.(j))
                js
         in
         let universe = Array.to_list examples in
         List.for_all
           (fun clause ->
             let raw =
               Coverage.coverage ctx
                 (Coverage.prepare ctx clause)
                 ~pos:universe ~neg:universe
             in
             let normed =
               Coverage.coverage ctx
                 (Coverage.prepare ctx (Clause_norm.normalize clause))
                 ~pos:universe ~neg:universe
             in
             if raw <> normed then
               QCheck.Test.fail_reportf
                 "coverage changed: raw (%d, %d) <> normalized (%d, %d)\n%s"
                 (fst raw) (snd raw) (fst normed) (snd normed)
                 (Clause.to_string clause)
             else true)
           clauses))

(* ------------------------------------------------------------------ *)
(* Learn differential: normalize-on ≡ normalize-off, fewer solves      *)
(* ------------------------------------------------------------------ *)

(* Contexts persist across all QCheck cases (ground caches warm up as in
   a real run); the coverage.tested counter is global, so each learn is
   bracketed by snapshots to attribute verdict work per context. *)
let ctx_on = lazy (make_ctx ~normalize:true)
let ctx_off = lazy (make_ctx ~normalize:false)
let tested_on = ref 0
let tested_off = ref 0

let outcome acc ctx ~pos ~neg =
  let tested = (Lazy.force ctx).Context.cover_stats.Context.tested in
  let before = Obs.value tested in
  let r = Learner.learn (Lazy.force ctx) ~pos ~neg in
  acc := !acc + (Obs.value tested - before);
  ( Definition.to_string r.Learner.definition,
    List.map
      (fun st -> (st.Learner.pos_covered, st.Learner.neg_covered))
      r.Learner.stats )

let example_list_gen =
  QCheck.Gen.(list_size (0 -- 6) (map (fun i -> examples.(i)) (0 -- 3)))

let learn_differential_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"learn: normalize-on equals normalize-off (500 cases)"
       ~count:500
       (QCheck.make
          ~print:(fun (pos, neg) ->
            Printf.sprintf "pos=[%s] neg=[%s]"
              (String.concat ";" (List.map Tuple.to_string pos))
              (String.concat ";" (List.map Tuple.to_string neg)))
          QCheck.Gen.(pair example_list_gen example_list_gen))
       (fun (pos, neg) ->
         let def_off, stats_off = outcome tested_off ctx_off ~pos ~neg in
         let def_on, stats_on = outcome tested_on ctx_on ~pos ~neg in
         if def_on <> def_off then
           QCheck.Test.fail_reportf
             "definition diverged:\n--- normalize off\n%s\n--- normalize on\n%s"
             def_off def_on
         else if stats_on <> stats_off then
           QCheck.Test.fail_reportf "per-clause stats diverged"
         else true))

(* Runs after the differential (Alcotest executes the list in order). *)
let solve_budget_test =
  Alcotest.test_case "normalization never tests more coverage verdicts"
    `Quick (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "tested on=%d <= off=%d" !tested_on !tested_off)
        true
        (!tested_on <= !tested_off))

(* Deterministic strict improvement: rescoring an alpha-renamed variant
   is a pure cache hit with normalization on, and a full recompute off. *)
let alpha_cache_test =
  Alcotest.test_case "alpha-variant rescoring hits the cache" `Quick
    (fun () ->
      let universe = Array.to_list examples in
      let score ctx clause =
        let tested = ctx.Context.cover_stats.Context.tested in
        let before = Obs.value tested in
        ignore
          (Coverage.coverage ctx
             (Coverage.prepare ctx clause)
             ~pos:universe ~neg:universe);
        Obs.value tested - before
      in
      let rename c =
        Clause.map_terms
          (function
            | Term.Var name -> Term.var ("zz_" ^ name)
            | t -> t)
          c
      in
      let run ctx =
        let bottom =
          Bottom_clause.build ctx Bottom_clause.Variable (ex "m1")
        in
        ignore (score ctx bottom);
        score ctx (rename bottom)
      in
      let on_delta = run (make_ctx ~normalize:true) in
      let off_delta = run (make_ctx ~normalize:false) in
      Alcotest.(check int) "on: all verdicts cached" 0 on_delta;
      Alcotest.(check bool)
        (Printf.sprintf "off: recomputes (%d verdicts)" off_delta)
        true (off_delta > 0))

let () =
  Alcotest.run "normalize"
    [
      ("passes", unit_tests);
      ("canonical form", [ invariance_test; idempotence_test ]);
      ("coverage", [ coverage_preservation_test ]);
      ( "differential",
        [ learn_differential_test; solve_budget_test; alpha_cache_test ] );
    ]
