open Dlearn_relation

type pattern =
  | Const of Value.t
  | Wildcard

type t = {
  id : string;
  relation : string;
  lhs : (string * pattern) list;
  rhs : string * pattern;
}

let make ~id ~relation ~lhs ~rhs =
  if lhs = [] then invalid_arg "Cfd.make: empty left-hand side";
  let rhs_attr = fst rhs in
  if List.mem_assoc rhs_attr lhs then
    invalid_arg
      (Printf.sprintf "Cfd.make: %s appears on both sides of %s" rhs_attr id);
  { id; relation; lhs; rhs }

let fd ~id ~relation xs a =
  make ~id ~relation
    ~lhs:(List.map (fun x -> (x, Wildcard)) xs)
    ~rhs:(a, Wildcard)

let matches p v =
  match p with Wildcard -> true | Const c -> Value.equal c v

let position_exn fn t schema attr =
  match Schema.position schema attr with
  | pos -> pos
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf
           "Cfd.%s: CFD %s references attribute %s, which relation %s \
            (schema %s) does not have"
           fn t.id attr t.relation (Schema.name schema))

let lhs_positions t schema =
  List.map
    (fun (attr, p) -> (position_exn "lhs_positions" t schema attr, p))
    t.lhs

let rhs_position t schema =
  let attr, p = t.rhs in
  (position_exn "rhs_position" t schema attr, p)

let pair_violates t schema t1 t2 =
  let lhs = lhs_positions t schema in
  let rhs_pos, rhs_pat = rhs_position t schema in
  let lhs_agrees_and_matches =
    List.for_all
      (fun (pos, pat) ->
        Value.equal (Tuple.get t1 pos) (Tuple.get t2 pos)
        && matches pat (Tuple.get t1 pos))
      lhs
  in
  lhs_agrees_and_matches
  && not
       (Value.equal (Tuple.get t1 rhs_pos) (Tuple.get t2 rhs_pos)
       && matches rhs_pat (Tuple.get t1 rhs_pos))

let pattern_to_string = function
  | Wildcard -> "-"
  | Const c -> Value.to_string c

let to_string t =
  let lhs_attrs = String.concat ", " (List.map fst t.lhs) in
  let lhs_pats = String.concat ", " (List.map (fun (_, p) -> pattern_to_string p) t.lhs) in
  let rhs_attr, rhs_pat = t.rhs in
  Printf.sprintf "%s: %s(%s -> %s, (%s || %s))" t.id t.relation lhs_attrs
    rhs_attr lhs_pats (pattern_to_string rhs_pat)

let pp fmt t = Format.pp_print_string fmt (to_string t)
