open Dlearn_relation
open Dlearn_logic

let src = Logs.Src.create "dlearn.learner"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Dlearn_obs.Obs

type clause_stats = {
  clause : Clause.t;
  pos_covered : int;
  neg_covered : int;
}

type result = {
  definition : Definition.t;
  stats : clause_stats list;
  seconds : float;
  seeds_skipped : int;
}

let sample rng n l =
  if List.length l <= n then l
  else begin
    let arr = Array.of_list l in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.to_list (Array.sub arr 0 n)
  end

(* Hill-climb: repeatedly generalise against sampled positives, keeping the
   best-scoring candidate, until the score stops improving (§4.2).

   With [Config.incremental_coverage] on, the parent clause's covered
   positives thread through the climb: ARMG only drops body literals, so a
   candidate covers everything its parent covers and only the residue is
   tested; the negative sweep stops early once a candidate provably cannot
   reach the best score seen in the batch (see docs/COVERAGE.md — pruned
   candidates can never beat or tie the batch winner, so the climb's
   decisions are identical to the from-scratch path). *)
let refine ctx ~uncovered ~neg clause =
  let config = ctx.Context.config in
  let incremental = config.Config.incremental_coverage in
  (* Candidates are scored against a bounded sample of the negatives; the
     acceptance decision below re-scores the winner on the full set. *)
  let neg = sample ctx.Context.rng config.Config.climb_neg_cap neg in
  let rec climb clause prepared parent_cov (p, n) =
    let score = p - n in
    let sample_pos =
      sample ctx.Context.rng config.Config.sample_positives uncovered
    in
    let candidates =
      (* ARMG candidates are independent per sampled positive (the ground
         entry, subsumption target and beam search are all read-only over
         the context), so generation fans out across the pool. [map_list]
         preserves input order, so the arrival indexes — and therefore
         every downstream tie-break — match the sequential path. *)
      let raw =
        Obs.span "learn.armg" (fun () ->
            Dlearn_parallel.Pool.map_list (Context.pool ctx)
              (fun e' -> Generalization.armg ctx clause e')
              sample_pos
            |> List.filter_map Fun.id
            |> List.filter (fun c -> not (Clause.equal c clause)))
      in
      (* Distinct sampled positives often yield the same generalisation;
         score each candidate once — dedup on the prepared record's
         memoized canonical form instead of recomputing it. With
         normalization on the key is the normalized clause, so whole
         alpha-classes merge into one solve; the retained representative
         is the member the full sort below would rank first (smallest
         body, then arrival), carrying its own arrival index, so the
         climb picks the same winner whether or not its class mates were
         scored. *)
      let dedup = Cover_set.Clause_tbl.create 16 in
      List.iteri
        (fun idx c ->
          let prep = Coverage.prepare ctx c in
          let key = Dlearn_parallel.Memo.force prep.Coverage.canon in
          match Cover_set.Clause_tbl.find_opt dedup key with
          | None -> Cover_set.Clause_tbl.add dedup key (c, prep, idx)
          | Some (c0, _, _) ->
              if Clause.body_size c < Clause.body_size c0 then
                Cover_set.Clause_tbl.replace dedup key (c, prep, idx))
        raw;
      Cover_set.Clause_tbl.fold (fun _ cand acc -> cand :: acc) dedup []
      |> List.sort (fun (_, _, i1) (_, _, i2) -> Int.compare i1 i2)
    in
    (* Candidates are scored across the domain pool; a worker's nested
       coverage fan-out runs sequentially in place, so the parallelism is
       one level deep whichever side has more work. Scores and ordering
       are identical to the sequential path. *)
    let bound = Atomic.make score in
    let scored =
      Obs.span "learn.score_batch"
        ~args:[ ("candidates", string_of_int (List.length candidates)) ]
        (fun () ->
          Dlearn_parallel.Pool.map_list (Context.pool ctx)
            (fun (c, prep, idx) ->
              if incremental then
                let cp, cn, cov, _complete =
                  Coverage.score_candidate ctx prep ~assume:parent_cov
                    ~pos:uncovered ~neg ~bound
                in
                (c, prep, idx, cov, (cp, cn))
              else
                let cov = Coverage.coverage ctx prep ~pos:uncovered ~neg in
                (c, prep, idx, Coverage.Bitset.empty, cov))
            candidates)
    in
    (* Higher score first; on ties the smaller clause — the more general
       one — so the climb keeps shedding redundant literals even when the
       training score has saturated. Last tie-break: ARMG arrival order,
       i.e. the order the pre-dedup stable sort used. *)
    match
      List.stable_sort
        (fun (c1, _, i1, _, (p1, n1)) (c2, _, i2, _, (p2, n2)) ->
          match Int.compare (p2 - n2) (p1 - n1) with
          | 0 -> (
              match
                Int.compare (Clause.body_size c1) (Clause.body_size c2)
              with
              | 0 -> Int.compare i1 i2
              | c -> c)
          | c -> c)
        scored
    with
    | (best, best_prep, _, best_cov, (bp, bn)) :: _
      when bp - bn > score
           || (bp - bn = score && Clause.body_size best < Clause.body_size clause)
      ->
        Log.debug (fun m ->
            m "refined clause: score %d -> %d (%d literals)" score (bp - bn)
              (Clause.body_size best));
        climb best best_prep best_cov (bp, bn)
    | _ -> (clause, prepared, (p, n))
  in
  let prepared = Coverage.prepare ctx clause in
  (* The bottom clause covers its seed and (being maximally specific)
     essentially nothing else (Prop. 4.3); starting the climb from score
     (1, 0) avoids an expensive full sweep with the raw clause. The empty
     inherited set is the matching under-approximation: first-round
     candidates test every positive, exactly like the from-scratch path. *)
  Obs.span "learn.refine" (fun () ->
      climb clause prepared Coverage.Bitset.empty (1, 0))

(* Static preflight (§3–§4 preconditions): the covering loop below only
   makes sense over satisfiable CFD sets and well-formed MDs, so check
   them before building the first bottom clause instead of dying
   mid-epoch on a malformed constraint. *)
let preflight ctx =
  let config = ctx.Context.config in
  if not config.Config.allow_dirty_constraints then begin
    let diagnostics =
      Dlearn_analysis.Analyzer.check_constraints ctx.Context.db
        ~mds:ctx.Context.mds ~cfds:ctx.Context.cfds
    in
    if Dlearn_analysis.Diagnostic.has_errors diagnostics then begin
      Log.err (fun m ->
          m "constraint preflight failed:@,%a"
            Dlearn_analysis.Diagnostic.pp_report diagnostics);
      raise (Dlearn_analysis.Analyzer.Rejected diagnostics)
    end
  end

let learn ctx ~pos ~neg =
  Obs.span "learn"
    ~args:
      [
        ("pos", string_of_int (List.length pos));
        ("neg", string_of_int (List.length neg));
      ]
  @@ fun () ->
  preflight ctx;
  let config = ctx.Context.config in
  let target = Schema.name config.Config.target in
  let started = Unix.gettimeofday () in
  let rec cover uncovered acc skipped =
    match uncovered with
    | [] -> (List.rev acc, skipped)
    | seed :: rest ->
        if List.length acc >= config.Config.max_clauses then
          (List.rev acc, skipped + List.length uncovered)
        else begin
          let bottom =
            Obs.span "learn.bottom_clause" (fun () ->
                Bottom_clause.build ctx Bottom_clause.Variable seed)
          in
          Log.info (fun m ->
              m "seed %s: bottom clause with %d literals"
                (Tuple.to_string seed) (Clause.body_size bottom));
          let clause, prepared, (p, _) =
            refine ctx ~uncovered ~neg bottom
          in
          (* Re-score on the full negative set for the acceptance test; the
             incremental path reuses the winner's climb-time verdicts on
             the sampled negatives and only tests the rest. *)
          let n =
            if config.Config.incremental_coverage then
              snd (Coverage.coverage ctx prepared ~pos:[] ~neg)
            else
              Dlearn_parallel.Pool.filter_count_list (Context.pool ctx)
                (Coverage.covers_negative ctx prepared)
                neg
          in
          let precision =
            if p + n = 0 then 0.0 else float_of_int p /. float_of_int (p + n)
          in
          if p >= config.Config.min_pos && precision >= config.Config.min_precision
          then begin
            let still_uncovered =
              if config.Config.incremental_coverage then begin
                (* The winner was scored over [uncovered] ⊇ [rest], so
                   these are almost all cache hits. *)
                let pbits, _ =
                  Coverage.coverage_sets ctx prepared ~pos:rest ~neg:[]
                in
                List.filter
                  (fun e ->
                    not (Coverage.Bitset.mem pbits (Context.example_id ctx e)))
                  rest
              end
              else
                Dlearn_parallel.Pool.filter_list (Context.pool ctx)
                  (fun e -> not (Coverage.covers_positive ctx prepared e))
                  rest
            in
            Log.info (fun m ->
                m "accepted clause covering %d+/%d- (%d uncovered left)" p n
                  (List.length still_uncovered));
            cover still_uncovered ((clause, p, n) :: acc) skipped
          end
          else begin
            Log.info (fun m ->
                m "skipping seed %s (best clause %d+/%d-)" (Tuple.to_string seed)
                  p n);
            cover rest acc (skipped + 1)
          end
        end
  in
  let accepted, skipped = cover pos [] 0 in
  let definition =
    List.fold_left
      (fun d (c, _, _) -> Definition.add d c)
      (Definition.empty target) accepted
  in
  (* Report per-clause coverage over the full training set. *)
  let stats =
    List.map
      (fun (c, _, _) ->
        let prep = Coverage.prepare ctx c in
        let p, n = Coverage.coverage ctx prep ~pos ~neg in
        { clause = c; pos_covered = p; neg_covered = n })
      accepted
  in
  if config.Config.incremental_coverage then begin
    let cs = ctx.Context.cover_stats in
    Log.info (fun m ->
        m
          "incremental coverage: %d verdicts tested, %d inherited from \
           parents, %d cache hits, %d candidates pruned by score bound"
          (Obs.value cs.Context.tested)
          (Obs.value cs.Context.inherited)
          (Obs.value cs.Context.cache_hits)
          (Obs.value cs.Context.pruned))
  end;
  (match config.Config.subsumption_engine with
  | `Csp -> Dlearn_logic.Subsumption.log_stats ()
  | `Sat ->
      let st : Dlearn_logic.Sat_subsumption.stats =
        Dlearn_logic.Sat_subsumption.stats ()
      in
      Log.info (fun m ->
          m
            "sat subsumption: %d solves, %d conflicts, %d learned clauses, \
             %d reused-clause hits"
            st.solves st.conflicts st.learned st.reused_clause_hits)
  | `Backtrack -> ());
  {
    definition;
    stats;
    seconds = Unix.gettimeofday () -. started;
    seeds_skipped = skipped;
  }

let predictor ctx definition =
  let prepared =
    List.map (Coverage.prepare ctx) definition.Definition.clauses
  in
  fun e -> List.exists (fun p -> Coverage.covers_positive ctx p e) prepared

let predict ctx definition e = predictor ctx definition e
