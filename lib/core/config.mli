(** Learner configuration.

    The names follow the paper's parameters: [depth] is the number of
    bottom-clause construction iterations [d] (§4.1, Table 7), [km] the
    number of top similarity matches considered per value (§6.2.1),
    [sample_size] the cap on literals added per relation (§5, Figure 1). *)

type t = {
  target : Dlearn_relation.Schema.t;
      (** schema of the target relation (name and attributes); training
          examples are tuples of this schema *)
  depth : int;  (** d: iterations of relevant-tuple collection *)
  km : int;  (** top similar matches per similarity search *)
  sample_size : int;  (** literals added per relation per bottom clause *)
  sim : Dlearn_constraints.Md.sim_spec;  (** the ≈ operator *)
  exact_matching : bool;
      (** Castor-Exact mode: MD attributes join through exact equality and
          no repair literals are produced *)
  constant_attrs : (string * string) list;
      (** (relation, attribute) pairs whose values appear as constants in
          clauses — the attributes over which definitions may learn
          constant tests, e.g. [("amazon_category", "category")] *)
  searchable_attrs : (string * string) list;
      (** the attributes the exact relevant-tuple search may look up —
          the inclusion-dependency / mode bias Castor requires: joins
          follow declared key columns, not accidental value collisions
          (an empty list means every attribute is searchable) *)
  sample_positives : int;  (** |E+_s|: candidates per generalisation step *)
  min_pos : int;  (** clause acceptance: minimum positives covered *)
  min_precision : float;  (** clause acceptance: pos / (pos + neg) *)
  max_clauses : int;  (** cap on clauses per definition *)
  armg_beam : int;  (** candidate-substitution cap during generalisation *)
  climb_neg_cap : int;
      (** negatives sampled when scoring candidates during hill-climbing;
          the acceptance test always uses the full negative set *)
  subsumption_budget : int;
  repair_state_cap : int;
  repair_result_cap : int;
  cfd_rounds : int;
      (** violation-detection rounds in bottom clauses: round 1 finds the
          violations present in the clause, later rounds the ones induced
          by hypothetical right-hand-side unifications *)
  allow_dirty_constraints : bool;
      (** skip the static constraint preflight the learner runs before
          bottom-clause construction; with malformed constraints the
          paper's guarantees no longer hold and runs may fail mid-epoch *)
  num_domains : int;
      (** domains used by the coverage engine's pool ([1] = the exact
          sequential path, no domains spawned); parallel and sequential
          runs return bitwise-identical results — see docs/PARALLELISM.md *)
  incremental_coverage : bool;
      (** reuse coverage verdicts across the ARMG climb (monotone
          inheritance of the parent's covered positives), prune candidates
          by score bound, and cache per-clause verdict bitsets across
          seeds; [false] selects the from-scratch path. Both paths learn
          the identical definition — see docs/COVERAGE.md *)
  normalize_clauses : bool;
      (** run every ARMG candidate through the [Clause_norm] pipeline
          before scoring and key the cover cache on the normalized form
          (alpha-variants and trivially-redundant variants share one
          entry); the ground targets fed to [Subsumption.prepare] are
          duplicate-stripped. [false] keys on the sort-only
          [Clause.canonical]. Both settings learn the identical
          definition — see docs/NORMALIZATION.md *)
  subsumption_engine : Dlearn_logic.Subsumption.engine;
      (** θ-subsumption search engine used by coverage testing: [`Csp]
          (default) is the forward-checking kernel, [`Backtrack] the
          reference backtracking search, [`Sat] the incremental CDCL
          ground encoding. All learn the identical definition — see
          docs/SUBSUMPTION.md *)
  trace : string option;
      (** when set, [Experiment.evaluate] records the run and writes a
          Chrome trace-event JSON (Perfetto-loadable) to this path;
          tracing never changes results — see docs/OBSERVABILITY.md *)
  seed : int;  (** RNG seed: sampling is deterministic given the seed *)
}

(** [default ~target] — the paper's operating point: d = 3, km = 5,
    sample_size = 10, paper similarity at 0.6. [num_domains] defaults to
    [Domain.recommended_domain_count ()], overridable through the
    [DLEARN_NUM_DOMAINS] environment variable; [incremental_coverage]
    defaults to [true], overridable through [DLEARN_INCREMENTAL]
    ([0]/[false]/[off]/[no] disable it); [normalize_clauses] defaults to
    [true], overridable through [DLEARN_NORMALIZE] (same spellings
    disable it); [subsumption_engine] defaults to
    [`Csp], overridable through [DLEARN_SUBSUMPTION] ([backtrack]/[bt]/
    [0]/[off] select the backtracking engine, [sat] the CDCL ground
    encoding); [trace] defaults to the [DLEARN_TRACE] path when that
    variable is set and non-empty, [None] otherwise. All environment
    variables read at each call. Whether a parallel batch actually fans
    out is no longer a config knob: the pool's adaptive cost model
    decides per batch (see docs/PARALLELISM.md). *)
val default : target:Dlearn_relation.Schema.t -> t

val pp : Format.formatter -> t -> unit
