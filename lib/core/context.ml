open Dlearn_relation
open Dlearn_constraints
module Obs = Dlearn_obs.Obs

type ground_entry = {
  ground : Dlearn_logic.Clause.t;
  lock : Mutex.t;
      (* guards every mutable field below: the lazily-memoized caches are
         hit concurrently when coverage fans out over domains *)
  mutable cfd_apps : Dlearn_logic.Clause.t list option;
  mutable repairs : Dlearn_logic.Clause.t list option;
  mutable target : Dlearn_logic.Subsumption.target option;
  mutable repair_targets : Dlearn_logic.Subsumption.target list option;
  mutable prefilter_target : Dlearn_logic.Subsumption.target option;
}

(* Incremental-coverage counters on the Obs registry ([coverage.*]
   names): bumped from inside parallel fills via the registry's
   per-domain shards, read merged by the learner's logging. The registry
   is process-wide, so contexts share the counters; readers interested in
   one run diff values around it (as the learner and tests do). *)
type cover_stats = {
  tested : Obs.counter; (* verdicts computed by running a predicate *)
  inherited : Obs.counter; (* positives inherited from the ARMG parent *)
  cache_hits : Obs.counter; (* verdicts found in the cross-seed cache *)
  pruned : Obs.counter; (* candidates cut short by the score bound *)
}

type t = {
  config : Config.t;
  db : Database.t;
  mds : Md.t list;
  cfds : Cfd.t list;
  mutable rng : Random.State.t;
  sim_indexes : (string * int, Dlearn_similarity.Sim_index.t) Hashtbl.t;
  sim_lock : Mutex.t;
  ground_cache : (string, ground_entry) Hashtbl.t;
  ground_lock : Mutex.t;
  (* Dense example ids: every pos/neg tuple the coverage engine sees is
     interned once; bitsets are indexed by these ids. One shared space for
     positives and negatives — an id identifies a tuple, not a polarity. *)
  example_ids : (string, int) Hashtbl.t;
  example_lock : Mutex.t;
  (* canonical clause -> known coverage verdicts, shared across seeds *)
  cover_cache : Cover_set.entry Cover_set.Clause_tbl.t;
  cover_lock : Mutex.t;
  cover_stats : cover_stats;
  (* example key -> canonical parent-clause rendering -> ARMG result.
     ARMG is deterministic in (parent clause, the example's ground
     entry), so entries stay valid exactly as long as the ground entry
     does; [apply_delta] drops an affected example's inner table
     alongside its ground entry. *)
  armg_cache : (string, (string, Dlearn_logic.Clause.t option) Hashtbl.t) Hashtbl.t;
  armg_lock : Mutex.t;
}

let create config db mds cfds =
  let target_name = Schema.name config.Config.target in
  List.iter
    (fun (md : Md.t) ->
      if Md.mentions md target_name then
        invalid_arg
          (Printf.sprintf
             "Context.create: MD %s mentions the target relation %s"
             md.Md.id target_name);
      List.iter
        (fun rel ->
          if not (Database.mem db rel) then
            invalid_arg
              (Printf.sprintf "Context.create: MD %s mentions unknown relation %s"
                 md.Md.id rel))
        [ md.Md.left_rel; md.Md.right_rel ])
    mds;
  {
    config;
    db;
    mds;
    cfds;
    rng = Random.State.make [| config.Config.seed |];
    sim_indexes = Hashtbl.create 8;
    sim_lock = Mutex.create ();
    ground_cache = Hashtbl.create 256;
    ground_lock = Mutex.create ();
    example_ids = Hashtbl.create 256;
    example_lock = Mutex.create ();
    cover_cache = Cover_set.Clause_tbl.create 256;
    cover_lock = Mutex.create ();
    armg_cache = Hashtbl.create 64;
    armg_lock = Mutex.create ();
    cover_stats =
      {
        tested = Obs.counter "coverage.tested";
        inherited = Obs.counter "coverage.inherited";
        cache_hits = Obs.counter "coverage.cache_hits";
        pruned = Obs.counter "coverage.pruned";
      };
  }

let pool t = Dlearn_parallel.Pool.get t.config.Config.num_domains

(* Rewind the sampling stream to the seed. A long-lived context (the
   serve loop) calls this at the start of every learn request so a warm
   learn draws exactly the samples a cold run would — byte-identical
   definitions. *)
let reset_rng t = t.rng <- Random.State.make [| t.config.Config.seed |]

(* Building an index is expensive but happens once per (relation,
   attribute); holding the lock across the build deduplicates the work
   when several domains miss simultaneously. *)
let sim_index t rel pos =
  Mutex.protect t.sim_lock (fun () ->
      match Hashtbl.find_opt t.sim_indexes (rel, pos) with
      | Some idx -> idx
      | None ->
          let relation = Database.find t.db rel in
          let values = Relation.distinct_values relation pos in
          let idx =
            Dlearn_similarity.Sim_index.of_values
              ~measure:t.config.Config.sim.Md.measure
              ~jobs:t.config.Config.num_domains values
          in
          Hashtbl.add t.sim_indexes (rel, pos) idx;
          idx)

let example_key e = Tuple.to_string e

(* Intern a tuple into the dense id space. Ids are assigned in first-seen
   order; duplicates of one tuple share an id. *)
let example_id t e =
  let key = example_key e in
  Mutex.protect t.example_lock (fun () ->
      match Hashtbl.find_opt t.example_ids key with
      | Some id -> id
      | None ->
          let id = Hashtbl.length t.example_ids in
          Hashtbl.add t.example_ids key id;
          id)

let example_count t =
  Mutex.protect t.example_lock (fun () -> Hashtbl.length t.example_ids)

(* The cache entry of a clause, created on first use. Callers must key on
   the prepared record's canonical form — [Clause_norm.normalize] output
   when [Config.normalize_clauses] is on (alpha-variants share an entry),
   [Clause.canonical] otherwise; the entry's own lock guards its bitsets,
   this lookup only guards the table. *)
let cover_entry t clause =
  Mutex.protect t.cover_lock (fun () ->
      match Cover_set.Clause_tbl.find_opt t.cover_cache clause with
      | Some e -> e
      | None ->
          let e = Cover_set.entry () in
          Cover_set.Clause_tbl.add t.cover_cache clause e;
          e)

let armg_hits_c = Obs.counter "armg.cache_hits"
let armg_computed_c = Obs.counter "armg.computed"

(* Memoize one ARMG generalization. [ckey] must render the parent clause
   canonically (the caller computes [Clause.to_string (Clause.canonical c)]
   once per parent). Concurrent misses on one key may both run [compute];
   the function is deterministic, so the duplicate write is harmless. *)
let armg_cached t e' ckey compute =
  let ekey = example_key e' in
  match
    Mutex.protect t.armg_lock (fun () ->
        match Hashtbl.find_opt t.armg_cache ekey with
        | None -> None
        | Some inner -> Hashtbl.find_opt inner ckey)
  with
  | Some r ->
      Obs.incr armg_hits_c;
      r
  | None ->
      let r = compute () in
      Obs.incr armg_computed_c;
      Mutex.protect t.armg_lock (fun () ->
          let inner =
            match Hashtbl.find_opt t.armg_cache ekey with
            | Some inner -> inner
            | None ->
                let inner = Hashtbl.create 8 in
                Hashtbl.add t.armg_cache ekey inner;
                inner
          in
          Hashtbl.replace inner ckey r);
      r

let is_searchable_attr t rel pos =
  match t.config.Config.searchable_attrs with
  | [] -> true
  | declared -> (
      match Database.find_opt t.db rel with
      | None -> false
      | Some relation ->
          let schema = Relation.schema relation in
          pos < Schema.arity schema
          && List.exists
               (fun (r, a) ->
                 String.equal r rel
                 && String.equal a (Schema.attr_name schema pos))
               declared)

(* {2 Monotone cache invalidation}

   A committed tuple delta must not rebuild the context: only the
   examples whose bottom clauses could change re-resolve. An example is
   {e affected} by a changed tuple iff the tuple could enter (or leave)
   its bottom clause, and every route in — the exact index search on a
   clause constant, or an MD similarity search driven by one — starts
   from a constant already present in the cached ground clause (the
   ground clause keeps every gathered value, including the example's
   own). Exact searches probe any attribute; similarity searches run
   only over MD-compared attribute pairs, each under that MD's effective
   spec. So the sound over-approximation is: some changed tuple value is
   equal to some constant of the cached ground clause, or — at a
   position some MD compares — similar to one under that MD's operator.
   Affected examples lose their ground
   entries and their bits in every cover-cache entry
   ([Cover_set.invalidate]); similarity indexes over changed relations
   are dropped (their distinct-value sets changed) and rebuild lazily.
   Everything else — unaffected verdicts, prepared targets, the learned
   SAT state inside surviving targets — carries across the commit.
   docs/SERVE.md states the soundness argument in full. *)

let delta_commits_c = Obs.counter "delta.commits"
let delta_invalidated_c = Obs.counter "delta.invalidated_examples"
let delta_sim_dropped_c = Obs.counter "delta.sim_indexes_dropped"

(* The specs under which a changed value at [(rel, pos)] can
   similarity-match a clause constant: the effective specs of the MDs
   comparing that attribute (bottom-clause gather's only similarity
   searches run over MD-compared pairs under exactly those specs). A
   value at a position no MD compares can enter a bottom clause only
   through the exact index search, so equality alone covers it — this is
   what keeps a new tuple's year or id from invalidating every example
   whose year is one edit away. *)
let specs_by_pos t rel =
  match Database.find_opt t.db rel with
  | None -> [||]
  | Some relation ->
      let schema = Relation.schema relation in
      Array.init (Schema.arity schema) (fun pos ->
          let attr = Schema.attr_name schema pos in
          List.filter_map
            (fun (md : Md.t) ->
              let compared_here =
                (String.equal md.Md.left_rel rel
                && List.exists
                     (fun (a, _) -> String.equal a attr)
                     md.Md.compared)
                || String.equal md.Md.right_rel rel
                   && List.exists
                        (fun (_, b) -> String.equal b attr)
                        md.Md.compared
              in
              if compared_here then
                Some (Md.effective_spec md t.config.Config.sim)
              else None)
            t.mds)

(* All constants of a clause, including inside repair conditions and
   drops, each expanded to its merge components (a merged value v_{a,b}
   joins new data through its base strings). *)
let clause_constants clause =
  let acc = ref [] in
  let collect term =
    (match term with
    | Dlearn_logic.Term.Const v ->
        acc := v :: !acc;
        if Md.Merge.is_merged v then
          List.iter
            (fun s -> acc := Value.String s :: !acc)
            (Md.Merge.components v)
    | Dlearn_logic.Term.Var _ -> ());
    term
  in
  ignore (Dlearn_logic.Clause.map_terms collect clause);
  !acc

let value_touches consts (v, specs) =
  List.exists
    (fun c ->
      Value.equal c v || List.exists (fun spec -> Md.similar spec c v) specs)
    consts

let apply_delta t changes =
  Obs.incr delta_commits_c;
  let changed_rels = List.map fst changes in
  (* Changed relations' similarity indexes are stale (their distinct
     values changed): drop them, they rebuild lazily on next use. *)
  Mutex.protect t.sim_lock (fun () ->
      let stale =
        Hashtbl.fold
          (fun (rel, pos) _ acc ->
            if List.exists (String.equal rel) changed_rels then
              (rel, pos) :: acc
            else acc)
          t.sim_indexes []
      in
      List.iter (fun key -> Hashtbl.remove t.sim_indexes key) stale;
      Obs.add delta_sim_dropped_c (List.length stale));
  let changed_values =
    List.concat_map
      (fun (rel, tuples) ->
        let specs = specs_by_pos t rel in
        List.concat_map
          (fun tu ->
            List.filter_map
              (fun pos ->
                let v = Tuple.get tu pos in
                if Value.is_null v then None
                else
                  Some
                    ( v,
                      if pos < Array.length specs then specs.(pos) else [] ))
              (List.init (Tuple.arity tu) Fun.id))
          tuples)
      changes
  in
  (* Affected examples: scan the cached ground clauses. Every example the
     coverage engine ever tested has one (coverage always grounds first),
     so the scan covers every recorded verdict. *)
  let affected =
    Mutex.protect t.ground_lock (fun () ->
        Hashtbl.fold
          (fun key entry acc ->
            let consts = clause_constants entry.ground in
            if List.exists (value_touches consts) changed_values then
              key :: acc
            else acc)
          t.ground_cache [])
  in
  Mutex.protect t.ground_lock (fun () ->
      List.iter (fun key -> Hashtbl.remove t.ground_cache key) affected);
  (* ARMG results are functions of the ground entry: same lifetime. *)
  Mutex.protect t.armg_lock (fun () ->
      List.iter (fun key -> Hashtbl.remove t.armg_cache key) affected);
  let ids =
    Mutex.protect t.example_lock (fun () ->
        List.filter_map (fun key -> Hashtbl.find_opt t.example_ids key) affected)
  in
  if ids <> [] then begin
    let mask = Cover_set.Bitset.of_list ids in
    let entries =
      Mutex.protect t.cover_lock (fun () ->
          Cover_set.Clause_tbl.fold (fun _ e acc -> e :: acc) t.cover_cache [])
    in
    List.iter (fun e -> Cover_set.invalidate e mask) entries
  end;
  Obs.add delta_invalidated_c (List.length affected);
  List.length affected

let is_constant_attr t rel pos =
  match Database.find_opt t.db rel with
  | None -> false
  | Some relation ->
      let schema = Relation.schema relation in
      pos < Schema.arity schema
      && List.exists
           (fun (r, a) ->
             String.equal r rel && String.equal a (Schema.attr_name schema pos))
           t.config.Config.constant_attrs
