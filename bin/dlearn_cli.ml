(* The dlearn command-line interface: generate the paper's workloads, run
   any of the compared systems on them, inspect bottom clauses, and export
   the generated data. *)

open Cmdliner
open Dlearn_relation
open Dlearn_core
open Dlearn_eval
open Dlearn_query

let dataset_names = [ "imdb1"; "imdb3"; "walmart"; "dblp" ]

let make_dataset ?n name =
  match name with
  | "imdb1" -> Imdb_omdb.generate ?n `One_md
  | "imdb3" -> Imdb_omdb.generate ?n `Three_mds
  | "walmart" -> Walmart_amazon.generate ?n ()
  | "dblp" -> Dblp_scholar.generate ?n ()
  | other ->
      raise
        (Invalid_argument
           (Printf.sprintf "unknown dataset %s (expected %s)" other
              (String.concat "/" dataset_names)))

let system_of_string = function
  | "dlearn" -> Baselines.Dlearn
  | "nomd" -> Baselines.Castor_nomd
  | "exact" -> Baselines.Castor_exact
  | "clean" -> Baselines.Castor_clean
  | "cfd" -> Baselines.Dlearn_cfd
  | "repaired" -> Baselines.Dlearn_repaired
  | other ->
      raise
        (Invalid_argument
           (Printf.sprintf
              "unknown system %s (expected dlearn/nomd/exact/clean/cfd/repaired)"
              other))

(* Shared options. *)
let dataset_arg =
  let doc = "Workload: imdb1, imdb3, walmart or dblp." in
  Arg.(value & opt string "imdb1" & info [ "dataset"; "d" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Scale: number of underlying entities to generate." in
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc)

let km_arg =
  let doc = "Top similarity matches considered per value (km)." in
  Arg.(value & opt (some int) None & info [ "km" ] ~docv:"K" ~doc)

let depth_arg =
  let doc = "Bottom-clause construction iterations (d)." in
  Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"D" ~doc)

let p_arg =
  let doc = "CFD-violation injection rate." in
  Arg.(value & opt float 0.0 & info [ "p" ] ~docv:"P" ~doc)

let jobs_arg =
  let doc =
    "Domains to fan coverage checks and cross-validation folds out over \
     (1 = sequential; default: the machine's recommended domain count, \
     also settable via DLEARN_NUM_DOMAINS)."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_incremental_arg =
  let doc =
    "Disable the incremental coverage engine (verdict caching, \
     generalization-monotone reuse and score-bound pruning) and test every \
     candidate from scratch. Both settings learn the identical definition; \
     also settable via DLEARN_INCREMENTAL=0."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_normalize_arg =
  let doc =
    "Disable the clause-normalization pipeline and score raw ARMG \
     candidates (the cover cache then keys on the sort-only canonical \
     form, so alpha-variant candidates miss it). Both settings learn the \
     identical definition; also settable via DLEARN_NORMALIZE=0 — see \
     docs/NORMALIZATION.md."
  in
  Arg.(value & flag & info [ "no-normalize" ] ~doc)

let subsumption_engine_arg =
  (* The engine list renders from Subsumption.all_engines so the flag,
     its help text and the library cannot drift. *)
  let names =
    List.map
      (fun (name, _) -> Printf.sprintf "$(b,%s)" name)
      Dlearn_logic.Subsumption.all_engines
  in
  let doc =
    Printf.sprintf
      "Theta-subsumption search engine: %s ($(b,csp), the forward-checking \
       kernel, is the default; $(b,backtrack) is the reference \
       backtracking search; $(b,sat) grounds into an incremental CDCL \
       solver). Every engine learns the identical definition; also \
       settable via DLEARN_SUBSUMPTION."
      (String.concat ", " names)
  in
  Arg.(
    value
    & opt (some (enum Dlearn_logic.Subsumption.all_engines)) None
    & info [ "subsumption-engine" ] ~docv:"ENGINE" ~doc)

let trace_arg =
  let doc =
    "Record the run and write a Chrome trace-event JSON to $(docv) \
     (loadable in Perfetto or chrome://tracing); also settable via \
     DLEARN_TRACE. Tracing never changes what is learned — see \
     docs/OBSERVABILITY.md."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let report_arg =
  let doc =
    "Print the per-stage observability report (span durations, counters) \
     after the run."
  in
  Arg.(value & flag & info [ "report" ] ~doc)

let verbose_arg =
  let doc = "Log learner progress." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.App))

let apply_overrides w km depth p =
  let w = match km with Some k -> Experiment.with_km w k | None -> w in
  let w = match depth with Some d -> Experiment.with_depth w d | None -> w in
  if p > 0.0 then
    Workload.inject_violations w ~p ~seed:w.Workload.config.Config.seed
  else w

(* dlearn datasets *)
let datasets_cmd =
  let run () =
    List.iter
      (fun name ->
        let w = make_dataset name in
        Printf.printf "%-8s %s\n" name (Workload.describe w))
      dataset_names
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List the available workloads.")
    Term.(const run $ const ())

(* dlearn learn *)
let learn_cmd =
  let system_arg =
    let doc = "System: dlearn, nomd, exact, clean, cfd or repaired." in
    Arg.(value & opt string "dlearn" & info [ "system"; "s" ] ~docv:"SYS" ~doc)
  in
  let folds_arg =
    let doc = "Cross-validation folds." in
    Arg.(value & opt int 5 & info [ "folds" ] ~docv:"K" ~doc)
  in
  let run dataset system n km depth p folds jobs no_incremental no_normalize
      engine trace report verbose =
    setup_logs verbose;
    let w = apply_overrides (make_dataset ?n dataset) km depth p in
    let w = match jobs with Some j -> Experiment.with_jobs w j | None -> w in
    let w =
      if no_incremental then Experiment.with_incremental w false else w
    in
    let w = if no_normalize then Experiment.with_normalize w false else w in
    let w =
      match engine with
      | Some e -> Experiment.with_subsumption w e
      | None -> w
    in
    let w =
      match trace with Some t -> Experiment.with_trace w (Some t) | None -> w
    in
    let system = system_of_string system in
    (* Spans short-circuit by default; the report needs their histograms
       fed throughout the run. *)
    if report then Dlearn_obs.Obs.set_metrics true;
    Printf.printf "%s\n" (Workload.describe w);
    let r = Experiment.evaluate ~folds system w in
    Printf.printf "%s: F1=%.2f (+/-%.2f) precision=%.2f recall=%.2f %.1fs/fold\n"
      (Baselines.name system) r.Experiment.f1 r.Experiment.f1_std
      r.Experiment.precision r.Experiment.recall r.Experiment.seconds;
    if report then print_string (Dlearn_obs.Obs.report ())
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"Cross-validate a system on a workload.")
    Term.(
      const run $ dataset_arg $ system_arg $ n_arg $ km_arg $ depth_arg $ p_arg
      $ folds_arg $ jobs_arg $ no_incremental_arg $ no_normalize_arg
      $ subsumption_engine_arg $ trace_arg $ report_arg $ verbose_arg)

(* dlearn show *)
let show_cmd =
  let index_arg =
    let doc = "Index of the positive example to inspect." in
    Arg.(value & opt int 0 & info [ "example"; "e" ] ~docv:"I" ~doc)
  in
  let ground_arg =
    let doc = "Show the ground bottom clause instead of the variable one." in
    Arg.(value & flag & info [ "ground" ] ~doc)
  in
  let run dataset n km depth p index ground =
    setup_logs false;
    let w = apply_overrides (make_dataset ?n dataset) km depth p in
    let ctx =
      Context.create w.Workload.config w.Workload.db w.Workload.mds
        w.Workload.cfds
    in
    let e = List.nth w.Workload.pos index in
    Printf.printf "example: %s\n\n" (Tuple.to_string e);
    let mode = if ground then Bottom_clause.Ground else Bottom_clause.Variable in
    let c = Bottom_clause.build ctx mode e in
    print_endline (Dlearn_logic.Clause.to_string c)
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print the bottom clause the learner builds for an example.")
    Term.(
      const run $ dataset_arg $ n_arg $ km_arg $ depth_arg $ p_arg $ index_arg
      $ ground_arg)

(* dlearn query *)
let query_cmd =
  let clause_arg =
    let doc =
      "The clause to evaluate, e.g. 'q(x) <- imdb_movies(x, t, y), t ~ t2, \
       omdb_movies(o, t2, y2)'."
    in
    Arg.(required & opt (some string) None & info [ "clause"; "c" ] ~docv:"CLAUSE" ~doc)
  in
  let limit_arg =
    let doc = "Maximum number of answers." in
    Arg.(value & opt int 25 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let run dataset n p clause limit =
    let w = apply_overrides (make_dataset ?n dataset) None None p in
    match Dlearn_logic.Parser.clause clause with
    | Error msg -> Printf.eprintf "parse error %s\n" msg
    | Ok c ->
        let oracle = Conjunctive.oracle_of_spec w.Workload.config.Config.sim in
        let rows = Conjunctive.answers ~limit w.Workload.db oracle c in
        if rows = [] then print_endline "(no answers)"
        else
          Text_table.print
            ~header:
              (List.init
                 (Tuple.arity (List.hd rows))
                 (fun i -> Printf.sprintf "col%d" i))
            (List.map
               (fun t ->
                 List.init (Tuple.arity t) (fun i ->
                     Value.to_string (Tuple.get t i)))
               rows)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a conjunctive query over a workload.")
    Term.(const run $ dataset_arg $ n_arg $ p_arg $ clause_arg $ limit_arg)

(* dlearn explain *)
let explain_cmd =
  let clause_arg =
    let doc = "The clause whose coverage to explain." in
    Arg.(required & opt (some string) None & info [ "clause"; "c" ] ~docv:"CLAUSE" ~doc)
  in
  let example_arg =
    let doc = "Index of the positive example to explain." in
    Arg.(value & opt int 0 & info [ "example"; "e" ] ~docv:"I" ~doc)
  in
  let run dataset n km depth p clause index =
    setup_logs false;
    let w = apply_overrides (make_dataset ?n dataset) km depth p in
    match Dlearn_logic.Parser.clause clause with
    | Error msg -> Printf.eprintf "parse error %s\n" msg
    | Ok c -> (
        let ctx =
          Context.create w.Workload.config w.Workload.db w.Workload.mds
            w.Workload.cfds
        in
        let e = List.nth w.Workload.pos index in
        Printf.printf "example: %s\n" (Tuple.to_string e);
        match Explain.positive ctx c e with
        | Some explanation -> print_endline explanation
        | None -> print_endline "the clause does not cover this example")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain why a clause covers (or fails to cover) an example.")
    Term.(
      const run $ dataset_arg $ n_arg $ km_arg $ depth_arg $ p_arg $ clause_arg
      $ example_arg)

(* dlearn profile *)
let profile_cmd =
  let pair_arg =
    let doc = "Two relation names to profile for matching dependencies." in
    Arg.(value & opt (some (pair string string)) None & info [ "match" ] ~docv:"R1,R2" ~doc)
  in
  let run dataset n pair =
    let w = make_dataset ?n dataset in
    let db = w.Workload.db in
    (match pair with
    | Some (left, right) ->
        Printf.printf "MD candidates between %s and %s:\n" left right;
        List.iter
          (fun (md, stats) ->
            Printf.printf "  %s (coverage %.2f, ambiguity %.2f)\n"
              (Dlearn_constraints.Md.to_string md)
              stats.Dlearn_profiling.Md_discovery.coverage
              stats.Dlearn_profiling.Md_discovery.ambiguity)
          (Dlearn_profiling.Md_discovery.discover db left right)
    | None -> ());
    print_endline "Functional dependencies (lhs of size 1):";
    List.iter
      (fun r ->
        List.iter
          (fun fd ->
            Printf.printf "  %s: %s -> %s\n" (Relation.name r)
              (String.concat "," fd.Dlearn_profiling.Fd_discovery.lhs)
              fd.Dlearn_profiling.Fd_discovery.rhs)
          (Dlearn_profiling.Fd_discovery.discover ~max_lhs:1 r))
      (Database.relations db)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Discover matching dependencies and FDs in a workload.")
    Term.(const run $ dataset_arg $ n_arg $ pair_arg)

(* dlearn check *)
let check_cmd =
  let clause_arg =
    let doc = "A clause to lint and typecheck (repeatable)." in
    Arg.(value & opt_all string [] & info [ "clause"; "c" ] ~docv:"CLAUSE" ~doc)
  in
  let json_arg =
    let doc = "Print diagnostics as a JSON array." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let bad_cfd_arg =
    let doc =
      "Seed a deliberately unsatisfiable CFD pair into the constraint set \
       (two constant right-hand sides over the same column), to \
       demonstrate the analyzer."
    in
    Arg.(value & flag & info [ "seed-bad-cfd" ] ~doc)
  in
  let inconsistent_pair db =
    (* Two CFDs forcing one column to equal two distinct constants. *)
    let rel =
      match
        List.find_opt
          (fun r -> Schema.arity (Relation.schema r) >= 2)
          (Database.relations db)
      with
      | Some r -> r
      | None -> raise (Invalid_argument "no relation with arity >= 2")
    in
    let schema = Relation.schema rel in
    let lhs_attr = Schema.attr_name schema 0 in
    let rhs_attr = Schema.attr_name schema 1 in
    let open Dlearn_constraints in
    List.map
      (fun (id, const) ->
        Cfd.make ~id ~relation:(Relation.name rel)
          ~lhs:[ (lhs_attr, Cfd.Wildcard) ]
          ~rhs:(rhs_attr, Cfd.Const (Value.String const)))
      [ ("bad_cfd_a", "b1"); ("bad_cfd_b", "b2") ]
  in
  let run dataset n clauses json bad_cfd =
    let open Dlearn_analysis in
    let w = make_dataset ?n dataset in
    let cfds =
      if bad_cfd then w.Workload.cfds @ inconsistent_pair w.Workload.db
      else w.Workload.cfds
    in
    let target = w.Workload.config.Config.target in
    let constraint_ds =
      Analyzer.check_constraints w.Workload.db ~mds:w.Workload.mds ~cfds
    in
    let clause_ds =
      List.concat_map
        (fun text ->
          match Dlearn_logic.Parser.clause text with
          | Error msg ->
              [
                Diagnostic.error ~code:"DL001" ~subject:Diagnostic.General
                  ~witness:text ("clause does not parse: " ^ msg);
              ]
          | Ok c -> Analyzer.check_clause w.Workload.db ~target c)
        clauses
    in
    let diagnostics = constraint_ds @ clause_ds in
    if json then print_endline (Diagnostic.report_to_json diagnostics)
    else print_endline (Diagnostic.report_to_string diagnostics);
    if Diagnostic.has_errors diagnostics then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyse a workload's constraints (and optional \
          clauses); exit 1 when any DL0xx error is found.")
    Term.(
      const run $ dataset_arg $ n_arg $ clause_arg $ json_arg $ bad_cfd_arg)

(* dlearn genscale *)
let genscale_cmd =
  let dir_arg =
    let doc = "Directory to write the dataset into (manifest + CSVs)." in
    Arg.(value & opt string "scale-data" & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let tuples_arg =
    let doc = "Rows per relation." in
    Arg.(
      value
      & opt int Scale_gen.default.Scale_gen.tuples
      & info [ "tuples"; "t" ] ~docv:"N" ~doc)
  in
  let dirt_arg =
    let doc = "Per-field corruption probability, in [0, 1]." in
    Arg.(
      value
      & opt float Scale_gen.default.Scale_gen.dirt_rate
      & info [ "dirt" ] ~docv:"P" ~doc)
  in
  let dup_arg =
    let doc = "Probability a row duplicates the previous entity." in
    Arg.(
      value
      & opt float Scale_gen.default.Scale_gen.duplicate_rate
      & info [ "duplicates" ] ~docv:"P" ~doc)
  in
  let zipf_arg =
    let doc = "Zipf exponent for brand / head-noun skew." in
    Arg.(
      value
      & opt float Scale_gen.default.Scale_gen.zipf_s
      & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let vocab_arg =
    let doc = "Distinct nouns in the title vocabulary (>= 16)." in
    Arg.(
      value
      & opt int Scale_gen.default.Scale_gen.vocab
      & info [ "vocab" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "RNG seed; equal configs produce byte-identical datasets." in
    Arg.(
      value
      & opt int Scale_gen.default.Scale_gen.seed
      & info [ "seed" ] ~docv:"N" ~doc)
  in
  let run dir tuples dirt_rate duplicate_rate zipf_s vocab seed =
    let config =
      {
        Scale_gen.tuples;
        dirt_rate;
        duplicate_rate;
        zipf_s;
        vocab;
        seed;
      }
    in
    let t0 = Unix.gettimeofday () in
    let summary = Scale_gen.generate ~config dir in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%a@." Scale_gen.pp_summary summary;
    Printf.printf "generated in %.2fs (%.0f rows/s)\n" dt
      (float_of_int (2 * tuples) /. dt)
  in
  Cmd.v
    (Cmd.info "genscale"
       ~doc:
         "Generate a deterministic scaled entity-matching dataset \
          (src_products / dst_products) straight to disk — see \
          docs/SCALE.md.")
    Term.(
      const run $ dir_arg $ tuples_arg $ dirt_arg $ dup_arg $ zipf_arg
      $ vocab_arg $ seed_arg)

(* dlearn scan *)
let scan_cmd =
  let dir_arg =
    let doc = "Dataset directory (manifest + CSVs), e.g. from genscale." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let relation_arg =
    let doc =
      "Relation to scan; default: every relation in the manifest."
    in
    Arg.(value & opt (some string) None & info [ "relation"; "r" ] ~docv:"NAME" ~doc)
  in
  let run dir relation =
    let names =
      match relation with
      | Some name -> [ name ]
      | None -> List.map Schema.name (Storage.manifest dir)
    in
    List.iter
      (fun name ->
        let bytes0 =
          Dlearn_obs.Obs.value (Dlearn_obs.Obs.counter "storage.bytes_streamed")
        in
        let t0 = Unix.gettimeofday () in
        let rows =
          Storage.scan dir name ~init:0 ~f:(fun acc _tu -> acc + 1)
        in
        let dt = Unix.gettimeofday () -. t0 in
        let bytes =
          Dlearn_obs.Obs.value (Dlearn_obs.Obs.counter "storage.bytes_streamed")
          - bytes0
        in
        Printf.printf "%s: %d rows, %d bytes in %.2fs (%.0f rows/s, %.1f MB/s)\n"
          name rows bytes dt
          (float_of_int rows /. dt)
          (float_of_int bytes /. (dt *. 1048576.0)))
      names;
    match Dlearn_obs.Obs.peak_rss_kb () with
    | Some kb -> Printf.printf "peak rss: %d kB\n" kb
    | None -> ()
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Stream a stored dataset's tuples off disk without materializing \
          any relation, reporting row/byte throughput and peak RSS.")
    Term.(const run $ dir_arg $ relation_arg)

(* dlearn export *)
let export_cmd =
  let dir_arg =
    let doc = "Directory to write one CSV per relation into." in
    Arg.(value & opt string "." & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let run dataset n p dir =
    let w = apply_overrides (make_dataset ?n dataset) None None p in
    Storage.mkdir_p dir;
    List.iter
      (fun r ->
        let path = Filename.concat dir (Relation.name r ^ ".csv") in
        Csv.save r path;
        Printf.printf "wrote %s (%d tuples)\n" path (Relation.cardinality r))
      (Database.relations w.Workload.db)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a generated workload as CSV files.")
    Term.(const run $ dataset_arg $ n_arg $ p_arg $ dir_arg)

(* dlearn serve *)
let socket_arg =
  let doc = "Unix-domain socket path the server listens on." in
  Arg.(
    value
    & opt string "dlearn.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run dataset n km depth p jobs trace verbose socket =
    setup_logs verbose;
    let w = apply_overrides (make_dataset ?n dataset) km depth p in
    let w = match jobs with Some j -> Experiment.with_jobs w j | None -> w in
    (match trace with
    | Some _ ->
        Dlearn_obs.Obs.set_metrics true;
        Dlearn_obs.Obs.start_recording ()
    | None -> ());
    let state = Dlearn_serve.Server.create w in
    (* SIGINT/SIGTERM stop the accept loop so the trace still lands. *)
    let request_stop _ = Dlearn_serve.Server.stop state in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
     with Invalid_argument _ -> ());
    Printf.printf "serving %s on %s\n%!" w.Workload.name socket;
    Dlearn_serve.Server.run state ~socket_path:socket;
    (match trace with
    | Some path ->
        Dlearn_obs.Obs.write_trace path;
        Printf.printf "wrote %s\n" path
    | None -> ());
    print_endline "server stopped"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a workload over a Unix socket: concurrent learn / coverage \
          / query / insert requests against one warm learning state — see \
          docs/SERVE.md.")
    Term.(
      const run $ dataset_arg $ n_arg $ km_arg $ depth_arg $ p_arg $ jobs_arg
      $ trace_arg $ verbose_arg $ socket_arg)

(* dlearn client *)
let client_cmd =
  let request_arg =
    let doc =
      "The request to send, as a JSON object with an \"op\" field, e.g. \
       '{\"op\":\"status\"}' or \
       '{\"op\":\"insert\",\"relation\":\"imdb_movies\",\"values\":[...]}'."
    in
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"REQUEST" ~doc)
  in
  let wait_arg =
    let doc = "Keep retrying the connection until the server is up." in
    Arg.(value & flag & info [ "wait" ] ~doc)
  in
  let run socket wait request =
    let open Dlearn_serve in
    match Json.of_string_opt request with
    | None ->
        Printf.eprintf "request is not valid JSON\n";
        exit 2
    | Some req ->
        let c =
          if wait then Client.connect_retry socket else Client.connect socket
        in
        let resp = Client.request c req in
        Client.close c;
        print_endline (Json.to_string resp);
        if not (Protocol.is_ok resp) then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one JSON request to a running dlearn server and print the \
          response; exit 1 on an {\"ok\":false} response.")
    Term.(const run $ socket_arg $ wait_arg $ request_arg)

let main =
  let info =
    Cmd.info "dlearn" ~version:"1.0.0"
      ~doc:"Learning over dirty data without cleaning (SIGMOD 2020)."
  in
  Cmd.group info
    [
      datasets_cmd; learn_cmd; show_cmd; query_cmd; explain_cmd; profile_cmd;
      check_cmd; genscale_cmd; scan_cmd; export_cmd; serve_cmd; client_cmd;
    ]

let () = exit (Cmd.eval main)
