(** Generalisation by blocking-literal removal (§4.2).

    The asymmetric relative minimal generalisation of ProGolem, extended
    to repair literals: walk the clause's body in its construction order,
    maintaining a beam of candidate substitutions into the ground bottom
    clause of another positive example; a literal none of the candidates
    can extend through is {e blocking} and is removed. Restriction
    literals filter the beam instead (and are removed when every candidate
    refutes them). Afterwards, repair literals whose subject no longer
    occurs in any schema atom are pruned, head-connectedness is restored,
    and dangling restriction literals are dropped — so dropping a schema
    literal takes its repairs along, as the paper requires. *)

(** [armg ctx c e'] generalises [c] to cover [e'], or [None] when even the
    head cannot be mapped onto [e']'s ground bottom clause. The result
    θ-subsumes [c] (it is [c] minus literals). *)
val armg :
  Context.t ->
  Dlearn_logic.Clause.t ->
  Dlearn_relation.Tuple.t ->
  Dlearn_logic.Clause.t option
