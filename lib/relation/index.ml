module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Ids accumulate newest-first in [rev_ids]; [fwd_ids] memoizes the
   insertion-order view so a hot value's bucket is reversed once, not on
   every lookup. Any insertion invalidates the memo. *)
type bucket = { mutable rev_ids : int list; mutable fwd_ids : int list option }

type t = bucket H.t

let create () = H.create 64

let add t v id =
  match H.find_opt t v with
  | Some b ->
      b.rev_ids <- id :: b.rev_ids;
      b.fwd_ids <- None
  | None -> H.add t v { rev_ids = [ id ]; fwd_ids = None }

let lookup t v =
  match H.find_opt t v with
  | None -> []
  | Some b -> (
      match b.fwd_ids with
      | Some ids -> ids
      | None ->
          let ids = List.rev b.rev_ids in
          b.fwd_ids <- Some ids;
          ids)

let mem t v = H.mem t v

let distinct_values t = H.fold (fun v _ acc -> v :: acc) t []

let cardinality t = H.length t
