(* Citation augmentation: the paper's DBLP + Google Scholar scenario.

   Scholar records lack publication years; DBLP has them under clean but
   differently written titles and venues. The learned binary target
   gsPaperYear(gsId, year) transfers the year across the similarity match,
   and we use it to augment Scholar records.

   Run with: dune exec examples/citation_augmentation.exe *)

open Dlearn_relation
open Dlearn_core
open Dlearn_eval

let () =
  let w = Dblp_scholar.generate ~n:80 () in
  Printf.printf "%s\n\n" (Workload.describe w);
  Printf.printf "gs_pub (no year column — the years live in DBLP):\n%s\n"
    (Text_table.of_relation ~limit:4 (Database.find w.Workload.db "gs_pub"));
  Printf.printf "dblp_pub:\n%s\n"
    (Text_table.of_relation ~limit:4 (Database.find w.Workload.db "dblp_pub"));

  let ctx =
    Baselines.make_context Baselines.Dlearn w.Workload.config w.Workload.db
      w.Workload.mds w.Workload.cfds
  in
  let result = Learner.learn ctx ~pos:w.Workload.pos ~neg:w.Workload.neg in
  Printf.printf "learned definition:\n%s\n\n"
    (Dlearn_logic.Definition.to_string result.Learner.definition);

  (* Augment: for a few Scholar ids, find the year the definition accepts. *)
  let gs = Database.find w.Workload.db "gs_pub" in
  let dblp = Database.find w.Workload.db "dblp_pub" in
  let candidate_years =
    Relation.distinct_values dblp 3 |> List.map Value.to_string
    |> List.sort String.compare
  in
  let augmented = ref 0 in
  (try
     Relation.iter
       (fun _ t ->
         if !augmented >= 5 then raise Exit;
         let gsid = Value.to_string (Tuple.get t 0) in
         let accepted =
           List.filter
             (fun y ->
               Learner.predict ctx result.Learner.definition
                 (Tuple.of_strings [ gsid; y ]))
             candidate_years
         in
         match accepted with
         | [] -> ()
         | ys ->
             incr augmented;
             Printf.printf "%s (%s...) -> year %s\n" gsid
               (String.sub (Value.to_string (Tuple.get t 1)) 0 24)
               (String.concat " or " ys))
       gs
   with Exit -> ());
  if !augmented = 0 then
    print_endline "no Scholar record could be augmented (unexpected)"
