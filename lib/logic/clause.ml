type t = {
  head : Literal.t;
  body : Literal.t list;
}

let make ~head body =
  if not (Literal.is_rel head) then
    invalid_arg "Clause.make: head must be a schema atom";
  { head; body }

let head_pred t =
  match t.head with
  | Literal.Rel { pred; _ } -> pred
  | Literal.Sim _ | Literal.Eq _ | Literal.Neq _ | Literal.Repair _ ->
      assert false

let body_size t = List.length t.body

let vars t =
  List.concat_map Literal.vars (t.head :: t.body)
  |> List.sort_uniq String.compare

let rel_body t = List.filter Literal.is_rel t.body
let repair_body t = List.filter Literal.is_repair t.body

let equal a b =
  Literal.equal a.head b.head
  && List.length a.body = List.length b.body
  && List.for_all2 Literal.equal a.body b.body

let map_terms f t =
  { head = Literal.map_terms f t.head; body = List.map (Literal.map_terms f) t.body }

module StrSet = Set.Make (String)

let head_connected t =
  let connected = ref (StrSet.of_list (Literal.vars t.head)) in
  let remaining = ref t.body in
  let kept = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    let still_remaining =
      List.filter
        (fun l ->
          let lvars = Literal.vars l in
          let touches =
            lvars = [] || List.exists (fun v -> StrSet.mem v !connected) lvars
          in
          if touches then begin
            connected := StrSet.union !connected (StrSet.of_list lvars);
            kept := l :: !kept;
            changed := true;
            false
          end
          else true)
        !remaining
    in
    remaining := still_remaining
  done;
  (* Restore construction order. *)
  let kept_set = !kept in
  let body =
    List.filter (fun l -> List.exists (fun k -> k == l) kept_set) t.body
  in
  { t with body }

let remove_dangling_restrictions t =
  let anchored =
    List.concat_map Literal.vars
      (List.filter
         (fun l -> Literal.is_rel l || Literal.is_repair l)
         (t.head :: t.body))
    |> StrSet.of_list
  in
  let body =
    List.filter
      (fun l ->
        if Literal.is_restriction l then
          List.for_all (fun v -> StrSet.mem v anchored) (Literal.vars l)
        else true)
      t.body
  in
  { t with body }

let canonical t =
  let body = List.sort_uniq Literal.compare t.body in
  { t with body }

let to_string t =
  let body =
    match t.body with
    | [] -> "true"
    | ls -> String.concat ",\n    " (List.map Literal.to_string ls)
  in
  Printf.sprintf "%s <-\n    %s" (Literal.to_string t.head) body

let pp fmt t = Format.pp_print_string fmt (to_string t)
