open Dlearn_logic
module Memo = Dlearn_parallel.Memo
module Pool = Dlearn_parallel.Pool
module Obs = Dlearn_obs.Obs

module Bitset = Cover_set.Bitset

type prepared = {
  clause : Clause.t;
  cfd_apps : Clause.t list Memo.t;
  repairs : Clause.t list Memo.t;
  skeleton : Clause.t Memo.t;
      (* head + schema atoms with every occurrence of a repairable term
         (subject or replacement of some repair literal) wildcarded *)
  canon : Clause.t Memo.t;
      (* the canonical form, key of the cross-seed cover cache *)
}

let caps (ctx : Context.t) =
  let c = ctx.Context.config in
  (c.Config.repair_state_cap, c.Config.repair_result_cap)

(* The relational skeleton of a clause: head and schema atoms only, with
   every occurrence of a term that some repair literal may rewrite
   replaced by a fresh variable. Used as a necessary condition: if some
   repaired clause of C subsumes some repaired clause of Ge, then the
   skeleton subsumes Ge's relational part modulo Ge's potential merges. *)
let skeleton_of (clause : Clause.t) =
  let repairable =
    List.filter_map
      (function
        | Literal.Repair { subject; replacement; _ } ->
            Some [ subject; replacement ]
        | _ -> None)
      clause.Clause.body
    |> List.concat
  in
  let gen = Term.Fresh.make "w" in
  let wildcard t =
    if List.exists (Term.equal t) repairable then Term.Fresh.next gen else t
  in
  let rewrite = function
    | Literal.Rel { pred; args } ->
        Literal.Rel { pred; args = Array.map wildcard args }
    | l -> l
  in
  Clause.make ~head:(rewrite clause.Clause.head)
    (List.map rewrite (Clause.rel_body clause))

let prepare ctx clause =
  let state_cap, result_cap = caps ctx in
  let normalize = ctx.Context.config.Config.normalize_clauses in
  let clause =
    if normalize then Obs.span "learn.normalize" (fun () -> Clause_norm.normalize clause)
    else clause
  in
  {
    clause;
    cfd_apps =
      Memo.make (fun () ->
          Clause_repair.cfd_applications ~state_cap ~result_cap clause);
    repairs =
      Memo.make (fun () ->
          Clause_repair.repaired_clauses ~state_cap ~result_cap clause);
    skeleton = Memo.make (fun () -> skeleton_of clause);
    canon =
      (* [normalize] is idempotent, so the normalized clause is its own
         canonical form — the cross-seed cache key that merges
         alpha-variants. Off: the sort-only key, as before. *)
      (if normalize then Memo.make (fun () -> clause)
       else Memo.make (fun () -> Clause.canonical clause));
  }

let has_cfd_repairs (c : Clause.t) =
  List.exists
    (function
      | Literal.Repair { origin = Literal.From_cfd _; _ } -> true
      | _ -> false)
    c.Clause.body

(* The per-entry caches below memoize under the entry's lock so that
   concurrent coverage checks of one example from several domains compute
   each object once and share it. The [_unlocked] variants exist for the
   accessors that need one another (repair targets need the repairs):
   stdlib mutexes are not reentrant, so only the outermost accessor
   locks. *)

let ground_cfd_apps ctx (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.cfd_apps with
      | Some apps -> apps
      | None ->
          let state_cap, result_cap = caps ctx in
          let apps =
            Clause_repair.cfd_applications ~state_cap ~result_cap
              entry.Context.ground
          in
          entry.Context.cfd_apps <- Some apps;
          apps)

(* Target-side normalization: ground bottom clauses only admit exact
   duplicate removal (their restriction literals are closure data, see
   Clause_norm.dedup_target); it shrinks the candidate tables
   Subsumption.prepare builds. *)
let target_side (ctx : Context.t) c =
  if ctx.Context.config.Config.normalize_clauses then Clause_norm.dedup_target c
  else c

let ground_target (ctx : Context.t) (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.target with
      | Some t -> t
      | None ->
          let t = Subsumption.prepare (target_side ctx entry.Context.ground) in
          entry.Context.target <- Some t;
          t)

let ground_repairs_unlocked ctx (entry : Context.ground_entry) =
  match entry.Context.repairs with
  | Some rs -> rs
  | None ->
      let state_cap, result_cap = caps ctx in
      let rs =
        Clause_repair.repaired_clauses ~state_cap ~result_cap
          entry.Context.ground
      in
      entry.Context.repairs <- Some rs;
      rs

let ground_repairs ctx (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () -> ground_repairs_unlocked ctx entry)

(* Fast path: Definition 4.4 subsumption against the ground bottom clause
   is sound for coverage (Theorem 4.6). When it fails, decide Definition
   3.4 directly: every repaired clause of C must subsume some repaired
   clause of Ge — the repairs of Ge stand in for the repairs of the
   database by Theorem 4.11. Both sides are repair-free there, so the
   connectivity condition is vacuous. *)
let ground_repair_targets ctx (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.repair_targets with
      | Some ts -> ts
      | None ->
          let ts =
            List.map
              (fun r -> Subsumption.prepare (target_side ctx r))
              (ground_repairs_unlocked ctx entry)
          in
          entry.Context.repair_targets <- Some ts;
          ts)

(* Ge's relational part, with equality literals unioning every pair of
   terms some repair group might make identical — the over-approximation
   of all possible merges that the skeleton is matched against. *)
let prefilter_target (ctx : Context.t) (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.prefilter_target with
      | Some t -> t
      | None ->
          let ge = entry.Context.ground in
          let merge_eqs =
            List.filter_map
              (function
                | Literal.Repair { subject; replacement; _ } ->
                    Some (Literal.Eq (subject, replacement))
                | _ -> None)
              ge.Clause.body
          in
          let target_clause =
            Clause.make ~head:ge.Clause.head (Clause.rel_body ge @ merge_eqs)
          in
          let t = Subsumption.prepare (target_side ctx target_clause) in
          entry.Context.prefilter_target <- Some t;
          t)

(* The engine is threaded explicitly from the config so the hot path
   never re-reads DLEARN_SUBSUMPTION. *)
let passes_prefilter ctx prepared entry =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let engine = ctx.Context.config.Config.subsumption_engine in
  Subsumption.subsumes_target_bool ~engine ~budget ~repair_connectivity:false
    (Memo.force prepared.skeleton)
    (prefilter_target ctx entry)

let covers_positive ctx prepared e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let engine = ctx.Context.config.Config.subsumption_engine in
  let entry = Bottom_clause.ground ctx e in
  if
    Subsumption.subsumes_target_bool ~engine ~budget prepared.clause
      (ground_target ctx entry)
  then true
  else if not (passes_prefilter ctx prepared entry) then false
  else begin
    let crs = Memo.force prepared.repairs in
    let grs = ground_repair_targets ctx entry in
    crs <> []
    && List.for_all
         (fun cr ->
           List.exists
             (fun gr ->
               Subsumption.subsumes_target_bool ~engine ~budget
                 ~repair_connectivity:false cr gr)
             grs)
         crs
  end

let covers_negative ctx prepared e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let engine = ctx.Context.config.Config.subsumption_engine in
  let entry = Bottom_clause.ground ctx e in
  if not (passes_prefilter ctx prepared entry) then false
  else
  let crs = Memo.force prepared.repairs in
  let grs = ground_repair_targets ctx entry in
  List.exists
    (fun cr ->
      List.exists
        (fun gr ->
          Subsumption.subsumes_target_bool ~engine ~budget
            ~repair_connectivity:false cr gr)
        grs)
    crs

(* The paper's §4.3 intermediate procedure: apply only the CFD groups on
   both sides and keep MD repair literals as atoms (Theorem 4.9). Exposed
   for the ablation benchmark comparing it with the full enumeration.
   The skeleton prefilter is the same necessary condition as for the full
   enumeration — a CFD application only rewrites repairable-term
   occurrences, all of which the skeleton wildcards and the prefilter
   target's merge equalities cover — so it gates this branch too;
   [~prefilter:false] preserves the unfiltered path for the regression
   test pinning their equivalence. *)
let covers_positive_cfd_split ?(prefilter = true) ctx prepared e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let engine = ctx.Context.config.Config.subsumption_engine in
  let entry = Bottom_clause.ground ctx e in
  let ge = entry.Context.ground in
  if Subsumption.subsumes_bool ~engine ~budget prepared.clause ge then true
  else if prefilter && not (passes_prefilter ctx prepared entry) then false
  else if not (has_cfd_repairs prepared.clause || has_cfd_repairs ge) then
    false
  else begin
    let cas = Memo.force prepared.cfd_apps in
    let gas = ground_cfd_apps ctx entry in
    cas <> []
    && List.for_all
         (fun ca ->
           List.exists
             (fun ga -> Subsumption.subsumes_bool ~engine ~budget ca ga)
             gas)
         cas
  end

(* Whether a batch actually fans out is the pool's call now: its adaptive
   cost model probes the first items inline and keeps cheap batches on
   the submitting domain (the imdb1 replay in BENCH_coverage.json once
   ran at 0.42x because tiny batches paid full fan-out overhead). The
   results are identical either way. *)
let covers_positive_batch ctx prepared es =
  Pool.map_list (Context.pool ctx) (covers_positive ctx prepared) es

let covers_negative_batch ctx prepared es =
  Pool.map_list (Context.pool ctx) (covers_negative ctx prepared) es

(* ------------------------------------------------------------------ *)
(* Incremental engine: dense-id verdict bitsets, cross-seed cache,
   generalization-monotone inheritance and score-bound pruning. See
   docs/COVERAGE.md for the layout and the soundness argument. *)

let bump counter k = if k <> 0 then Obs.add counter k

(* Resolve the verdicts of [prepared] over [tuples] for one polarity.
   Each distinct example id is decided by, in order: the [assume] set
   (ids whose positive coverage is inherited from the ARMG parent — only
   ever non-empty for positives), the cross-seed cache, and finally an
   actual predicate run over the residue, fanned out through [Pool.fill].
   New verdicts (and the inherited claims) merge monotonically into the
   cache entry under its lock; the predicates run outside any lock, so
   two domains racing on one residue id at worst duplicate idempotent
   work. Returns the interned ids (aligned with [tuples]) and the covered
   set restricted to this universe. *)
let resolve ctx prepared ~negative ~assume tuples =
  let ids = List.map (fun e -> Context.example_id ctx e) tuples in
  if tuples = [] then (ids, Bitset.empty)
  else
    Obs.span "coverage.resolve"
      ~args:[ ("polarity", if negative then "neg" else "pos") ]
    @@ fun () ->
    begin
    let stats = ctx.Context.cover_stats in
    let entry = Context.cover_entry ctx (Memo.force prepared.canon) in
    let tested, covered =
      Mutex.protect entry.Cover_set.lock (fun () ->
          if negative then
            (entry.Cover_set.neg_tested, entry.Cover_set.neg_covered)
          else (entry.Cover_set.pos_tested, entry.Cover_set.pos_covered))
    in
    let seen = Hashtbl.create 16 in
    let inherited = ref [] and cached = ref [] and residue = ref [] in
    List.iter2
      (fun id e ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          if Bitset.mem assume id then inherited := id :: !inherited
          else if Bitset.mem tested id then begin
            bump stats.Context.cache_hits 1;
            if Bitset.mem covered id then cached := id :: !cached
          end
          else residue := (id, e) :: !residue
        end)
      ids tuples;
    bump stats.Context.inherited (List.length !inherited);
    let residue_arr = Array.of_list (List.rev !residue) in
    let nres = Array.length residue_arr in
    let new_tested, new_covered =
      if nres = 0 then ([], [])
      else begin
        let pred = if negative then covers_negative else covers_positive in
        let packed =
          let p i = pred ctx prepared (snd residue_arr.(i)) in
          Pool.fill (Context.pool ctx) ~n:nres p
        in
        bump stats.Context.tested nres;
        let tested_ids = ref [] and covered_ids = ref [] in
        Array.iteri
          (fun i (id, _) ->
            tested_ids := id :: !tested_ids;
            if Bitset.test_packed packed i then covered_ids := id :: !covered_ids)
          residue_arr;
        (!tested_ids, !covered_ids)
      end
    in
    if new_tested <> [] || !inherited <> [] then
      Mutex.protect entry.Cover_set.lock (fun () ->
          if negative then begin
            entry.Cover_set.neg_tested <-
              Bitset.add_list entry.Cover_set.neg_tested new_tested;
            entry.Cover_set.neg_covered <-
              Bitset.add_list entry.Cover_set.neg_covered new_covered
          end
          else begin
            entry.Cover_set.pos_tested <-
              Bitset.add_list entry.Cover_set.pos_tested
                (!inherited @ new_tested);
            entry.Cover_set.pos_covered <-
              Bitset.add_list entry.Cover_set.pos_covered
                (!inherited @ new_covered)
          end);
    (ids, Bitset.of_list (!inherited @ !cached @ new_covered))
  end

let coverage_sets ctx prepared ~pos ~neg =
  let _, pc = resolve ctx prepared ~negative:false ~assume:Bitset.empty pos in
  let _, nc = resolve ctx prepared ~negative:true ~assume:Bitset.empty neg in
  (pc, nc)

(* Counts with multiplicity: a universe may contain duplicate tuples, and
   the from-scratch path counts each occurrence, so bitset cardinality is
   not the count. *)
let count_ids covered ids =
  List.fold_left (fun acc id -> if Bitset.mem covered id then acc + 1 else acc) 0 ids

let count_covered ctx covered tuples =
  count_ids covered (List.map (fun e -> Context.example_id ctx e) tuples)

(* Raise [bound] to [s] unless it is already higher (lock-free max). *)
let rec raise_bound bound s =
  let cur = Atomic.get bound in
  if s > cur && not (Atomic.compare_and_set bound cur s) then raise_bound bound s

(* Score one climb candidate. Positives resolve through [resolve] with
   the parent's covered set as [assume]; the negative sweep is sequential
   (candidate scoring already fans out over the pool, so this runs inside
   a worker) and stops as soon as [p - n_so_far] drops strictly below
   [bound] — at that point the candidate cannot reach the bound, and
   since [bound] only ever holds the parent's score or a fully-evaluated
   candidate's score, a pruned candidate can never sort above (or tie
   with) the batch winner. Returns [(p, n, pos_covered, complete)];
   [n] is a lower bound when [complete] is false. Verdicts computed
   before pruning still merge into the cache — each is individually
   correct. *)
let score_candidate ctx prepared ~assume ~pos ~neg ~bound =
  Obs.span "coverage.score_candidate" @@ fun () ->
  let stats = ctx.Context.cover_stats in
  let pids, pcov = resolve ctx prepared ~negative:false ~assume pos in
  let p = count_ids pcov pids in
  let entry = Context.cover_entry ctx (Memo.force prepared.canon) in
  let tested, covered =
    Mutex.protect entry.Cover_set.lock (fun () ->
        (entry.Cover_set.neg_tested, entry.Cover_set.neg_covered))
  in
  let new_tested = ref [] and new_covered = ref [] in
  let merge () =
    if !new_tested <> [] then
      Mutex.protect entry.Cover_set.lock (fun () ->
          entry.Cover_set.neg_tested <-
            Bitset.add_list entry.Cover_set.neg_tested !new_tested;
          entry.Cover_set.neg_covered <-
            Bitset.add_list entry.Cover_set.neg_covered !new_covered)
  in
  let fresh = Hashtbl.create 16 in
  let rec sweep n = function
    | [] ->
        merge ();
        raise_bound bound (p - n);
        (p, n, pcov, true)
    | e :: rest ->
        if p - n < Atomic.get bound then begin
          merge ();
          bump stats.Context.pruned 1;
          (p, n, pcov, false)
        end
        else begin
          let id = Context.example_id ctx e in
          let verdict =
            if Hashtbl.mem fresh id then Hashtbl.find fresh id
            else if Bitset.mem tested id then begin
              bump stats.Context.cache_hits 1;
              Bitset.mem covered id
            end
            else begin
              let v = covers_negative ctx prepared e in
              bump stats.Context.tested 1;
              Hashtbl.add fresh id v;
              new_tested := id :: !new_tested;
              if v then new_covered := id :: !new_covered;
              v
            end
          in
          sweep (if verdict then n + 1 else n) rest
        end
  in
  sweep 0 neg

let coverage ctx prepared ~pos ~neg =
  Obs.span "coverage.batch" @@ fun () ->
  if ctx.Context.config.Config.incremental_coverage then begin
    let pids, pc = resolve ctx prepared ~negative:false ~assume:Bitset.empty pos in
    let nids, nc = resolve ctx prepared ~negative:true ~assume:Bitset.empty neg in
    (count_ids pc pids, count_ids nc nids)
  end
  else begin
    let count pred es = Pool.filter_count_list (Context.pool ctx) pred es in
    let p = count (covers_positive ctx prepared) pos in
    let n = count (covers_negative ctx prepared) neg in
    (p, n)
  end
