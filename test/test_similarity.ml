open Dlearn_similarity

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %f, got %f" msg expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let swg_tests =
  [
    Alcotest.test_case "identical strings score 1" `Quick (fun () ->
        close "identical" 1.0 (Smith_waterman.similarity "superbad" "superbad"));
    Alcotest.test_case "substring scores 1" `Quick (fun () ->
        close "substring" 1.0 (Smith_waterman.similarity "star wars" "star wars: episode iv"));
    Alcotest.test_case "empty scores 0" `Quick (fun () ->
        close "empty" 0.0 (Smith_waterman.similarity "" "abc"));
    Alcotest.test_case "disjoint alphabets score 0" `Quick (fun () ->
        close "disjoint" 0.0 (Smith_waterman.similarity "aaa" "bbb"));
    Alcotest.test_case "known small case" `Quick (fun () ->
        (* Best local alignment of abc/abd is "ab": raw 2.0; normalised by
           min-length 3. *)
        close "abc vs abd" (2.0 /. 3.0) (Smith_waterman.similarity "abc" "abd"));
    Alcotest.test_case "gap cheaper than mismatch here" `Quick (fun () ->
        (* ac vs abc: align a, open one gap (-0.5), then c: 1 + 1 - 0.5 = 1.5,
           normalised by 2. *)
        close "ac vs abc" 0.75 (Smith_waterman.similarity "ac" "abc"));
    Alcotest.test_case "raw score monotone in common prefix" `Quick (fun () ->
        Alcotest.(check bool) "longer common prefix scores more" true
          (Smith_waterman.raw_score "abcdef" "abcxyz"
          > Smith_waterman.raw_score "abcdef" "abxyzw"));
  ]

let length_tests =
  [
    Alcotest.test_case "ratio of lengths" `Quick (fun () ->
        close "3/6" 0.5 (Length_similarity.similarity "abc" "abcdef"));
    Alcotest.test_case "equal lengths" `Quick (fun () ->
        close "1" 1.0 (Length_similarity.similarity "abc" "xyz"));
    Alcotest.test_case "both empty" `Quick (fun () ->
        close "1" 1.0 (Length_similarity.similarity "" ""));
    Alcotest.test_case "one empty" `Quick (fun () ->
        close "0" 0.0 (Length_similarity.similarity "" "x"));
  ]

let levenshtein_tests =
  [
    Alcotest.test_case "kitten/sitting = 3" `Quick (fun () ->
        Alcotest.(check int) "distance" 3 (Levenshtein.distance "kitten" "sitting"));
    Alcotest.test_case "empty vs word" `Quick (fun () ->
        Alcotest.(check int) "distance" 4 (Levenshtein.distance "" "word"));
    Alcotest.test_case "identical" `Quick (fun () ->
        Alcotest.(check int) "distance" 0 (Levenshtein.distance "same" "same"));
    Alcotest.test_case "similarity normalised" `Quick (fun () ->
        close "1 - 3/7" (1.0 -. (3.0 /. 7.0)) (Levenshtein.similarity "kitten" "sitting"));
    Alcotest.test_case "sunday/saturday = 3" `Quick (fun () ->
        Alcotest.(check int) "distance" 3 (Levenshtein.distance "sunday" "saturday"));
    Alcotest.test_case "flaw/lawn = 2" `Quick (fun () ->
        Alcotest.(check int) "distance" 2 (Levenshtein.distance "flaw" "lawn"));
  ]

let jaro_tests =
  [
    Alcotest.test_case "martha/marhta" `Quick (fun () ->
        close ~eps:1e-4 "jaro" 0.9444 (Jaro_winkler.jaro "martha" "marhta");
        close ~eps:1e-4 "jw" 0.9611 (Jaro_winkler.similarity "martha" "marhta"));
    Alcotest.test_case "dwayne/duane" `Quick (fun () ->
        close ~eps:1e-4 "jaro" 0.8222 (Jaro_winkler.jaro "dwayne" "duane");
        close ~eps:1e-4 "jw" 0.8400 (Jaro_winkler.similarity "dwayne" "duane"));
    Alcotest.test_case "no common characters" `Quick (fun () ->
        close "0" 0.0 (Jaro_winkler.jaro "abc" "xyz"));
    Alcotest.test_case "dixon/dicksonx" `Quick (fun () ->
        (* The other classic Winkler pair: m=4, t=0 ->
           (4/5 + 4/8 + 4/4)/3 = 0.7667; prefix "di" lifts it to 0.8133. *)
        close ~eps:1e-4 "jaro" 0.7667 (Jaro_winkler.jaro "dixon" "dicksonx");
        close ~eps:1e-4 "jw" 0.8133 (Jaro_winkler.similarity "dixon" "dicksonx"));
  ]

let ngram_tests =
  [
    Alcotest.test_case "gram count with padding" `Quick (fun () ->
        (* "ab" padded to "##ab$$": 4 trigrams. *)
        Alcotest.(check int) "4 trigrams" 4 (List.length (Ngram.grams ~n:3 "ab")));
    Alcotest.test_case "empty string has no grams" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (List.length (Ngram.grams ~n:3 "")));
    Alcotest.test_case "jaccard of identical strings" `Quick (fun () ->
        close "1" 1.0 (Ngram.jaccard ~n:3 "superbad" "superbad"));
    Alcotest.test_case "jaccard is case-insensitive" `Quick (fun () ->
        close "1" 1.0 (Ngram.jaccard ~n:3 "SuperBad" "superbad"));
    Alcotest.test_case "dice >= jaccard" `Quick (fun () ->
        let a = "star wars iv" and b = "star wars: episode iv" in
        Alcotest.(check bool) "dice >= jaccard" true
          (Ngram.dice ~n:3 a b >= Ngram.jaccard ~n:3 a b));
  ]

let combined_tests =
  [
    Alcotest.test_case "paper operator is the average" `Quick (fun () ->
        let a = "star wars" and b = "star wars: episode iv - 1977" in
        close "average"
          ((Smith_waterman.similarity a b +. Length_similarity.similarity a b) /. 2.0)
          (Combined.paper a b));
    Alcotest.test_case "case-insensitive" `Quick (fun () ->
        close "1" 1.0 (Combined.paper "Superbad" "SUPERBAD"));
    Alcotest.test_case "heterogeneous titles are similar" `Quick (fun () ->
        Alcotest.(check bool) "above 0.6" true
          (Combined.paper "Superbad" "Superbad (2007)" > 0.6));
    Alcotest.test_case "unrelated titles are dissimilar" `Quick (fun () ->
        Alcotest.(check bool) "below 0.6" true
          (Combined.paper "Superbad" "The Orphanage" < 0.6));
  ]

let sim_index_tests =
  let titles =
    [
      "Star Wars: Episode IV - 1977";
      "Star Wars: Episode III - 2005";
      "Superbad (2007)";
      "Zoolander (2001)";
      "The Orphanage (2007)";
    ]
  in
  [
    Alcotest.test_case "exact value found with score 1" `Quick (fun () ->
        let idx = Sim_index.create titles in
        match Sim_index.query idx ~km:1 ~threshold:0.9 "Superbad (2007)" with
        | [ (v, s) ] ->
            Alcotest.(check string) "value" "Superbad (2007)" v;
            close "score" 1.0 s
        | other -> Alcotest.failf "expected 1 hit, got %d" (List.length other));
    Alcotest.test_case "ambiguous match returns both episodes" `Quick (fun () ->
        let idx = Sim_index.create titles in
        let hits = Sim_index.query idx ~km:5 ~threshold:0.5 "Star Wars" in
        Alcotest.(check bool) "at least 2" true (List.length hits >= 2);
        let names = List.map fst hits in
        Alcotest.(check bool) "episode IV found" true
          (List.mem "Star Wars: Episode IV - 1977" names);
        Alcotest.(check bool) "episode III found" true
          (List.mem "Star Wars: Episode III - 2005" names));
    Alcotest.test_case "km cuts the result list" `Quick (fun () ->
        let idx = Sim_index.create titles in
        let hits = Sim_index.query idx ~km:1 ~threshold:0.3 "Star Wars" in
        Alcotest.(check int) "1 hit" 1 (List.length hits));
    Alcotest.test_case "results sorted by score" `Quick (fun () ->
        let idx = Sim_index.create titles in
        let hits = Sim_index.query idx ~km:5 ~threshold:0.2 "Superbad" in
        let scores = List.map snd hits in
        Alcotest.(check bool) "descending" true
          (List.sort (fun a b -> Float.compare b a) scores = scores));
    Alcotest.test_case "blocked query equals brute force on titles" `Quick (fun () ->
        let idx = Sim_index.create titles in
        List.iter
          (fun q ->
            let a = Sim_index.query idx ~km:5 ~threshold:0.6 q in
            let b = Sim_index.query_brute idx ~km:5 ~threshold:0.6 q in
            Alcotest.(check (list (pair string (float 1e-9)))) ("query " ^ q) b a)
          [ "Star Wars"; "Superbad"; "Zoolander"; "Orphanage" ]);
    Alcotest.test_case "match_pairs links columns" `Quick (fun () ->
        let pairs =
          Sim_index.match_pairs ~km:2 ~threshold:0.5 [ "Star Wars"; "Superbad" ]
            titles
        in
        Alcotest.(check bool) "nonempty" true (List.length pairs >= 2);
        List.iter
          (fun (_, _, s) ->
            Alcotest.(check bool) "score above threshold" true (s >= 0.5))
          pairs);
    Alcotest.test_case "deduplicates stored values" `Quick (fun () ->
        let idx = Sim_index.create [ "same"; "same"; "same" ] in
        Alcotest.(check int) "1 distinct" 1 (Sim_index.size idx));
  ]

let measure_tests =
  [
    Alcotest.test_case "index honours the configured measure" `Quick (fun () ->
        (* Under Levenshtein, "abcd" vs "abcx" scores 0.75; the paper
           operator scores it differently — check the measure is actually
           threaded through the index. *)
        let values = [ "abcd" ] in
        let lev = Sim_index.create ~measure:Combined.Levenshtein values in
        let hits = Sim_index.query lev ~km:1 ~threshold:0.74 "abcx" in
        Alcotest.(check int) "levenshtein accepts at 0.74" 1 (List.length hits);
        let jac = Sim_index.create ~measure:(Combined.Ngram_jaccard 3) values in
        let hits' = Sim_index.query jac ~km:1 ~threshold:0.74 "abcx" in
        Alcotest.(check int) "trigram jaccard rejects at 0.74" 0
          (List.length hits'));
    Alcotest.test_case "measure names are distinct" `Quick (fun () ->
        let names =
          List.map Combined.measure_name
            [
              Combined.Paper; Combined.Smith_waterman; Combined.Levenshtein;
              Combined.Jaro_winkler; Combined.Ngram_jaccard 3;
            ]
        in
        Alcotest.(check int) "5 distinct" 5
          (List.length (List.sort_uniq String.compare names)));
  ]

let qcheck_tests =
  let word =
    QCheck.make
      ~print:(fun s -> s)
      QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 10))
  in
  let pair_words = QCheck.pair word word in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"swg similarity is symmetric" ~count:300 pair_words
         (fun (a, b) ->
           Float.abs (Smith_waterman.similarity a b -. Smith_waterman.similarity b a)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"swg similarity within [0,1]" ~count:300 pair_words
         (fun (a, b) ->
           let s = Smith_waterman.similarity a b in
           s >= 0.0 && s <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein symmetric" ~count:300 pair_words
         (fun (a, b) -> Levenshtein.distance a b = Levenshtein.distance b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
         (QCheck.triple word word word) (fun (a, b, c) ->
           Levenshtein.distance a c
           <= Levenshtein.distance a b + Levenshtein.distance b c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein identity of indiscernibles" ~count:300
         pair_words (fun (a, b) -> Levenshtein.distance a b = 0 = (a = b)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"combined similarity bounded for all measures"
         ~count:200 pair_words (fun (a, b) ->
           List.for_all
             (fun m ->
               let s = Combined.similarity ~measure:m a b in
               s >= 0.0 && s <= 1.0)
             [
               Combined.Paper;
               Combined.Smith_waterman;
               Combined.Levenshtein;
               Combined.Jaro_winkler;
               Combined.Ngram_jaccard 3;
             ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"jaro-winkler >= jaro" ~count:300 pair_words
         (fun (a, b) ->
           Jaro_winkler.similarity a b >= Jaro_winkler.jaro a b -. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"swg raw score is symmetric" ~count:300 pair_words
         (fun (a, b) ->
           Float.abs (Smith_waterman.raw_score a b -. Smith_waterman.raw_score b a)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"blocked query is a subset of brute force" ~count:100
         (QCheck.pair word (QCheck.list_of_size (QCheck.Gen.int_range 1 8) word))
         (fun (q, vs) ->
           let idx = Sim_index.create vs in
           let blocked = Sim_index.query idx ~km:10 ~threshold:0.5 q in
           let brute = Sim_index.query_brute idx ~km:10 ~threshold:0.5 q in
           List.for_all (fun (v, _) -> List.mem_assoc v brute) blocked));
    (let nonempty_word =
       QCheck.make
         ~print:(fun s -> s)
         QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (1 -- 10))
     in
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make
          ~name:"blocked query equals brute force above threshold 0.9"
          ~count:200
          (QCheck.pair nonempty_word
             (QCheck.list_of_size (QCheck.Gen.int_range 1 8) nonempty_word))
          (fun (q, vs) ->
            (* At 0.9 under the paper operator, any qualifying pair is so
               close in edit structure that it must share a padded
               trigram, so n-gram blocking loses nothing and the blocked
               query is exactly the brute-force scan. (At lower
               thresholds this fails: "ab" vs "ba" scores 0.75 yet
               shares no padded trigram.) *)
            let norm l = List.sort compare l in
            let idx = Sim_index.create vs in
            let blocked = Sim_index.query idx ~km:10 ~threshold:0.9 q in
            let brute = Sim_index.query_brute idx ~km:10 ~threshold:0.9 q in
            norm blocked = norm brute)));
  ]

let () =
  Alcotest.run "similarity"
    [
      ("smith_waterman", swg_tests);
      ("length", length_tests);
      ("levenshtein", levenshtein_tests);
      ("jaro_winkler", jaro_tests);
      ("ngram", ngram_tests);
      ("combined", combined_tests);
      ("sim_index", sim_index_tests);
      ("measures", measure_tests);
      ("properties", qcheck_tests);
    ]
