type t = {
  schema : Schema.t;
  mutable tuples : Tuple.t array;
  mutable size : int;
  indexes : Index.t array;
}

let create schema =
  {
    schema;
    tuples = Array.make 16 [||];
    size = 0;
    indexes = Array.init (Schema.arity schema) (fun _ -> Index.create ());
  }

let schema t = t.schema
let name t = Schema.name t.schema
let cardinality t = t.size

let ensure_capacity t =
  if t.size = Array.length t.tuples then begin
    let bigger = Array.make (2 * Array.length t.tuples) [||] in
    Array.blit t.tuples 0 bigger 0 t.size;
    t.tuples <- bigger
  end

let insert t tuple =
  if Tuple.arity tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity %d tuple into %s"
         (Tuple.arity tuple) (Schema.name t.schema));
  ensure_capacity t;
  let id = t.size in
  t.tuples.(id) <- tuple;
  t.size <- t.size + 1;
  Array.iteri (fun pos idx -> Index.add idx (Tuple.get tuple pos) id) t.indexes;
  id

let insert_all t tuples = List.iter (fun tu -> ignore (insert t tu)) tuples

let get t id =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Relation.get: id %d out of range" id);
  t.tuples.(id)

let select_eq t pos v = Index.lookup t.indexes.(pos) v
let holds_value t pos v = Index.mem t.indexes.(pos) v
let distinct_values t pos = Index.distinct_values t.indexes.(pos)

let iter f t =
  for id = 0 to t.size - 1 do
    f id t.tuples.(id)
  done

let fold f t init =
  let acc = ref init in
  iter (fun id tu -> acc := f id tu !acc) t;
  !acc

let to_list t = List.rev (fold (fun _ tu acc -> tu :: acc) t [])

let filter p t =
  let t' = create t.schema in
  iter (fun _ tu -> if p tu then ignore (insert t' tu)) t;
  t'

let map_tuples f t =
  let t' = create t.schema in
  iter (fun _ tu -> ignore (insert t' (f tu))) t;
  t'

let contains t tuple =
  if Tuple.arity tuple <> Schema.arity t.schema then false
  else
    select_eq t 0 (Tuple.get tuple 0)
    |> List.exists (fun id -> Tuple.equal (get t id) tuple)

let copy t = map_tuples Fun.id t

let pp fmt t =
  Format.fprintf fmt "@[<v>%a [%d tuples]" Schema.pp t.schema t.size;
  iter (fun _ tu -> Format.fprintf fmt "@,  %a" Tuple.pp tu) t;
  Format.fprintf fmt "@]"
