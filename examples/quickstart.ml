(* Quickstart: learn a definition directly over a small dirty database.

   Two sources describe the same movies: IMDB-style rows keyed by id, and
   BOM-style rating rows keyed by a *differently formatted* title. No
   cleaning happens; a matching dependency declares the titles similar,
   and DLearn learns across the heterogeneity.

   Run with: dune exec examples/quickstart.exe *)

open Dlearn_relation
open Dlearn_constraints
open Dlearn_core

let () =
  (* 1. Build the database. *)
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.string_attrs "movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "2001" ];
      Tuple.of_strings [ "m3"; "The Orphanage (2007)"; "2007" ];
      Tuple.of_strings [ "m4"; "Alien (1979)"; "1979" ];
    ];
  let genres =
    Database.create_relation db (Schema.string_attrs "genres" [ "id"; "genre" ])
  in
  Relation.insert_all genres
    [
      Tuple.of_strings [ "m1"; "comedy" ];
      Tuple.of_strings [ "m2"; "comedy" ];
      Tuple.of_strings [ "m3"; "drama" ];
      Tuple.of_strings [ "m4"; "scifi" ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.string_attrs "ratings" [ "title"; "rating" ])
  in
  Relation.insert_all ratings
    [
      Tuple.of_strings [ "Superbad [2007]"; "R" ];
      Tuple.of_strings [ "Zoolander [2001]"; "PG-13" ];
      Tuple.of_strings [ "The Orphanage [2007]"; "R" ];
      Tuple.of_strings [ "Alien [1979]"; "R" ];
    ];
  print_endline "The database (note the two title formats):";
  print_string (Text_table.of_relation movies);
  print_string (Text_table.of_relation ratings);

  (* 2. Declare the matching dependency: similar titles refer to the same
     movie. *)
  let md =
    Md.make ~id:"titles" ~left:"movies" ~right:"ratings"
      ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
  in
  Printf.printf "\nMD: %s\n\n" (Md.to_string md);

  (* 3. Configure the learner and give it training examples for the target
     relation restricted(id): movies rated R. *)
  let target = Schema.string_attrs "restricted" [ "id" ] in
  let config =
    {
      (Config.default ~target) with
      Config.constant_attrs = [ ("ratings", "rating"); ("genres", "genre") ];
      sim = { Md.default_sim with Md.threshold = 0.7 };
    }
  in
  let ctx = Context.create config db [ md ] [] in
  let pos = [ Tuple.of_strings [ "m1" ]; Tuple.of_strings [ "m3" ]; Tuple.of_strings [ "m4" ] ] in
  let neg = [ Tuple.of_strings [ "m2" ] ] in

  (* 4. Peek at the bottom clause the learner starts from: similarity
     literals and repair literals represent the possible repairs. *)
  let bottom = Bottom_clause.build ctx Bottom_clause.Variable (List.hd pos) in
  Printf.printf "Bottom clause of restricted(m1):\n%s\n\n"
    (Dlearn_logic.Clause.to_string bottom);

  (* 5. Learn. *)
  let result = Learner.learn ctx ~pos ~neg in
  Printf.printf "Learned definition (%.2fs):\n%s\n\n" result.Learner.seconds
    (Dlearn_logic.Definition.to_string result.Learner.definition);

  (* 6. Use it. *)
  List.iter
    (fun id ->
      let e = Tuple.of_strings [ id ] in
      Printf.printf "restricted(%s)? %b\n" id
        (Learner.predict ctx result.Learner.definition e))
    [ "m1"; "m2"; "m3"; "m4" ]
