(** Stored relation instances.

    A relation couples a {!Schema.t} with a growable tuple store and one
    hash index per attribute. Tuples are addressed by dense integer ids in
    insertion order. Duplicate tuples are allowed — deduplication is a
    cleaning decision this system deliberately does not make. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val name : t -> string

(** [snapshot t] is an immutable view of [t] at its current cardinality,
    in O(arity): the view shares the tuple store and indexes with [t], so
    later inserts into [t] (which only append) are invisible to it —
    index probes are bounded by the view's size. {!insert} on a snapshot
    raises [Invalid_argument]. Snapshots are the per-version relation
    handles of {!Vdb}. *)
val snapshot : t -> t

(** [is_snapshot t] — [true] for views produced by {!snapshot}. *)
val is_snapshot : t -> bool

(** [with_tuple t id tuple] is a fresh live relation with tuple [id]
    replaced — copy-on-write at relation granularity, O(cardinality);
    snapshots of [t] keep the old tuple.
    @raise Invalid_argument on a bad id or arity. *)
val with_tuple : t -> int -> Tuple.t -> t

(** [insert t tuple] stores [tuple] and returns its id.
    @raise Invalid_argument if the arity differs from the schema. *)
val insert : t -> Tuple.t -> int

val insert_all : t -> Tuple.t list -> unit

val cardinality : t -> int

(** [get t id] returns the stored tuple.
    @raise Invalid_argument on an out-of-range id. *)
val get : t -> int -> Tuple.t

(** [select_eq t pos v] returns ids of tuples whose attribute [pos] equals
    [v], via the index. *)
val select_eq : t -> int -> Value.t -> int list

(** [holds_value t pos v] is [select_eq t pos v <> []] without building the
    list. *)
val holds_value : t -> int -> Value.t -> bool

(** [distinct_values t pos] lists the distinct values of attribute [pos]. *)
val distinct_values : t -> int -> Value.t list

val iter : (int -> Tuple.t -> unit) -> t -> unit

val fold : (int -> Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> Tuple.t list

(** [filter p t] returns a fresh relation (same schema) keeping tuples
    satisfying [p]. *)
val filter : (Tuple.t -> bool) -> t -> t

(** [map_tuples f t] returns a fresh relation with each tuple replaced by
    [f tuple]; arities must be preserved. *)
val map_tuples : (Tuple.t -> Tuple.t) -> t -> t

(** [contains t tuple] tests membership (uses the first attribute index to
    narrow candidates). *)
val contains : t -> Tuple.t -> bool

val copy : t -> t

val pp : Format.formatter -> t -> unit
