module Obs = Dlearn_obs.Obs

(* Streaming counters, shared with [Storage.scan]: every record parsed
   and every chunk byte read is visible in the metrics registry. *)
let rows_streamed_c = Obs.counter "storage.rows_streamed"
let bytes_streamed_c = Obs.counter "storage.bytes_streamed"

(* [parse_fields ~delim ~buf s pos len] splits the record [s[pos..pos+len)]
   into fields, reusing [buf] as the field accumulator so the streaming
   reader allocates nothing per record beyond the field strings
   themselves. *)
let parse_fields ~delim ~buf s pos len =
  let stop = pos + len in
  let fields = ref [] in
  Buffer.clear buf;
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* States: outside quotes / inside quotes. *)
  let rec outside i =
    if i >= stop then flush_field ()
    else if s.[i] = delim then begin
      flush_field ();
      outside (i + 1)
    end
    else if s.[i] = '"' && Buffer.length buf = 0 then inside (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      outside (i + 1)
    end
  and inside i =
    if i >= stop then flush_field () (* unterminated quote: accept *)
    else if s.[i] = '"' then
      if i + 1 < stop && s.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        inside (i + 2)
      end
      else outside (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      inside (i + 1)
    end
  in
  outside pos;
  List.rev !fields

let parse_line ?(delim = ',') s =
  parse_fields ~delim ~buf:(Buffer.create 32) s 0 (String.length s)

let needs_quoting delim field =
  String.exists (fun c -> c = delim || c = '"' || c = '\n' || c = '\r') field

let render_field delim field =
  if needs_quoting delim field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let render_line ?(delim = ',') fields =
  String.concat (String.make 1 delim) (List.map (render_field delim) fields)

(* {2 Streaming reader}

   The file is read in fixed-size binary chunks; records that lie fully
   inside a chunk are parsed in place, and only the (rare) record
   spanning a chunk boundary goes through the carry buffer — which is
   reused, like the field buffer, so steady-state reading allocates one
   string per chunk plus the field contents. This replaces the old
   line-at-a-time [input_line] loop: no per-line string, no whole-file
   materialization, and it is the substrate [fold] / [Storage.scan]
   stream 10⁵–10⁶-tuple datasets through (docs/SCALE.md). *)

let chunk_bytes = 65536

let fold_records ?(delim = ',') path ~init ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let chunk = Bytes.create chunk_bytes in
      let carry = Buffer.create 256 in
      let buf = Buffer.create 64 in
      let acc = ref init in
      let line_no = ref 0 in
      let emit s pos len =
        (* CRLF files: strip one trailing \r. Unquoted fields cannot
           contain \r (save quotes them), so this is always safe. *)
        let len =
          if len > 0 && s.[pos + len - 1] = '\r' then len - 1 else len
        in
        incr line_no;
        if len > 0 then begin
          Obs.incr rows_streamed_c;
          acc := f !acc !line_no (parse_fields ~delim ~buf s pos len)
        end
      in
      let rec read_loop () =
        let got = input ic chunk 0 chunk_bytes in
        if got = 0 then begin
          if Buffer.length carry > 0 then begin
            let s = Buffer.contents carry in
            Buffer.clear carry;
            emit s 0 (String.length s)
          end
        end
        else begin
          Obs.add bytes_streamed_c got;
          let s = Bytes.sub_string chunk 0 got in
          let start = ref 0 in
          (try
             while true do
               let nl = String.index_from s !start '\n' in
               if Buffer.length carry > 0 then begin
                 Buffer.add_substring carry s !start (nl - !start);
                 let line = Buffer.contents carry in
                 Buffer.clear carry;
                 emit line 0 (String.length line)
               end
               else emit s !start (nl - !start);
               start := nl + 1
             done
           with Not_found ->
             if !start < got then Buffer.add_substring carry s !start (got - !start));
          read_loop ()
        end
      in
      read_loop ();
      !acc)

let check_arity schema path line_no fields =
  let arity = List.length fields in
  if arity <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Csv.load: %s line %d: %d fields, expected %d" path
         line_no arity (Schema.arity schema))

let fold ?delim schema path ~init ~f =
  fold_records ?delim path ~init ~f:(fun acc line_no fields ->
      check_arity schema path line_no fields;
      f acc (Tuple.of_strings fields))

let iter ?delim schema path ~f =
  fold ?delim schema path ~init:() ~f:(fun () tu -> f tu)

let load ?delim schema path =
  let rel = Relation.create schema in
  iter ?delim schema path ~f:(fun tu -> ignore (Relation.insert rel tu));
  rel

let save ?(delim = ',') relation path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Relation.iter
        (fun _ tu ->
          let fields =
            Array.to_list (Array.map Value.to_string tu)
          in
          output_string oc (render_line ~delim fields);
          output_char oc '\n')
        relation)
