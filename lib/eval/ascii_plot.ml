let width = 40

let series ~title ~unit_label points =
  let max_value =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 points
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 points
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s (%s)\n" title unit_label);
  List.iter
    (fun (label, v) ->
      let bar_len =
        if max_value <= 0.0 then 0
        else int_of_float (Float.round (v /. max_value *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s | %-*s %.2f\n" label_width label width
           (String.make bar_len '#') v))
    points;
  Buffer.contents buf

let print_series ~title ~unit_label points =
  print_string (series ~title ~unit_label points)
