open Dlearn_relation

type t = {
  values : string array;
  by_gram : (string, int list ref) Hashtbl.t;
  n : int;
  measure : Combined.measure;
}

let create ?(n = 3) ?(measure = Combined.default) values =
  let distinct = List.sort_uniq String.compare values in
  let values = Array.of_list distinct in
  let by_gram = Hashtbl.create (Array.length values * 4) in
  Array.iteri
    (fun i v ->
      List.iter
        (fun g ->
          match Hashtbl.find_opt by_gram g with
          | Some ids -> ids := i :: !ids
          | None -> Hashtbl.add by_gram g (ref [ i ]))
        (Ngram.gram_set ~n v))
    values;
  { values; by_gram; n; measure }

let of_values ?n ?measure vs =
  let strings =
    List.filter_map
      (fun v -> if Value.is_null v then None else Some (Value.as_string v))
      vs
  in
  create ?n ?measure strings

let size t = Array.length t.values

let take km xs =
  let rec go i = function
    | [] -> []
    | _ when i >= km -> []
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 xs

let rank_and_cut t ~km ~threshold s candidate_ids =
  let scored =
    List.filter_map
      (fun i ->
        let v = t.values.(i) in
        let score = Combined.similarity ~measure:t.measure s v in
        if score >= threshold then Some (v, score) else None)
      candidate_ids
  in
  let sorted =
    List.sort
      (fun (v1, s1) (v2, s2) ->
        match Float.compare s2 s1 with
        | 0 -> String.compare v1 v2
        | c -> c)
      scored
  in
  take km sorted

let query t ~km ~threshold s =
  let seen = Hashtbl.create 64 in
  let candidates = ref [] in
  List.iter
    (fun g ->
      match Hashtbl.find_opt t.by_gram g with
      | Some ids ->
          List.iter
            (fun i ->
              if not (Hashtbl.mem seen i) then begin
                Hashtbl.add seen i ();
                candidates := i :: !candidates
              end)
            !ids
      | None -> ())
    (Ngram.gram_set ~n:t.n s);
  rank_and_cut t ~km ~threshold s !candidates

let query_brute t ~km ~threshold s =
  rank_and_cut t ~km ~threshold s
    (List.init (Array.length t.values) Fun.id)

let match_pairs ?n ?measure ~km ~threshold left right =
  let index = create ?n ?measure right in
  let left = List.sort_uniq String.compare left in
  List.concat_map
    (fun l ->
      query index ~km ~threshold l
      |> List.map (fun (r, score) -> (l, r, score)))
    left
