(** Clause lints (analyzer pass 1).

    Structural checks on one clause, independent of the database catalog:

    - [DL101] (error): unsafe head variable — a head variable that occurs
      in no body schema atom. θ-subsumption and coverage are only
      meaningful for range-restricted clauses (§3.2).
    - [DL102] (warning): body literal not head-connected — the literal
      {!Dlearn_logic.Clause.head_connected} would silently drop; reported
      with the dropped literal as witness.
    - [DL103] (warning): singleton variable — a variable with exactly one
      occurrence in the clause; it constrains nothing and usually spells a
      typo.
    - [DL104] (warning): duplicate body literal.
    - [DL105] (warning): tautological restriction literal ([t = t],
      [t ~ t]) — always satisfied, adds no information.
    - [DL106] (error): contradictory restriction literal ([t != t], or an
      equality of two distinct constants) — the clause can cover nothing.

    Repair literals are ignored by these lints (they are machine-built and
    validated by construction). *)

val check : Dlearn_logic.Clause.t -> Diagnostic.t list
