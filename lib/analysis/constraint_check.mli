(** Constraint-set analysis (analyzer pass 3).

    Checks the declared MDs and CFDs against the database catalog and
    against each other:

    - [DL301] (error): CFD over a relation absent from the catalog.
    - [DL302] (error): CFD attribute missing from its relation's schema.
    - [DL303] (warning): CFD pattern constant whose type conflicts with
      the attribute domain — the pattern can never match.
    - [DL304] (error): unsatisfiable CFD set — no non-empty instance can
      satisfy it (Bohannon-style one-tuple reduction, see
      {!Dlearn_constraints.Consistency}); the witness is a minimal
      conflicting core with its patterns.
    - [DL305] (warning): redundant CFD — subsumed by another CFD with the
      same conclusion over a subset of its left-hand side with patterns at
      least as general.
    - [DL306] (warning): duplicate constraint identifier.
    - [DL307] (hint): constraint over an empty relation — vacuously
      satisfied.
    - [DL310] (error): MD over a relation absent from the catalog.
    - [DL311] (error): MD attribute missing from its relation's schema.
    - [DL312] (error): MD attribute that is not string-typed — [≈] is
      defined on string domains (§2.2).
    - [DL313] (error): MD threshold override outside (0, 1].
    - [DL314] (warning): cyclic MD interaction — a cycle of two or more
      MDs where applying one modifies attributes another compares;
      enforcement may cascade across the cycle. (An MD re-triggering
      itself is the normal, idempotent merge semantics and is not
      reported.) *)

val check :
  Dlearn_relation.Database.t ->
  mds:Dlearn_constraints.Md.t list ->
  cfds:Dlearn_constraints.Cfd.t list ->
  Diagnostic.t list
