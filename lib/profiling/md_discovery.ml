open Dlearn_relation

type stats = {
  left_values : int;
  matched : int;
  ambiguous : int;
  coverage : float;
  ambiguity : float;
}

let attribute_stats ?measure ?(margin = 0.1) ~threshold left lpos right rpos =
  let index =
    Dlearn_similarity.Sim_index.of_values ?measure
      (Relation.distinct_values right rpos)
  in
  let lefts =
    List.filter
      (fun v -> not (Value.is_null v))
      (Relation.distinct_values left lpos)
  in
  let matched = ref 0 and ambiguous = ref 0 in
  List.iter
    (fun v ->
      match
        Dlearn_similarity.Sim_index.query index ~km:2 ~threshold
          (Value.as_string v)
      with
      | [] -> ()
      | [ _ ] -> incr matched
      | (_, s1) :: (_, s2) :: _ ->
          incr matched;
          (* A match is ambiguous when the runner-up is nearly as good:
             the similarity cannot tell the candidates apart. *)
          if s1 -. s2 < margin then incr ambiguous)
    lefts;
  let left_values = List.length lefts in
  {
    left_values;
    matched = !matched;
    ambiguous = !ambiguous;
    coverage =
      (if left_values = 0 then 0.0
       else float_of_int !matched /. float_of_int left_values);
    ambiguity =
      (if !matched = 0 then 0.0
       else float_of_int !ambiguous /. float_of_int !matched);
  }

let discover ?measure ?(threshold = 0.7) ?(min_coverage = 0.5)
    ?(max_ambiguity = 0.5) ?margin db left_name right_name =
  let left = Database.find db left_name in
  let right = Database.find db right_name in
  let ls = Relation.schema left and rs = Relation.schema right in
  let pairs = ref [] in
  for lpos = 0 to Schema.arity ls - 1 do
    for rpos = 0 to Schema.arity rs - 1 do
      if Schema.comparable ls lpos rs rpos then begin
        let stats =
          attribute_stats ?measure ?margin ~threshold left lpos right rpos
        in
        if stats.coverage >= min_coverage && stats.ambiguity <= max_ambiguity
        then begin
          let la = Schema.attr_name ls lpos and ra = Schema.attr_name rs rpos in
          let md =
            Dlearn_constraints.Md.make
              ~id:(Printf.sprintf "md:%s.%s~%s.%s" left_name la right_name ra)
              ~left:left_name ~right:right_name
              ~compared:[ (la, ra) ]
              ~unified:(la, ra) ()
          in
          pairs := (md, stats) :: !pairs
        end
      end
    done
  done;
  List.rev !pairs
