let domain_to_string = function
  | Schema.Dint -> "int"
  | Schema.Dfloat -> "float"
  | Schema.Dstring -> "string"

let domain_of_string = function
  | "int" -> Schema.Dint
  | "float" -> Schema.Dfloat
  | "string" -> Schema.Dstring
  | other -> invalid_arg ("Storage: unknown domain " ^ other)

let manifest_path dir = Filename.concat dir "manifest.txt"
let csv_path dir name = Filename.concat dir (name ^ ".csv")

let save db dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (manifest_path dir) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun r ->
          let schema = Relation.schema r in
          let attrs =
            Array.to_list (Schema.attributes schema)
            |> List.map (fun (a : Schema.attribute) ->
                   Printf.sprintf "%s:%s" a.attr_name (domain_to_string a.domain))
          in
          Printf.fprintf oc "%s|%s\n" (Schema.name schema)
            (String.concat "," attrs))
        (Database.relations db));
  List.iter
    (fun r -> Csv.save r (csv_path dir (Relation.name r)))
    (Database.relations db)

(* Re-type a parsed value according to the declared domain: strings that
   look numeric must stay strings when the domain says so. *)
let coerce domain v =
  match domain, v with
  | Schema.Dstring, Value.Null -> Value.Null
  | Schema.Dstring, other -> Value.String (Value.to_string other)
  | (Schema.Dint | Schema.Dfloat), other -> other

let load dir =
  let db = Database.create () in
  let ic = open_in (manifest_path dir) in
  let entries =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.length line > 0 then begin
               match String.index_opt line '|' with
               | None -> invalid_arg ("Storage: malformed manifest line " ^ line)
               | Some i ->
                   let name = String.sub line 0 i in
                   let attrs =
                     String.sub line (i + 1) (String.length line - i - 1)
                     |> String.split_on_char ','
                     |> List.map (fun spec ->
                            match String.split_on_char ':' spec with
                            | [ attr_name; domain ] ->
                                {
                                  Schema.attr_name;
                                  domain = domain_of_string domain;
                                }
                            | _ ->
                                invalid_arg
                                  ("Storage: malformed attribute " ^ spec))
                   in
                   entries := (name, attrs) :: !entries
             end
           done
         with End_of_file -> ());
        List.rev !entries)
  in
  List.iter
    (fun (name, attrs) ->
      let schema = Schema.make name attrs in
      let raw = Csv.load schema (csv_path dir name) in
      let typed =
        Relation.map_tuples
          (fun t ->
            Tuple.make
              (List.init (Tuple.arity t) (fun i ->
                   coerce (Schema.domain schema i) (Tuple.get t i))))
          raw
      in
      Database.add_relation db typed)
    entries;
  db
