(** Detection of CFD violations in stored relations.

    Violations are reported as pairs of tuple ids [(id1, id2)] with
    [id1 <= id2]; a single-tuple violation of a constant right-hand-side
    pattern is the pair [(id, id)]. Detection groups tuples by their
    left-hand-side values through the relation's indexes, so the scan is
    linear in the relation plus the size of the violating groups. *)

(** [find t relation] lists the violating pairs of [t] in [relation].
    @raise Invalid_argument when [relation]'s name differs from the CFD's
    relation. *)
val find : Cfd.t -> Dlearn_relation.Relation.t -> (int * int) list

(** [find_all cfds db] lists violations of every CFD whose relation exists
    in [db], tagged by CFD. *)
val find_all :
  Cfd.t list ->
  Dlearn_relation.Database.t ->
  (Cfd.t * (int * int) list) list

(** [count cfds db] is the total number of violating pairs. *)
val count : Cfd.t list -> Dlearn_relation.Database.t -> int

(** [satisfies cfds db] holds when no CFD is violated. *)
val satisfies : Cfd.t list -> Dlearn_relation.Database.t -> bool
