(** Unified observability: a process-wide metrics registry and a span API
    with Chrome-trace export.

    The paper's evaluation (§6) is about where learning time goes; this
    module gives every subsystem one way to answer that. Three kinds of
    metric live in a single registry keyed by dotted lowercase names
    (see docs/OBSERVABILITY.md for the naming scheme):

    - {b counters} — monotone integer totals ([subsumption.nodes]);
    - {b gauges} — last-write-wins floats ([pool.4.domains]);
    - {b histograms} — duration aggregates in nanoseconds (count / total /
      min / max), fed by {!observe_ns} and {!span}.

    Metric cells are sharded per domain: each domain writes its own cell
    (reached through domain-local storage, no lock on the hot path) and
    readers merge the shards, so [Pool] workers record without contention.
    Values read while writers are running may be a few updates stale;
    totals are exact once the writers quiesce.

    {b Spans} wrap a stage of work: while spans are {!active} (metrics
    switched on via {!set_metrics}, or a recording in progress),
    [span ~name f] times [f], feeds the duration into the histogram
    registered under [name], and — only while a recording is active —
    appends a trace event carrying the domain id and wall-clock
    timestamps. When spans are inactive the call is a bare [f ()] behind
    one atomic load. Spans nest freely (trace viewers infer nesting from
    containment) and re-raise exceptions after recording.

    Tracing never changes results: the learner's output is byte-identical
    with recording on and off.

    {b Trace export} renders the recorded events as Chrome trace-event
    JSON ({{:https://ui.perfetto.dev}Perfetto} and [chrome://tracing]
    both load it): one complete ("ph":"X") event per span, [ts]/[dur] in
    microseconds, [pid] the OS process, [tid] the OCaml domain. *)

(** {1 Clock} *)

(** Wall-clock nanoseconds since the Unix epoch ([Unix.gettimeofday]
    scaled) — the one clock every subsystem stamps with, so spans from
    different domains line up on a trace. *)
val now_ns : unit -> int

(** {1 Counters} *)

type counter

(** [counter name] returns the counter registered under [name], creating
    it on first use. Callers on hot paths should hoist the handle. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** Merged total across all domain shards. *)
val value : counter -> int

(** Zero every shard of this counter (concurrent bumps may survive). *)
val reset_counter : counter -> unit

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram

(** Record one duration, in nanoseconds. *)
val observe_ns : histogram -> int -> unit

type histogram_snapshot = {
  count : int;
  total_ns : int;
  min_ns : int;  (** 0 when [count = 0] *)
  max_ns : int;  (** 0 when [count = 0] *)
}

val histogram_snapshot : histogram -> histogram_snapshot

(** {1 Spans} *)

(** [span ~args name f] runs [f ()] and, while spans are {!active},
    feeds its duration into the histogram registered under [name] and —
    while additionally recording — appends a trace event ([args] become
    the event's ["args"] object). Exceptions are recorded (an
    ["exception"] arg is added) and re-raised with their backtrace.

    When spans are {b not} active (no {!set_metrics}, no recording) the
    call short-circuits to a bare [f ()]: one atomic load, no
    timestamps, no histogram lookup, no event allocation. Consumers of
    span histograms ({!report}, benches, tests) must therefore switch
    metrics on first. *)
val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [set_metrics true] makes spans feed their histograms even when no
    trace recording is active — required before {!report} /
    {!report_json} can show span timings. Off by default. *)
val set_metrics : bool -> unit

val metrics_enabled : unit -> bool

(** [active ()] is [true] iff spans currently do work: metrics are on or
    a recording is in progress. A single atomic load, exposed so other
    producers (e.g. the pool's participate histogram) can share the same
    fast-path gate. *)
val active : unit -> bool

(** [emit_event ~name ~start_ns ~dur_ns ()] appends a trace event for
    work timed by the caller (used where the timing already exists, e.g.
    the subsumption kernel's per-solve clock). No-op unless recording;
    does {b not} touch any histogram. *)
val emit_event :
  ?args:(string * string) list ->
  name:string ->
  start_ns:int ->
  dur_ns:int ->
  unit ->
  unit

(** {1 Recording and export} *)

(** [recording ()] is [true] between {!start_recording} and
    {!stop_recording}. The check is a single atomic load — cheap enough
    to gate per-solve event emission. *)
val recording : unit -> bool

(** Drop previously recorded events and start collecting new ones. *)
val start_recording : unit -> unit

val stop_recording : unit -> unit

(** [write_trace path] writes every event recorded since
    {!start_recording} as Chrome trace-event JSON. Timestamps are
    rebased so the trace starts near 0. Recording stays active. *)
val write_trace : string -> unit

(** If [DLEARN_TRACE] names a file, start recording now and write the
    trace there at process exit. For entry points that do not route
    through [Experiment.evaluate] (which honours [Config.trace] itself). *)
val install_env_trace : unit -> unit

(** {1 Reports} *)

(** Pretty per-stage report: histograms (count/total/mean/max, widest
    total first), then counters and gauges, in name order. *)
val report : unit -> string

(** The same data as a JSON object:
    [{"spans": [...], "counters": [...], "gauges": [...]}] — attached to
    BENCH_*.json by the bench harness. *)
val report_json : unit -> string

(** Zero every metric and drop recorded events. Handles stay valid. *)
val reset : unit -> unit

(** {1 Process memory}

    [peak_rss_kb ()] reads the process's lifetime peak resident set
    (VmHWM) from [/proc/self/status], in kilobytes — [None] where that
    interface does not exist (non-Linux). Note the value is a high-water
    mark: phases measured later can only see it grow, so comparative
    measurements must run the lean phase first (as [bench scale] does for
    streaming vs. materializing ingestion). *)
val peak_rss_kb : unit -> int option
