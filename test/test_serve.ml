(* The serve layer: JSON codec, frame protocol, and the warm server
   state driven in-process (the socket loop itself gets one end-to-end
   case; CI exercises it again through the real binary). The heart of
   the file is the interleaving property: commits into the warm state
   must leave every later verdict identical to a cold sequential replay,
   at every domain count — the soundness contract of
   [Context.apply_delta] (docs/SERVE.md). *)

open Dlearn_relation
open Dlearn_serve
module Workload = Dlearn_eval.Workload
module Experiment = Dlearn_eval.Experiment

let json_tests =
  let roundtrip v = Json.of_string (Json.to_string v) in
  [
    Alcotest.test_case "values round-trip" `Quick (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
              ("c", Json.String "x \"quoted\" \\ \n end");
              ("d", Json.Obj [ ("nested", Json.Int (-7)) ]);
            ]
        in
        Alcotest.(check bool) "equal" true (roundtrip v = v));
    Alcotest.test_case "parses whitespace and escapes" `Quick (fun () ->
        let v = Json.of_string "  { \"k\" : [ 1 , \"a\\u0041\\n\" ] }  " in
        Alcotest.(check bool) "shape" true
          (v = Json.Obj [ ("k", Json.List [ Json.Int 1; Json.String "aA\n" ]) ]));
    Alcotest.test_case "decodes surrogate pairs to UTF-8" `Quick (fun () ->
        match Json.of_string "\"\\ud83d\\ude00\"" with
        | Json.String s ->
            Alcotest.(check string) "grinning face" "\xf0\x9f\x98\x80" s
        | _ -> Alcotest.fail "expected a string");
    Alcotest.test_case "rejects malformed input" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true
              (Json.of_string_opt s = None))
          [ "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "" ]);
    Alcotest.test_case "accessors tolerate wrong shapes" `Quick (fun () ->
        let v = Json.Obj [ ("s", Json.String "x"); ("i", Json.Int 3) ] in
        Alcotest.(check (option string)) "string" (Some "x")
          (Json.string_field "s" v);
        Alcotest.(check (option int)) "int" (Some 3) (Json.int_field "i" v);
        Alcotest.(check (option int)) "wrong shape" None (Json.int_field "s" v);
        Alcotest.(check (option int)) "missing" None (Json.int_field "zz" v));
  ]

let protocol_tests =
  [
    Alcotest.test_case "frames round-trip over a socketpair" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            Unix.close a;
            Unix.close b)
          (fun () ->
            let msgs = [ ""; "x"; String.make 100_000 'y'; "{\"op\":\"ping\"}" ] in
            List.iter (fun m -> Protocol.write_frame a m) msgs;
            List.iter
              (fun m ->
                Alcotest.(check string) "frame" m (Protocol.read_frame b))
              msgs));
    Alcotest.test_case "oversized length prefix is rejected" `Quick (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            Unix.close a;
            Unix.close b)
          (fun () ->
            let header = Bytes.of_string "\xff\xff\xff\xff" in
            ignore (Unix.write a header 0 4);
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Protocol.read_frame b);
                 false
               with Protocol.Protocol_error _ -> true)));
    Alcotest.test_case "envelopes" `Quick (fun () ->
        Alcotest.(check bool) "ok" true (Protocol.is_ok (Protocol.ok []));
        let e = Protocol.error "boom" in
        Alcotest.(check bool) "not ok" false (Protocol.is_ok e);
        Alcotest.(check string) "message" "boom" (Protocol.error_of_response e));
  ]

(* A small workload with a private database copy — server states adopt
   and mutate their database, so every test takes a fresh one. *)
let base_workload = lazy (Dlearn_eval.Imdb_omdb.generate ~n:20 `One_md)

let fresh_workload ?(jobs = 1) () =
  let w = Lazy.force base_workload in
  let w = Experiment.with_jobs w jobs in
  { w with Workload.db = Database.copy w.Workload.db }

let ok_exn resp =
  if Protocol.is_ok resp then resp
  else Alcotest.failf "request failed: %s" (Protocol.error_of_response resp)

let clauses_of resp =
  match Json.list_field "clauses" resp with
  | Some items ->
      List.map
        (function Json.String s -> s | _ -> Alcotest.fail "bad clause") items
  | None -> Alcotest.fail "no clauses in response"

let test_clause =
  "dramaRestrictedMovies(x) <- imdb_movies(x, t, y), imdb_mov2genres(x, \
   \"drama\")"

let insert_req values =
  Protocol.request "insert"
    [
      ("relation", Json.String "imdb_movies");
      ("values", Json.List (List.map (fun s -> Json.String s) values));
    ]

let coverage_counts resp =
  match (Json.int_field "pos_covered" resp, Json.int_field "neg_covered" resp) with
  | Some p, Some n -> (p, n)
  | _ -> Alcotest.fail "no coverage counts"

let server_tests =
  [
    Alcotest.test_case "ping, status and unknown ops" `Quick (fun () ->
        let t = Server.create (fresh_workload ()) in
        let pong = ok_exn (Server.handle t (Protocol.request "ping" [])) in
        Alcotest.(check bool) "pong" true
          (Json.member "pong" pong = Some (Json.Bool true));
        let status = ok_exn (Server.handle t (Protocol.request "status" [])) in
        Alcotest.(check (option int)) "version 0" (Some 0)
          (Json.int_field "version" status);
        Alcotest.(check bool) "tuples positive" true
          (match Json.int_field "tuples" status with
          | Some n -> n > 0
          | None -> false);
        let bad = Server.handle t (Protocol.request "frobnicate" []) in
        Alcotest.(check bool) "unknown op rejected" false (Protocol.is_ok bad));
    Alcotest.test_case "bad requests answer, never raise" `Quick (fun () ->
        let t = Server.create (fresh_workload ()) in
        List.iter
          (fun req ->
            Alcotest.(check bool) "ok:false" false
              (Protocol.is_ok (Server.handle t req)))
          [
            Protocol.request "insert" [ ("relation", Json.String "nope") ];
            Protocol.request "insert"
              [
                ("relation", Json.String "imdb_movies");
                ("values", Json.List [ Json.String "only-one" ]);
              ];
            Protocol.request "coverage" [ ("clause", Json.String "not a clause") ];
            Protocol.request "query" [];
          ]);
    Alcotest.test_case "insert commits a version and invalidates" `Quick
      (fun () ->
        let t = Server.create (fresh_workload ()) in
        let resp =
          ok_exn (Server.handle t (insert_req [ "tt9001"; "Superbad (2007)"; "y2007" ]))
        in
        Alcotest.(check (option int)) "version 1" (Some 1)
          (Json.int_field "version" resp);
        Alcotest.(check bool) "invalidation reported" true
          (Json.int_field "invalidated" resp <> None);
        let rows =
          ok_exn
            (Server.handle t
               (Protocol.request "query"
                  [
                    ("clause", Json.String "q(x) <- imdb_movies(x, t, y)");
                    ("limit", Json.Int 1000);
                  ]))
        in
        match Json.list_field "rows" rows with
        | Some l ->
            Alcotest.(check bool) "query sees the insert" true
              (List.exists
                 (fun row -> row = Json.List [ Json.String "tt9001" ])
                 l)
        | None -> Alcotest.fail "no rows");
    Alcotest.test_case "warm learn equals cold learn after a delta" `Quick
      (fun () ->
        (* The acceptance pin: commit a delta into the warm state, learn,
           and compare against a cold server built over a database that
           already contains the delta — definitions must be identical. *)
        let extra = [ "tt9002"; "Orphanage (2007)"; "y2007" ] in
        let learn_req =
          Protocol.request "learn" [ ("pos", Json.Int 6); ("neg", Json.Int 10) ]
        in
        let warm = Server.create (fresh_workload ()) in
        ignore (ok_exn (Server.handle warm learn_req));
        ignore (ok_exn (Server.handle warm (insert_req extra)));
        let warm_clauses =
          clauses_of (ok_exn (Server.handle warm learn_req))
        in
        let cold_w = fresh_workload () in
        ignore
          (Relation.insert
             (Database.find cold_w.Workload.db "imdb_movies")
             (Tuple.of_strings extra));
        let cold = Server.create cold_w in
        let cold_clauses =
          clauses_of (ok_exn (Server.handle cold learn_req))
        in
        Alcotest.(check (list string)) "identical definitions" cold_clauses
          warm_clauses);
    Alcotest.test_case "socket loop serves and shuts down cleanly" `Quick
      (fun () ->
        let t = Server.create (fresh_workload ()) in
        let dir = Filename.temp_file "dlearn_serve" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let path = Filename.concat dir "s.sock" in
        let server = Thread.create (fun () -> Server.run t ~socket_path:path) () in
        Fun.protect
          ~finally:(fun () ->
            Thread.join server;
            if Sys.file_exists path then Sys.remove path;
            Sys.rmdir dir)
          (fun () ->
            let c = Client.connect_retry path in
            let pong = Client.request c (Protocol.request "ping" []) in
            Alcotest.(check bool) "pong over socket" true (Protocol.is_ok pong);
            let bye = Client.request c (Protocol.request "shutdown" []) in
            Alcotest.(check bool) "shutdown acknowledged" true
              (Protocol.is_ok bye);
            Client.close c));
  ]

(* {2 The interleaving property}

   For a generated sequence of inserts: drive them through one warm
   server state, reading coverage after every commit, at 2, 4 and 8
   domains — and compare every verdict pair against a cold sequential
   replay that rebuilds a fresh context per step. Any stale verdict the
   monotone invalidation failed to drop shows up as a mismatch. *)

let movie_gen =
  QCheck.Gen.(
    let* id = map (Printf.sprintf "tt90%02d") (0 -- 99) in
    let* title =
      oneofl
        [
          "Superbad (2007)";
          "Superbad (2008)";
          "Zoolander (2001)";
          "Zoolandr (2001)";
          "Orphanage (2007)";
          "Unrelated Film (1999)";
        ]
    in
    let* year = map (Printf.sprintf "y%d") (1999 -- 2010) in
    return [ id; title; year ])

let inserts_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map (String.concat ",") l))
    QCheck.Gen.(list_size (1 -- 2) movie_gen)

(* The property's workload: a reduced example universe keeps the cold
   replays (one fresh context per step per domain count) affordable. *)
let prop_workload ?(jobs = 1) () =
  Workload.with_examples (fresh_workload ~jobs ()) ~pos:4 ~neg:4 ~seed:0

let cold_coverage inserts =
  (* Sequential replay: after each insert, a fresh context over a fresh
     database copy answers the same coverage question from scratch. *)
  let clause =
    match Dlearn_logic.Parser.clause test_clause with
    | Ok c -> c
    | Error msg -> Alcotest.failf "clause: %s" msg
  in
  List.mapi
    (fun i _ ->
      let w = prop_workload () in
      let r = Database.find w.Workload.db "imdb_movies" in
      List.iteri
        (fun j values ->
          if j <= i then ignore (Relation.insert r (Tuple.of_strings values)))
        inserts;
      let ctx =
        Dlearn_core.Context.create w.Workload.config w.Workload.db
          w.Workload.mds w.Workload.cfds
      in
      let prepared = Dlearn_core.Coverage.prepare ctx clause in
      Dlearn_core.Coverage.coverage ctx prepared ~pos:w.Workload.pos
        ~neg:w.Workload.neg)
    inserts

let warm_coverage ~jobs inserts =
  let t = Server.create (prop_workload ~jobs ()) in
  (* Prime the caches so the interleaving actually exercises
     invalidation, not first-touch computation. *)
  ignore
    (ok_exn
       (Server.handle t
          (Protocol.request "coverage" [ ("clause", Json.String test_clause) ])));
  List.map
    (fun values ->
      ignore (ok_exn (Server.handle t (insert_req values)));
      coverage_counts
        (ok_exn
           (Server.handle t
              (Protocol.request "coverage"
                 [ ("clause", Json.String test_clause) ]))))
    inserts

let interleaving_prop inserts =
  let expected = cold_coverage inserts in
  List.for_all
    (fun jobs -> warm_coverage ~jobs inserts = expected)
    [ 2; 4; 8 ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"interleaved commits + coverage match sequential replay"
         ~count:3 inserts_arb interleaving_prop);
  ]

let () =
  Alcotest.run "serve"
    [
      ("json", json_tests);
      ("protocol", protocol_tests);
      ("server", server_tests);
      ("interleaving", qcheck_tests);
    ]
