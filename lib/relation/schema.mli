(** Relation schemas.

    A schema names a relation and its attributes, mirroring the paper's
    [R(A1, ..., Am)]. Attribute positions are the canonical way other
    modules address columns; names are resolved once at construction. *)

type domain =
  | Dint
  | Dfloat
  | Dstring

type attribute = {
  attr_name : string;
  domain : domain;
}

type t

(** [make name attributes] builds a schema. Raises [Invalid_argument] on an
    empty attribute list or duplicate attribute names. *)
val make : string -> attribute list -> t

(** [string_attrs name attrs] is [make name] with every attribute given the
    string domain — the common case in the paper's datasets. *)
val string_attrs : string -> string list -> t

val name : t -> string

val arity : t -> int

val attributes : t -> attribute array

val attr_name : t -> int -> string

val domain : t -> int -> domain

(** [position t name] is the index of attribute [name].
    @raise Not_found if no attribute has that name. *)
val position : t -> string -> int

(** [comparable t i u j] holds when attribute [i] of [t] and attribute [j]
    of [u] share a domain — the paper's precondition on MD attributes. *)
val comparable : t -> int -> t -> int -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
