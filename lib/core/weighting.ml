open Dlearn_logic

type t = {
  definition : Definition.t;
  weights : float list;
  prepared : Coverage.prepared list;
}

let weigh ctx definition ~pos ~neg =
  let prepared =
    List.map (Coverage.prepare ctx) definition.Definition.clauses
  in
  let weights =
    List.map
      (fun prep ->
        let tp, fp = Coverage.coverage ctx prep ~pos ~neg in
        (* Laplace / m-estimate with m = 2, prior 1/2. *)
        float_of_int (tp + 1) /. float_of_int (tp + fp + 2))
      prepared
  in
  { definition; weights; prepared }

let score ctx t e =
  List.fold_left2
    (fun best prep weight ->
      if weight > best && Coverage.covers_positive ctx prep e then weight
      else best)
    0.0 t.prepared t.weights

let predict ctx t ~threshold e = score ctx t e >= threshold

let pp fmt t =
  List.iter2
    (fun clause weight ->
      Format.fprintf fmt "[w=%.3f] %s@." weight (Clause.to_string clause))
    t.definition.Definition.clauses t.weights
