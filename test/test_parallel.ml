(* The parallel-vs-sequential equivalence suite.

   The pool promises bit-for-bit the sequential results (pool.mli); the
   coverage engine promises that fanning out over domains never changes a
   verdict (coverage.mli). Both promises are checked here: pool unit
   tests against the stdlib sequential combinators, a QCheck property
   comparing [Coverage.coverage] at num_domains ∈ {2, 4, 8} against the
   num_domains = 1 path on random clauses and example multisets (MD and
   CFD repair literals both exercised), and stress tests that hammer the
   shared memo cells from many domains to catch races that a single
   deterministic interleaving would miss. *)

open Dlearn_relation
open Dlearn_constraints
open Dlearn_logic
open Dlearn_core
module Pool = Dlearn_parallel.Pool
module Deque = Dlearn_parallel.Deque
module Memo = Dlearn_parallel.Memo

let sv s = Value.String s

(* Force every parallel-eligible batch down the fan-out path with
   single-item chunks — maximum stealing — then restore the default cost
   model. The equivalence and stress suites run under this so the toy
   workloads (whose batches the adaptive model would keep inline)
   actually exercise the deques. *)
let with_forced_fanout f =
  Pool.set_cost_model ~fanout_threshold:0 ~min_chunk:0 ();
  Fun.protect ~finally:Pool.reset_cost_model f

(* Busy-wait, so per-item cost is controllable without releasing the
   domain (Unix.sleepf would let every other participant run for free
   and hide skew). *)
let spin_ns ns =
  let stop = Unix.gettimeofday () +. (float_of_int ns /. 1e9) in
  while Unix.gettimeofday () < stop do
    ignore (Sys.opaque_identity 0)
  done

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let pool_sizes = [ 1; 2; 4; 8 ]

let pool_tests =
  [
    Alcotest.test_case "map equals Array.map at every size" `Quick (fun () ->
        List.iter
          (fun n ->
            let pool = Pool.get n in
            List.iter
              (fun len ->
                let arr = Array.init len (fun i -> i) in
                let expected = Array.map (fun x -> (x * 7) + 3) arr in
                let got = Pool.map pool (fun x -> (x * 7) + 3) arr in
                Alcotest.(check (array int))
                  (Printf.sprintf "pool %d, len %d" n len)
                  expected got)
              [ 0; 1; 2; 7; 64; 257 ])
          pool_sizes);
    Alcotest.test_case "map_list preserves input order" `Quick (fun () ->
        let pool = Pool.get 4 in
        let l = List.init 100 (fun i -> 99 - i) in
        Alcotest.(check (list int))
          "same order" (List.map succ l)
          (Pool.map_list pool succ l));
    Alcotest.test_case "filter_count equals sequential count" `Quick (fun () ->
        List.iter
          (fun n ->
            let pool = Pool.get n in
            let arr = Array.init 1000 (fun i -> i) in
            let p x = x mod 3 = 0 in
            let expected =
              Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 arr
            in
            Alcotest.(check int)
              (Printf.sprintf "pool %d" n)
              expected
              (Pool.filter_count pool p arr))
          pool_sizes);
    Alcotest.test_case "filter_list keeps order" `Quick (fun () ->
        let pool = Pool.get 8 in
        let l = List.init 200 (fun i -> i) in
        let p x = x mod 7 < 3 in
        Alcotest.(check (list int))
          "same elements, same order" (List.filter p l)
          (Pool.filter_list pool p l));
    Alcotest.test_case "iter visits every element once" `Quick (fun () ->
        let pool = Pool.get 4 in
        let counters = Array.init 500 (fun _ -> Atomic.make 0) in
        Pool.iter pool
          (fun i -> Atomic.incr counters.(i))
          (Array.init 500 (fun i -> i));
        Alcotest.(check bool) "each exactly once" true
          (Array.for_all (fun c -> Atomic.get c = 1) counters));
    Alcotest.test_case "exceptions propagate to the submitter" `Quick
      (fun () ->
        (* Forced fan-out exercises the job-failure path; the n = 1 pool
           still covers the direct inline raise. *)
        with_forced_fanout (fun () ->
            List.iter
              (fun n ->
                let pool = Pool.get n in
                let raised =
                  try
                    ignore
                      (Pool.map pool
                         (fun x -> if x = 61 then failwith "boom" else x)
                         (Array.init 100 (fun i -> i)));
                    false
                  with Failure msg -> msg = "boom"
                in
                Alcotest.(check bool)
                  (Printf.sprintf "pool %d re-raises" n)
                  true raised;
                (* The pool survives a failed batch. *)
                Alcotest.(check int) "still works" 10
                  (Pool.filter_count pool
                     (fun x -> x < 10)
                     (Array.init 100 (fun i -> i))))
              pool_sizes));
    Alcotest.test_case "nested submission falls back sequentially" `Quick
      (fun () ->
        with_forced_fanout (fun () ->
            let pool = Pool.get 4 in
            let inner = Array.init 20 (fun i -> i) in
            let got =
              Pool.map pool
                (fun x ->
                  Array.fold_left ( + ) 0 (Pool.map pool (fun y -> x * y) inner))
                (Array.init 30 (fun i -> i))
            in
            let expected =
              Array.init 30 (fun x ->
                  Array.fold_left ( + ) 0 (Array.map (fun y -> x * y) inner))
            in
            Alcotest.(check (array int)) "no deadlock, same result" expected got));
    Alcotest.test_case "stats counters advance on fan-out" `Quick (fun () ->
        with_forced_fanout (fun () ->
            let pool = Pool.get 2 in
            let before = Pool.stats pool in
            ignore (Pool.map pool succ (Array.init 64 (fun i -> i)));
            let after = Pool.stats pool in
            Alcotest.(check int) "domains" 2 after.Pool.domains;
            Alcotest.(check bool) "one more task" true
              (after.Pool.tasks = before.Pool.tasks + 1);
            (* [map] computes item 0 inline to seed the result array; the
               remaining 63 go through chunks. *)
            Alcotest.(check bool) "items counted" true
              (after.Pool.items >= before.Pool.items + 63);
            Alcotest.(check bool) "chunks counted" true
              (after.Pool.chunks > before.Pool.chunks);
            Alcotest.(check int) "busy slots" 2
              (Array.length after.Pool.busy_seconds)));
    Alcotest.test_case "fill packs predicate bits identically at every size"
      `Quick (fun () ->
        let p i = i mod 3 = 0 || i mod 7 = 1 in
        List.iter
          (fun n ->
            List.iter
              (fun len ->
                let packed = Pool.fill (Pool.get n) ~n:len p in
                Alcotest.(check int)
                  (Printf.sprintf "pool %d, len %d: length" n len)
                  ((len + 7) / 8) (Bytes.length packed);
                for i = 0 to len - 1 do
                  let bit =
                    (Char.code (Bytes.get packed (i lsr 3)) lsr (i land 7))
                    land 1
                  in
                  if (bit = 1) <> p i then
                    Alcotest.failf "pool %d, len %d: bit %d is %d" n len i bit
                done;
                (* trailing padding bits stay clear *)
                if len land 7 <> 0 && len > 0 then begin
                  let last = Char.code (Bytes.get packed (Bytes.length packed - 1)) in
                  Alcotest.(check int)
                    (Printf.sprintf "pool %d, len %d: padding" n len)
                    0
                    (last lsr (len land 7))
                end)
              [ 0; 1; 7; 8; 9; 15; 16; 64; 257; 1000 ])
          pool_sizes);
    Alcotest.test_case "get shares one pool per size" `Quick (fun () ->
        Alcotest.(check bool) "same pool" true (Pool.get 4 == Pool.get 4);
        Alcotest.(check int) "size respected" 4 (Pool.num_domains (Pool.get 4));
        Alcotest.(check int) "sequential pool" 1 (Pool.num_domains (Pool.get 1)));
  ]

(* ------------------------------------------------------------------ *)
(* Deque invariants                                                    *)
(* ------------------------------------------------------------------ *)

let deque_tests =
  [
    Alcotest.test_case "owner pops LIFO, then permanently empty" `Quick
      (fun () ->
        let d = Deque.make 0 10 in
        for expected = 9 downto 0 do
          Alcotest.(check (option int))
            "pop order" (Some expected) (Deque.pop d)
        done;
        Alcotest.(check (option int)) "drained" None (Deque.pop d);
        Alcotest.(check bool) "is_empty" true (Deque.is_empty d);
        Alcotest.(check bool) "steal sees empty" true (Deque.steal d = Deque.Empty));
    Alcotest.test_case "thieves steal FIFO" `Quick (fun () ->
        let d = Deque.make 3 8 in
        for expected = 3 to 7 do
          match Deque.steal d with
          | Deque.Stolen i -> Alcotest.(check int) "steal order" expected i
          | Deque.Empty | Deque.Lost -> Alcotest.fail "unexpected empty/lost"
        done;
        Alcotest.(check bool) "drained" true (Deque.steal d = Deque.Empty));
    Alcotest.test_case "pop and steal partition the range" `Quick (fun () ->
        let d = Deque.make 0 20 in
        let claimed = Array.make 20 0 in
        for _ = 1 to 10 do
          (match Deque.pop d with
          | Some i -> claimed.(i) <- claimed.(i) + 1
          | None -> ());
          match Deque.steal d with
          | Deque.Stolen i -> claimed.(i) <- claimed.(i) + 1
          | Deque.Empty | Deque.Lost -> ()
        done;
        while not (Deque.is_empty d) do
          match Deque.pop d with
          | Some i -> claimed.(i) <- claimed.(i) + 1
          | None -> ()
        done;
        Alcotest.(check bool) "every index exactly once" true
          (Array.for_all (fun c -> c = 1) claimed));
    Alcotest.test_case "concurrent owner + thieves claim each index once"
      `Quick (fun () ->
        for _round = 1 to 5 do
          let n = 10_000 in
          let d = Deque.make 0 n in
          let claims = Array.init n (fun _ -> Atomic.make 0) in
          let thieves =
            List.init 3 (fun _ ->
                Domain.spawn (fun () ->
                    let continue = ref true in
                    while !continue do
                      match Deque.steal d with
                      | Deque.Stolen i -> Atomic.incr claims.(i)
                      | Deque.Lost -> ()
                      | Deque.Empty -> continue := false
                    done))
          in
          let rec drain () =
            match Deque.pop d with
            | Some i ->
                Atomic.incr claims.(i);
                drain ()
            | None -> ()
          in
          drain ();
          List.iter Domain.join thieves;
          Alcotest.(check bool) "each index exactly once" true
            (Array.for_all (fun c -> Atomic.get c = 1) claims)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Memo stress                                                         *)
(* ------------------------------------------------------------------ *)

let memo_tests =
  [
    Alcotest.test_case "concurrent force runs the thunk once" `Quick (fun () ->
        for _round = 1 to 20 do
          let runs = Atomic.make 0 in
          let cell =
            Memo.make (fun () ->
                Atomic.incr runs;
                (* widen the race window *)
                ignore (Sys.opaque_identity (Array.make 1000 0));
                ref 42)
          in
          let domains =
            List.init 8 (fun _ -> Domain.spawn (fun () -> Memo.force cell))
          in
          let results = List.map Domain.join domains in
          Alcotest.(check int) "thunk ran once" 1 (Atomic.get runs);
          let first = List.hd results in
          List.iter
            (fun r ->
              Alcotest.(check bool) "physically equal" true (r == first))
            results
        done);
    Alcotest.test_case "raised thunks cache the exception" `Quick (fun () ->
        let runs = Atomic.make 0 in
        let cell =
          Memo.make (fun () ->
              Atomic.incr runs;
              failwith "memo-boom")
        in
        let attempt () =
          try Memo.force cell
          with Failure msg when msg = "memo-boom" -> 0
        in
        ignore (attempt ());
        ignore (attempt ());
        Alcotest.(check int) "thunk ran once" 1 (Atomic.get runs);
        Alcotest.(check bool) "is_forced after raise" true (Memo.is_forced cell));
  ]

(* ------------------------------------------------------------------ *)
(* Toy workload (mirrors test_core.ml)                                 *)
(* ------------------------------------------------------------------ *)

let toy_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.string_attrs "imdb_movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ];
      Tuple.of_strings [ "m3"; "The Orphanage (2007)"; "y2007" ];
      Tuple.of_strings [ "m4"; "Alien (1979)"; "y1979" ];
    ];
  let genres =
    Database.create_relation db
      (Schema.string_attrs "imdb_genres" [ "id"; "genre" ])
  in
  Relation.insert_all genres
    [
      Tuple.of_strings [ "m1"; "comedy" ];
      Tuple.of_strings [ "m2"; "comedy" ];
      Tuple.of_strings [ "m3"; "drama" ];
      Tuple.of_strings [ "m4"; "scifi" ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.string_attrs "bom_ratings" [ "title"; "rating" ])
  in
  Relation.insert_all ratings
    [
      Tuple.of_strings [ "Superbad [2007]"; "R" ];
      Tuple.of_strings [ "Zoolander [2001]"; "PG-13" ];
      Tuple.of_strings [ "The Orphanage [2007]"; "R" ];
      Tuple.of_strings [ "Alien [1979]"; "R" ];
    ];
  db

(* A locale relation violating a CFD, so CFD repair literals appear in
   the bottom clauses (see test_core.ml's cfd suite). *)
let violating_db () =
  let db = toy_db () in
  let locale =
    Database.create_relation db
      (Schema.string_attrs "locale" [ "id"; "language"; "country" ])
  in
  Relation.insert_all locale
    [
      Tuple.of_strings [ "m1"; "English"; "USA" ];
      Tuple.of_strings [ "m1"; "English"; "Ireland" ];
      Tuple.of_strings [ "m2"; "English"; "USA" ];
    ];
  db

let phi =
  Cfd.make ~id:"phi" ~relation:"locale"
    ~lhs:[ ("id", Cfd.Wildcard); ("language", Cfd.Const (sv "English")) ]
    ~rhs:("country", Cfd.Wildcard)

let md_title =
  Md.make ~id:"title_md" ~left:"imdb_movies" ~right:"bom_ratings"
    ~compared:[ ("title", "title") ] ~unified:("title", "title") ()

let target = Schema.string_attrs "restricted" [ "id" ]

let toy_config ~jobs ~threshold =
  {
    (Config.default ~target) with
    Config.constant_attrs =
      [ ("bom_ratings", "rating"); ("imdb_genres", "genre") ];
    sim = { Md.default_sim with Md.threshold };
    min_pos = 2;
    sample_positives = 4;
    num_domains = jobs;
  }

let ex id = Tuple.of_strings [ id ]
let examples = [| ex "m1"; ex "m2"; ex "m3"; ex "m4" |]

let hand_clause () =
  let v0 = Term.var "x0" and vt = Term.var "xt" and vy = Term.var "xy" in
  let vt2 = Term.var "xt2" in
  let r0 = Term.var "rr0" and r1 = Term.var "rr1" in
  let sim = Literal.Sim (vt, vt2) in
  let mk_repair subject replacement =
    Literal.Repair
      {
        origin = Literal.From_md "title_md";
        group = 0;
        cond = [ Cond.Csim (vt, vt2) ];
        subject;
        replacement;
        drops = [ sim ];
      }
  in
  Clause.make
    ~head:(Literal.rel "restricted" [ v0 ])
    [
      Literal.rel "imdb_movies" [ v0; vt; vy ];
      Literal.rel "bom_ratings" [ vt2; Term.str "R" ];
      sim;
      mk_repair vt r0;
      mk_repair vt2 r1;
      Literal.Eq (r0, r1);
    ]

(* Three workload variants: the strict MD-only setting, the loose
   threshold that opens the spurious-repair space, and a CFD-violating
   database. Each variant carries one context per domain count, sharing
   its ground-clause caches across all 500 QCheck cases. *)
type variant = {
  name : string;
  ctxs : (int * Context.t) list;  (** num_domains -> context *)
  clauses : Clause.t array;
}

let domain_counts = [ 1; 2; 4; 8 ]

let make_variant name ~threshold ~db ~cfds =
  let ctxs =
    List.map
      (fun jobs ->
        ( jobs,
          Context.create (toy_config ~jobs ~threshold) (db ()) [ md_title ]
            cfds ))
      domain_counts
  in
  let seq = List.assoc 1 ctxs in
  let bottoms =
    List.map
      (fun id -> Bottom_clause.build seq Bottom_clause.Variable (ex id))
      [ "m1"; "m3"; "m4" ]
  in
  let armgs =
    List.filter_map
      (fun (seed, towards) ->
        let bottom = Bottom_clause.build seq Bottom_clause.Variable (ex seed) in
        Generalization.armg seq bottom (ex towards))
      [ ("m1", "m3"); ("m4", "m3"); ("m1", "m4") ]
  in
  { name; ctxs; clauses = Array.of_list ((hand_clause () :: bottoms) @ armgs) }

let variants =
  lazy
    [
      make_variant "strict" ~threshold:0.7 ~db:toy_db ~cfds:[];
      make_variant "loose" ~threshold:0.6 ~db:toy_db ~cfds:[];
      make_variant "cfd" ~threshold:0.7 ~db:violating_db ~cfds:[ phi ];
    ]

(* ------------------------------------------------------------------ *)
(* QCheck equivalence property                                         *)
(* ------------------------------------------------------------------ *)

type scenario = {
  variant_i : int;
  clause_i : int;
  pos : Tuple.t list;
  neg : Tuple.t list;
}

let scenario_gen =
  let open QCheck.Gen in
  let example_list =
    list_size (0 -- 8) (map (fun i -> examples.(i)) (0 -- 3))
  in
  let* variant_i = 0 -- 2 in
  let variant = List.nth (Lazy.force variants) variant_i in
  let* clause_i = 0 -- (Array.length variant.clauses - 1) in
  let* pos = example_list in
  let* neg = example_list in
  return { variant_i; clause_i; pos; neg }

let scenario_print s =
  let variant = List.nth (Lazy.force variants) s.variant_i in
  Printf.sprintf "variant=%s clause=%d pos=[%s] neg=[%s]" variant.name
    s.clause_i
    (String.concat ";" (List.map Tuple.to_string s.pos))
    (String.concat ";" (List.map Tuple.to_string s.neg))

let scenario_arb = QCheck.make ~print:scenario_print scenario_gen

let coverage_in ctx clause ~pos ~neg =
  let prep = Coverage.prepare ctx clause in
  Coverage.coverage ctx prep ~pos ~neg

let equivalence_test jobs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "coverage with %d domains equals sequential" jobs)
       ~count:500 scenario_arb
       (fun s ->
         with_forced_fanout @@ fun () ->
         let variant = List.nth (Lazy.force variants) s.variant_i in
         let clause = variant.clauses.(s.clause_i) in
         let seq = List.assoc 1 variant.ctxs in
         let par = List.assoc jobs variant.ctxs in
         let p0, n0 = coverage_in seq clause ~pos:s.pos ~neg:s.neg in
         let p1, n1 = coverage_in par clause ~pos:s.pos ~neg:s.neg in
         if (p0, n0) <> (p1, n1) then
           QCheck.Test.fail_reportf "sequential (%d, %d) <> %d-domain (%d, %d)"
             p0 n0 jobs p1 n1;
         (* The batch predicates must agree element-wise too. *)
         let prep_s = Coverage.prepare seq clause in
         let prep_p = Coverage.prepare par clause in
         List.for_all2 Bool.equal
           (Coverage.covers_positive_batch seq prep_s s.pos)
           (Coverage.covers_positive_batch par prep_p s.pos)
         && List.for_all2 Bool.equal
              (Coverage.covers_negative_batch seq prep_s s.neg)
              (Coverage.covers_negative_batch par prep_p s.neg)))

let equivalence_tests = List.map equivalence_test [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Ground-entry stress: many domains, one shared entry                 *)
(* ------------------------------------------------------------------ *)

let ground_entry_stress () =
  for _round = 1 to 10 do
    (* A fresh context each round so every memo cell starts cold. *)
    let ctx =
      Context.create
        (toy_config ~jobs:1 ~threshold:0.7)
        (violating_db ()) [ md_title ] [ phi ]
    in
    let e = ex "m1" in
    let results =
      List.init 8 (fun i ->
          Domain.spawn (fun () ->
              let entry = Bottom_clause.ground ctx e in
              (* Vary the first accessor per domain so different memo
                 fields race on being forced first. *)
              (match i mod 4 with
              | 0 -> ignore (Coverage.ground_repairs ctx entry)
              | 1 -> ignore (Coverage.ground_target ctx entry)
              | 2 -> ignore (Coverage.prefilter_target ctx entry)
              | _ -> ignore (Coverage.ground_repair_targets ctx entry));
              ( entry,
                Coverage.ground_repairs ctx entry,
                Coverage.ground_target ctx entry,
                Coverage.ground_repair_targets ctx entry,
                Coverage.prefilter_target ctx entry )))
      |> List.map Domain.join
    in
    let entry0, repairs0, target0, rts0, pf0 = List.hd results in
    List.iter
      (fun (entry, repairs, target, rts, pf) ->
        Alcotest.(check bool) "one cache entry" true (entry == entry0);
        Alcotest.(check bool) "one repairs list" true (repairs == repairs0);
        Alcotest.(check bool) "one target" true (target == target0);
        Alcotest.(check bool) "one repair-target list" true (rts == rts0);
        Alcotest.(check bool) "one prefilter target" true (pf == pf0))
      results
  done

(* The pool's adaptive cost model replaced the old parallel_min_batch
   cutover: the probe keeps cheap batches on the submitting domain (zero
   fan-out overhead) and hands expensive ones to the workers; verdicts
   are identical whichever way a batch falls. *)
let cost_model_tests =
  [
    Alcotest.test_case "a huge fan-out threshold pins batches inline" `Quick
      (fun () ->
        Pool.set_cost_model ~fanout_threshold:max_int ();
        Fun.protect ~finally:Pool.reset_cost_model (fun () ->
            let pool = Pool.get 2 in
            let before = (Pool.stats pool).Pool.tasks in
            let arr = Array.init 512 (fun i -> i) in
            Alcotest.(check (array int))
              "inline result identical" (Array.map succ arr)
              (Pool.map pool succ arr);
            Alcotest.(check int) "no pool task" before
              ((Pool.stats pool).Pool.tasks)));
    Alcotest.test_case "tiny cheap batches degrade to inline execution"
      `Quick (fun () ->
        Pool.reset_cost_model ();
        let pool = Pool.get 2 in
        (* Warm-up so domain spawning is not measured by the probe. *)
        ignore (Pool.map pool succ (Array.init 8 (fun i -> i)));
        let before = (Pool.stats pool).Pool.tasks in
        for _ = 1 to 20 do
          let arr = Array.init 10 (fun i -> i) in
          Alcotest.(check (array int))
            "result" (Array.map succ arr) (Pool.map pool succ arr)
        done;
        let after = (Pool.stats pool).Pool.tasks in
        (* The probe finishes 10 trivial items well inside its budget; a
           rare preemption mid-probe may push a batch over the threshold,
           so allow a small number of strays. *)
        Alcotest.(check bool)
          (Printf.sprintf "tiny batches stay off the pool (%d tasks)"
             (after - before))
          true
          (after - before <= 2));
    Alcotest.test_case "expensive batches fan out to the workers" `Quick
      (fun () ->
        (* Under the default model the fan-out verdict also depends on the
           host: with no spare hardware parallelism even expensive batches
           stay inline (fanning out could only add overhead). Pin both
           sides of that rule. *)
        Pool.reset_cost_model ();
        let pool = Pool.get 2 in
        let before = Pool.stats pool in
        let arr = Array.init 32 (fun i -> i) in
        let f x =
          spin_ns 100_000;
          x * 2
        in
        Alcotest.(check (array int))
          "result" (Array.map (fun x -> x * 2) arr)
          (Pool.map pool f arr);
        let after = Pool.stats pool in
        if Domain.recommended_domain_count () > 1 then begin
          Alcotest.(check bool) "pool task submitted" true
            (after.Pool.tasks > before.Pool.tasks);
          Alcotest.(check bool) "chunks claimed" true
            (after.Pool.chunks > before.Pool.chunks)
        end
        else
          Alcotest.(check int) "single-core host stays inline"
            before.Pool.tasks after.Pool.tasks;
        Alcotest.(check bool) "per-item cost was measured" true
          (Pool.last_item_cost_ns () > 0));
    Alcotest.test_case "batch verdicts identical regardless of batch size"
      `Quick (fun () ->
        let ctx =
          Context.create
            (toy_config ~jobs:2 ~threshold:0.7)
            (toy_db ()) [ md_title ] []
        in
        let prep = Coverage.prepare ctx (hand_clause ()) in
        let batch_of n = List.init n (fun i -> examples.(i mod 4)) in
        let small = Coverage.covers_positive_batch ctx prep (batch_of 15) in
        let large = Coverage.covers_positive_batch ctx prep (batch_of 16) in
        Alcotest.(check (list bool))
          "identical verdicts on both paths" small
          (List.filteri (fun i _ -> i < 15) large));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism under stealing                                          *)
(* ------------------------------------------------------------------ *)

let steal_gen =
  let open QCheck.Gen in
  let* jobs = oneofl [ 2; 4; 8 ] in
  let* delays_us = list_size (8 -- 32) (0 -- 100) in
  return (jobs, delays_us)

let steal_print (jobs, delays_us) =
  Printf.sprintf "jobs=%d delays_us=[%s]" jobs
    (String.concat ";" (List.map string_of_int delays_us))

(* Single-item chunks plus random per-item sleeps randomize which domain
   ends up computing which item (owner pops race thief steals); the map
   must be byte-identical to the sequential reference regardless. *)
let steal_equivalence_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"pool map is deterministic under randomized steal interleavings"
       ~count:60
       (QCheck.make ~print:steal_print steal_gen)
       (fun (jobs, delays_us) ->
         with_forced_fanout (fun () ->
             let arr = Array.of_list delays_us in
             let reference = Array.map (fun d -> (d * 31) + 7) arr in
             let got =
               Pool.map (Pool.get jobs)
                 (fun d ->
                   spin_ns (d * 1000);
                   (d * 31) + 7)
                 arr
             in
             got = reference)))

let steal_counter_test =
  Alcotest.test_case "skewed chunks are stolen across deques" `Quick
    (fun () ->
      with_forced_fanout (fun () ->
          let pool = Pool.get 4 in
          let before = (Pool.stats pool).Pool.steals in
          (* Item 0 (and every multiple of 8) is slow: whichever deque
             holds those chunks falls behind and the other participants
             steal from it. 20 rounds make at least one steal all but
             certain on any scheduler. *)
          for _round = 1 to 20 do
            ignore
              (Pool.map pool
                 (fun i ->
                   if i mod 8 = 0 then spin_ns 200_000;
                   i + 1)
                 (Array.init 64 (fun i -> i)))
          done;
          let after = (Pool.stats pool).Pool.steals in
          Alcotest.(check bool) "steals observed" true (after > before)))

let stress_tests =
  [
    Alcotest.test_case "shared ground entry memoizes once across domains"
      `Quick ground_entry_stress;
    Alcotest.test_case "learner result is identical across domain counts"
      `Quick (fun () ->
        (* Forced fan-out: ARMG generation, bottom-clause similarity
           search and coverage all hit the deques even on this toy
           workload; the learned definition must be byte-identical at
           every domain count. *)
        with_forced_fanout (fun () ->
            let pos = [ ex "m1"; ex "m3"; ex "m4" ] and neg = [ ex "m2" ] in
            let learn jobs =
              let ctx =
                Context.create
                  (toy_config ~jobs ~threshold:0.7)
                  (toy_db ()) [ md_title ] []
              in
              let r = Learner.learn ctx ~pos ~neg in
              Definition.to_string r.Learner.definition
            in
            let seq = learn 1 in
            List.iter
              (fun jobs ->
                Alcotest.(check string)
                  (Printf.sprintf "%d domains" jobs)
                  seq (learn jobs))
              [ 2; 4; 8 ]))
  ]

let () =
  Alcotest.run "parallel"
    [
      ("pool", pool_tests);
      ("deque", deque_tests);
      ("memo", memo_tests);
      ("equivalence", equivalence_tests);
      ("cost model", cost_model_tests);
      ("stealing", steal_equivalence_test :: [ steal_counter_test ]);
      ("stress", stress_tests);
    ]
