open Dlearn_relation

let find (cfd : Cfd.t) relation =
  if not (String.equal (Relation.name relation) cfd.Cfd.relation) then
    invalid_arg
      (Printf.sprintf "Violation.find: CFD %s is over %s, not %s" cfd.Cfd.id
         cfd.Cfd.relation (Relation.name relation));
  let schema = Relation.schema relation in
  let lhs = Cfd.lhs_positions cfd schema in
  let rhs_pos, rhs_pat = Cfd.rhs_position cfd schema in
  (* Group ids by their left-hand-side value vector (only tuples matching
     the lhs pattern can participate in a violation). *)
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun id tuple ->
      let lhs_matches =
        List.for_all (fun (pos, pat) -> Cfd.matches pat (Tuple.get tuple pos)) lhs
      in
      if lhs_matches then begin
        let key =
          String.concat "\x00"
            (List.map (fun (pos, _) -> Value.to_string (Tuple.get tuple pos)) lhs)
        in
        match Hashtbl.find_opt groups key with
        | Some ids -> ids := id :: !ids
        | None -> Hashtbl.add groups key (ref [ id ])
      end)
    relation;
  let violations = ref [] in
  Hashtbl.iter
    (fun _ ids ->
      let ids = List.rev !ids in
      (* Single-tuple violations of a constant rhs pattern. *)
      (match rhs_pat with
      | Cfd.Const _ ->
          List.iter
            (fun id ->
              let v = Tuple.get (Relation.get relation id) rhs_pos in
              if not (Cfd.matches rhs_pat v) then
                violations := (id, id) :: !violations)
            ids
      | Cfd.Wildcard -> ());
      (* Pairwise violations within the group. *)
      let arr = Array.of_list ids in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          let t1 = Relation.get relation arr.(i)
          and t2 = Relation.get relation arr.(j) in
          let v1 = Tuple.get t1 rhs_pos and v2 = Tuple.get t2 rhs_pos in
          if
            not
              (Value.equal v1 v2 && Cfd.matches rhs_pat v1
              && Cfd.matches rhs_pat v2)
          then violations := (arr.(i), arr.(j)) :: !violations
        done
      done)
    groups;
  List.sort compare !violations

let find_all cfds db =
  List.filter_map
    (fun cfd ->
      match Database.find_opt db cfd.Cfd.relation with
      | Some rel -> Some (cfd, find cfd rel)
      | None -> None)
    cfds

let count cfds db =
  List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 (find_all cfds db)

let satisfies cfds db = count cfds db = 0
