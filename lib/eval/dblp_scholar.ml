open Dlearn_relation
open Dlearn_constraints
open Dlearn_core

type paper = {
  did : string;
  gsid : string;
  title : string;
  venue : string;
  year : int;
  authors : string list;
}

let generate ?(n = 160) ?(seed = 13) () =
  let rng = Random.State.make [| seed; 0xDB1 |] in
  let used = Hashtbl.create 64 in
  let fresh_title () =
    let rec go attempts =
      let t = Names.paper_title rng in
      if Hashtbl.mem used t && attempts < 20 then go (attempts + 1)
      else begin
        Hashtbl.add used t ();
        t
      end
    in
    go 0
  in
  let papers =
    List.init n (fun i ->
        {
          did = Printf.sprintf "dp%04d" i;
          gsid = Printf.sprintf "gs%05d" i;
          title = fresh_title ();
          venue = Names.venue rng;
          year = 1995 + Random.State.int rng 25;
          authors =
            List.init
              (1 + Random.State.int rng 2)
              (fun _ -> Names.person_name rng);
        })
  in
  let db = Database.create () in
  let dblp_pub =
    Database.create_relation db
      (Schema.string_attrs "dblp_pub" [ "did"; "title"; "venue"; "year" ])
  in
  let dblp_authors =
    Database.create_relation db
      (Schema.string_attrs "dblp_authors" [ "did"; "author" ])
  in
  let gs_pub =
    Database.create_relation db
      (Schema.string_attrs "gs_pub" [ "gsid"; "title"; "venue" ])
  in
  let gs_authors =
    Database.create_relation db
      (Schema.string_attrs "gs_authors" [ "gsid"; "author" ])
  in
  List.iter
    (fun p ->
      let sv s = Value.String s in
      ignore
        (Relation.insert dblp_pub
           (Tuple.make
              [ sv p.did; sv p.title; sv p.venue; sv (string_of_int p.year) ]));
      List.iter
        (fun a ->
          ignore (Relation.insert dblp_authors (Tuple.make [ sv p.did; sv a ])))
        p.authors;
      let gs_title = Corrupt.maybe rng 0.3 (Corrupt.typo rng) p.title in
      let gs_venue = Corrupt.venue_variant rng p.venue in
      ignore
        (Relation.insert gs_pub (Tuple.make [ sv p.gsid; sv gs_title; sv gs_venue ]));
      List.iter
        (fun a ->
          ignore
            (Relation.insert gs_authors
               (Tuple.make [ sv p.gsid; sv (Corrupt.abbreviate_name rng a) ])))
        p.authors)
    papers;
  let md_title =
    Md.make ~id:"md_paper_title" ~left:"dblp_pub" ~right:"gs_pub"
      ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
  in
  let md_venue =
    Md.make ~id:"md_venue" ~left:"dblp_pub" ~right:"gs_pub"
      ~compared:[ ("venue", "venue") ] ~unified:("venue", "venue") ()
  in
  let cfds =
    [
      Cfd.fd ~id:"cfd_gs_title" ~relation:"gs_pub" [ "gsid" ] "title";
      Cfd.fd ~id:"cfd_dblp_year" ~relation:"dblp_pub" [ "did" ] "year";
    ]
  in
  let target = Schema.string_attrs "gsPaperYear" [ "gsId"; "year" ] in
  let config =
    {
      (Config.default ~target) with
      Config.depth = 3;
      constant_attrs = [];
      searchable_attrs =
        [
          ("dblp_pub", "did"); ("dblp_authors", "did");
          ("gs_pub", "gsid"); ("gs_authors", "gsid");
        ];
      sim = { Md.default_sim with Md.threshold = 0.7 };
      seed;
    }
  in
  let pos =
    List.map
      (fun p ->
        Tuple.make [ Value.String p.gsid; Value.String (string_of_int p.year) ])
      papers
  in
  let neg =
    List.map
      (fun p ->
        let wrong =
          let offset = 1 + Random.State.int rng 10 in
          if Random.State.bool rng then p.year + offset else p.year - offset
        in
        Tuple.make [ Value.String p.gsid; Value.String (string_of_int wrong) ])
      papers
  in
  { Workload.name = "DBLP+Scholar"; db; mds = [ md_title; md_venue ]; cfds; config; pos; neg }
