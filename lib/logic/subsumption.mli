(** θ-subsumption for clauses with repair literals (Definition 4.4).

    [C ⊆θ D] iff some substitution θ (over C's variables, into D's terms)
    maps every literal of C onto a literal of D — repair literals treated
    as ordinary atoms matched by constraint origin — and, additionally,
    every repair literal of D connected to a mapped literal of D is itself
    in the image of θ (soundness condition of Theorem 4.6).

    Equality, inequality and similarity literals of C are checked against
    D's restriction-literal closure rather than matched syntactically:
    [Eq (u, v)] holds when θu and θv are connected by D's equality
    literals, [Sim] when some similarity literal of D links their classes,
    [Neq] when their classes differ. This mirrors the "additional testings"
    for clauses with equality and similarity the paper references (§4.2).

    Three search engines decide the relation (see [docs/SUBSUMPTION.md]):

    - [`Csp] (default): a CSP-style matching kernel. Setup interns C's
      variables and D's terms to dense ints and precomputes per generative
      literal its candidate table; search runs over a mutable binding
      array with an undo trail, forward-checks the candidate domains of
      connected literals on each assignment, and selects literals by
      minimum remaining domain within statically computed connected
      components.
    - [`Backtrack]: the original backtracking search over persistent
      substitutions with dynamic component decomposition and
      most-constrained-literal selection — kept as the rollout fallback
      and bench baseline.
    - [`Sat]: ground instantiation into an incremental CDCL solver
      ({!Sat_core}/{!Sat_subsumption}) — selector variables per
      (literal, candidate) pairing, the solver reused across the ARMG
      chain via per-literal assumption variables so conflict clauses
      learned refuting one candidate prune every later one.

    All are bounded by a step budget for pathological inputs and decide
    the same relation (property-tested against each other and against
    {!subsumes_naive}). *)

type outcome =
  | Subsumed of Substitution.t
  | Not_subsumed
  | Budget_exhausted

(** Search engine selection. *)
type engine = [ `Csp | `Backtrack | `Sat ]

(** [default_engine ()] reads [DLEARN_SUBSUMPTION] ([backtrack]/[bt]/[0]/
    [off] select [`Backtrack], [sat] selects [`Sat]; anything else,
    including unset, selects [`Csp]). Read per call so a test matrix can
    flip it. *)
val default_engine : unit -> engine

val engine_of_string : string -> engine option

val engine_name : engine -> string

(** Every engine with its canonical name — the single source of truth
    the CLI enum and help text render from, so the surfaces cannot
    drift. *)
val all_engines : (string * engine) list

(** A target clause D preprocessed for matching: literal indexes by
    predicate and origin, the restriction-literal closure, and the repair
    connectivity sets of Definition 4.4. Preparing once and matching many
    clauses against it is the dominant cost saving of coverage testing. *)
type target

val prepare : Clause.t -> target

(** [subsumes_target ?engine ?budget ?repair_connectivity c t] decides
    [c ⊆θ D] against a prepared target. [engine] defaults to
    {!default_engine}[ ()]. *)
val subsumes_target :
  ?engine:engine ->
  ?budget:int ->
  ?repair_connectivity:bool ->
  Clause.t ->
  target ->
  outcome

val subsumes_target_bool :
  ?engine:engine ->
  ?budget:int ->
  ?repair_connectivity:bool ->
  Clause.t ->
  target ->
  bool

(** [subsumes ?engine ?budget ?repair_connectivity c d] decides [c ⊆θ d].
    [budget] (default 200_000) bounds unification attempts.
    [repair_connectivity] (default [true]) enables Definition 4.4's second
    condition; the repair-application machinery disables it when comparing
    fully repaired (repair-free) clauses, where it is vacuous anyway. *)
val subsumes :
  ?engine:engine ->
  ?budget:int ->
  ?repair_connectivity:bool ->
  Clause.t ->
  Clause.t ->
  outcome

(** [subsumes_bool c d] is [subsumes c d = Subsumed _]; budget exhaustion
    counts as failure and is logged at warning level. *)
val subsumes_bool :
  ?engine:engine ->
  ?budget:int ->
  ?repair_connectivity:bool ->
  Clause.t ->
  Clause.t ->
  bool

(** [equivalent c d] holds when each clause θ-subsumes the other —
    the equivalence used by Proposition 4.8. *)
val equivalent : ?engine:engine -> ?budget:int -> Clause.t -> Clause.t -> bool

(** [subsumes_naive c d] is a reference implementation: plain chronological
    backtracking over the body literals in order, no component
    decomposition, no dynamic literal selection. It decides the same
    relation as {!subsumes} (property-tested) but degrades badly on large
    clauses — kept as the correctness oracle and as the baseline of the
    search-strategy ablation. *)
val subsumes_naive :
  ?budget:int -> ?repair_connectivity:bool -> Clause.t -> Clause.t -> outcome

(** Process-wide counters of the CSP kernel, aggregated across domains.
    [nodes] counts candidate assignments tried, [propagations] candidates
    pruned by forward checking, [wipeouts] domains emptied by propagation.
    Setup and search wall-clock time are accumulated separately. Per-solve
    figures are logged at debug level on the [dlearn.subsumption] source. *)
type stats = {
  solves : int;
  nodes : int;
  propagations : int;
  wipeouts : int;
  setup_seconds : float;
  search_seconds : float;
}

val stats : unit -> stats

val reset_stats : unit -> unit

(** [log_stats ()] reports the accumulated counters at info level on the
    [dlearn.subsumption] source. *)
val log_stats : unit -> unit

(** Incremental matching primitives for the generalisation step (§4.2):
    ProGolem-style ARMG walks a clause literal by literal, maintaining a
    set of candidate substitutions into the ground bottom clause; a literal
    with no extension is blocking. *)
module Armg : sig
  (** [head_unify t head] unifies a clause head with the target's head. *)
  val head_unify : target -> Literal.t -> Substitution.t option

  (** [extend t theta l] enumerates the extensions of [theta] mapping the
      generative literal [l] (schema, repair or similarity atom) into the
      target.
      @raise Invalid_argument on equality/inequality literals. *)
  val extend : target -> Substitution.t -> Literal.t -> Substitution.t list

  (** [check t theta l] evaluates a restriction literal under [theta]:
      [`Unknown] when a side is still unbound. *)
  val check :
    target -> Substitution.t -> Literal.t -> [ `Sat | `Unsat | `Unknown ]
end
