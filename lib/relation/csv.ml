let parse_line ?(delim = ',') s =
  let n = String.length s in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* States: outside quotes / inside quotes. *)
  let rec outside i =
    if i >= n then flush_field ()
    else if s.[i] = delim then begin
      flush_field ();
      outside (i + 1)
    end
    else if s.[i] = '"' && Buffer.length buf = 0 then inside (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      outside (i + 1)
    end
  and inside i =
    if i >= n then flush_field () (* unterminated quote: accept *)
    else if s.[i] = '"' then
      if i + 1 < n && s.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        inside (i + 2)
      end
      else outside (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      inside (i + 1)
    end
  in
  outside 0;
  List.rev !fields

let needs_quoting delim field =
  String.exists (fun c -> c = delim || c = '"' || c = '\n' || c = '\r') field

let render_field delim field =
  if needs_quoting delim field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let render_line ?(delim = ',') fields =
  String.concat (String.make 1 delim) (List.map (render_field delim) fields)

let load ?(delim = ',') schema path =
  let rel = Relation.create schema in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line_no = ref 0 in
      try
        while true do
          let line = input_line ic in
          (* CRLF files: [input_line] strips the \n but keeps the \r,
             which would end up inside the last field's value. Unquoted
             fields cannot contain \r (save quotes them), so stripping
             one trailing \r before parsing is always safe. *)
          let line =
            let n = String.length line in
            if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
            else line
          in
          incr line_no;
          if String.length line > 0 then begin
            let fields = parse_line ~delim line in
            if List.length fields <> Schema.arity schema then
              invalid_arg
                (Printf.sprintf "Csv.load: %s line %d: %d fields, expected %d"
                   path !line_no (List.length fields) (Schema.arity schema));
            ignore (Relation.insert rel (Tuple.of_strings fields))
          end
        done;
        assert false
      with End_of_file -> rel)

let save ?(delim = ',') relation path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Relation.iter
        (fun _ tu ->
          let fields =
            Array.to_list (Array.map Value.to_string tu)
          in
          output_string oc (render_line ~delim fields);
          output_char oc '\n')
        relation)
