(** Terms: variables or constants (§2.1).

    Variables are identified by name. Bottom-clause construction assigns
    names of the form ["v0"], ["v1"], ... to database constants, and
    ["r0"], ["r1"], ... to the fresh replacement variables introduced by
    repair literals; nothing in this module depends on that convention. *)

type t =
  | Var of string
  | Const of Dlearn_relation.Value.t

val var : string -> t

val const : Dlearn_relation.Value.t -> t

val str : string -> t
(** [str s] is [Const (String s)]. *)

val is_var : t -> bool

val is_const : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Hashtable keyed by terms under structural equality, used to intern
    terms to dense int ids in the subsumption kernel. *)
module Tbl : Hashtbl.S with type key = t

(** A generator of fresh variable names with a given prefix, threading a
    counter. [Fresh.make "r"] yields ["r0"], ["r1"], ... *)
module Fresh : sig
  type gen

  val make : string -> gen

  val next : gen -> t
end
