(** Substitutions θ: finite maps from variable names to terms (§4.2). *)

type t

val empty : t

val singleton : string -> Term.t -> t

val of_list : (string * Term.t) list -> t

val to_list : t -> (string * Term.t) list

val find : t -> string -> Term.t option

val mem : t -> string -> bool

(** [bind t v term] extends [t] with [v ↦ term]. Returns [None] when [v]
    is already bound to a different term — the consistency check at the
    core of subsumption search. *)
val bind : t -> string -> Term.t -> t option

(** [add t v term] is [bind] without the consistency check: any existing
    binding of [v] is overwritten. Used to reconstruct a witness
    substitution from the CSP kernel's binding array, where consistency
    was already enforced on the int representation. *)
val add : t -> string -> Term.t -> t

(** [apply_term t term] resolves a variable through [t] (one step —
    substitutions here always map into the target clause's term space, so
    no iteration is needed). *)
val apply_term : t -> Term.t -> Term.t

val apply_literal : t -> Literal.t -> Literal.t

val apply_clause : t -> Clause.t -> Clause.t

val cardinal : t -> int

val pp : Format.formatter -> t -> unit
