(** A mutex-guarded memoized thunk: [Lazy.t] that is safe to force from
    several domains.

    [Lazy.force] raises [Lazy.Undefined] when two domains race on one
    suspension, which is exactly the access pattern of the coverage
    engine's shared per-clause caches. [Memo.force] instead blocks the
    losers until the winner has computed, so every domain observes the
    same (physically equal) value and the computation runs once.

    The thunk must not force its own cell (self-deadlock, like the
    recursive forcing [Lazy] reports as [Undefined]). An exception raised
    by the thunk is cached and re-raised on every force. *)

type 'a t

val make : (unit -> 'a) -> 'a t

(** A cell that is already forced; [force] never blocks. *)
val return : 'a -> 'a t

val force : 'a t -> 'a

(** [is_forced t] is [true] once a [force] has completed (also when the
    thunk raised). Used by tests to pin which coverage branches ran. *)
val is_forced : 'a t -> bool
