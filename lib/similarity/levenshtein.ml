let distance a b =
  let n = String.length a and m = String.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    let prev = Array.init (m + 1) Fun.id in
    let curr = Array.make (m + 1) 0 in
    for i = 1 to n do
      curr.(0) <- i;
      for j = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <-
          min
            (min (curr.(j - 1) + 1) (prev.(j) + 1))
            (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let similarity a b =
  let n = String.length a and m = String.length b in
  if n = 0 && m = 0 then 1.0
  else 1.0 -. (float_of_int (distance a b) /. float_of_int (max n m))
