(** Horn definitions: sets of clauses sharing a head predicate (§2.1),
    i.e. a non-recursive Datalog program / union of conjunctive queries. *)

type t = {
  target : string;  (** head predicate of every clause *)
  clauses : Clause.t list;
}

val empty : string -> t

(** [add t c] appends [c].
    @raise Invalid_argument if [c]'s head predicate is not [t.target]. *)
val add : t -> Clause.t -> t

val size : t -> int

val is_empty : t -> bool

(** [repaired_definitions t] enumerates the repaired definitions of [t]:
    each picks exactly one repaired clause per clause of [t] (§3.2). The
    product is capped by [cap] (default 256). *)
val repaired_definitions : ?cap:int -> t -> t list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
