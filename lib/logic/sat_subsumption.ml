module Obs = Dlearn_obs.Obs

(* Obs counters under sat.* — hoisted handles, bumped with per-call
   deltas of the solver's own counters. *)
module Stats = struct
  let solves = Obs.counter "sat.solves"
  let propagations = Obs.counter "sat.propagations"
  let conflicts = Obs.counter "sat.conflicts"
  let learned = Obs.counter "sat.learned_clauses"
  let restarts = Obs.counter "sat.restarts"
  let reused = Obs.counter "sat.reused_clause_hits"
  let encode_ns = Obs.counter "sat.encode_ns"
  let solve_ns = Obs.counter "sat.solve_ns"
end

type stats = {
  solves : int;
  propagations : int;
  conflicts : int;
  learned : int;
  restarts : int;
  reused_clause_hits : int;
  encode_seconds : float;
  solve_seconds : float;
}

let stats () =
  {
    solves = Obs.value Stats.solves;
    propagations = Obs.value Stats.propagations;
    conflicts = Obs.value Stats.conflicts;
    learned = Obs.value Stats.learned;
    restarts = Obs.value Stats.restarts;
    reused_clause_hits = Obs.value Stats.reused;
    encode_seconds = float_of_int (Obs.value Stats.encode_ns) /. 1e9;
    solve_seconds = float_of_int (Obs.value Stats.solve_ns) /. 1e9;
  }

let reset_stats () =
  List.iter Obs.reset_counter
    [
      Stats.solves; Stats.propagations; Stats.conflicts; Stats.learned;
      Stats.restarts; Stats.reused; Stats.encode_ns; Stats.solve_ns;
    ]

(* DLEARN_SAT_REUSE=off/0/false rebuilds the solver per solve instead of
   sharing it across the ARMG chain. Verdicts are identical either way
   (pinned by test); the flag exists to measure the reuse win and as a
   rollout escape hatch. *)
let reuse_enabled () =
  match Sys.getenv_opt "DLEARN_SAT_REUSE" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "off" | "0" | "false" | "no" -> false
      | _ -> true)
  | None -> true

(* One registered body literal: its assumption variable plus what the
   model checker needs to interpret a solution. *)
type shape =
  | Gen of {
      sels : int array; (* selector vars, candidate order *)
      cand_d : int array; (* parallel: D literal id, -1 = env branch *)
      cand_binds : (string * int) array array; (* (var, term id) per cand *)
      sim : (Term.t * Term.t) option; (* Sim args, for deferred env eval *)
    }
  | Check_pending of Literal.t (* resolved by the residue check on models *)
  | Check_done (* ground-decided at registration *)

type entry = { avar : int; shape : shape }

type state = {
  solver : Sat_core.t;
  head : Literal.t; (* the state encodes candidates with this head *)
  entries : (Literal.t, entry) Hashtbl.t;
  bvars : (string * int, int) Hashtbl.t; (* (C var, D term id) -> sat var *)
  var_terms : (string, int list ref) Hashtbl.t; (* known domain per var *)
  mutable gvar : int option; (* current solve's blocking guard *)
}

type cache = { mutable st : state option; lock : Mutex.t }

let new_cache () = { st = None; lock = Mutex.create () }

type view = {
  d_literals : Literal.t array;
  rel_ids : string -> int list;
  repair_ids : string -> int list;
  sim_ids : int list;
  env : Clause_env.t;
  term_tab : Term.t array;
  key_tids : int array array;
  connectivity_ok : int list -> bool;
  attached_repairs : int -> int list;
  resolve_residue : Substitution.t -> Literal.t list -> bool;
  cache : cache;
}

exception Exhausted
exception Head_mismatch

let fresh_state (c : Clause.t) =
  {
    solver = Sat_core.create ();
    head = c.head;
    entries = Hashtbl.create 32;
    bvars = Hashtbl.create 64;
    var_terms = Hashtbl.create 16;
    gvar = None;
  }

(* Head unification seeds the fixed (var -> term id) bindings, exactly
   as the other engines do: repeated variables need the same interned
   id, constants compare through the env's equality closure. *)
let head_binding view (c : Clause.t) =
  match (c.head, view.d_literals.(0)) with
  | Literal.Rel { pred = p1; args = a1 }, Literal.Rel { pred = p2; args = a2 }
    when String.equal p1 p2 && Array.length a1 = Array.length a2 ->
      let dk = view.key_tids.(0) in
      let tbl = Hashtbl.create 8 in
      (try
         Array.iteri
           (fun i ct ->
             match ct with
             | Term.Const _ ->
                 if not (Clause_env.eq view.env ct a2.(i)) then
                   raise Head_mismatch
             | Term.Var v -> (
                 match Hashtbl.find_opt tbl v with
                 | None -> Hashtbl.add tbl v dk.(i)
                 | Some t -> if t <> dk.(i) then raise Head_mismatch))
           a1;
         Some tbl
       with Head_mismatch -> None)
  | _ -> None

(* Binding variable for (v, t), created on demand. Creation appends the
   at-most-one-term clauses against the variable's known domain — these
   are globally sound ("θ is a function"), so they accumulate safely
   across candidates. *)
let bvar st (v : string) (t : int) =
  match Hashtbl.find_opt st.bvars (v, t) with
  | Some x -> x
  | None ->
      let x = Sat_core.new_var st.solver in
      Hashtbl.add st.bvars (v, t) x;
      let dom =
        match Hashtbl.find_opt st.var_terms v with
        | Some d -> d
        | None ->
            let d = ref [] in
            Hashtbl.add st.var_terms v d;
            d
      in
      List.iter
        (fun t' ->
          let x' = Hashtbl.find st.bvars (v, t') in
          Sat_core.add_clause st.solver [ Sat_core.neg x; Sat_core.neg x' ])
        !dom;
      dom := t :: !dom;
      x

(* At-most-one over selector vars: pairwise when small, a sequential
   (Sinz) ladder otherwise. Pure definitional clauses — unconditional. *)
let at_most_one st sels =
  let n = Array.length sels in
  if n <= 1 then ()
  else if n <= 8 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat_core.add_clause st.solver
          [ Sat_core.neg sels.(i); Sat_core.neg sels.(j) ]
      done
    done
  else begin
    let z = Array.init (n - 1) (fun _ -> Sat_core.new_var st.solver) in
    for i = 0 to n - 2 do
      Sat_core.add_clause st.solver
        [ Sat_core.neg sels.(i); Sat_core.pos z.(i) ];
      if i > 0 then begin
        Sat_core.add_clause st.solver
          [ Sat_core.neg z.(i - 1); Sat_core.pos z.(i) ];
        Sat_core.add_clause st.solver
          [ Sat_core.neg z.(i - 1); Sat_core.neg sels.(i) ]
      end
    done;
    Sat_core.add_clause st.solver
      [ Sat_core.neg z.(n - 2); Sat_core.neg sels.(n - 1) ]
  end

(* Argument descriptors, mirroring the CSP kernel's [descr]: a constant
   compares through the env closure, a head-bound variable through its
   fixed interned id, a free variable accumulates a binding. *)
type descr = DC of Term.t | DT of int | DV of string

let descr head_tbl = function
  | Term.Const _ as t -> DC t
  | Term.Var v -> (
      match Hashtbl.find_opt head_tbl v with
      | Some t -> DT t
      | None -> DV v)

exception Reject

let unify_descr env term_tab acc d dt_id =
  match d with
  | DC ct -> if not (Clause_env.eq env ct term_tab.(dt_id)) then raise Reject
  | DT t -> if t <> dt_id then raise Reject
  | DV v ->
      let rec chk = function
        | [] -> acc := (v, dt_id) :: !acc
        | (v', t') :: rest ->
            if String.equal v' v then begin
              if t' <> dt_id then raise Reject
            end
            else chk rest
      in
      chk !acc

(* Resolve a C term under the head bindings only (registration-time
   resolution): None = free variable. *)
let resolve_setup view head_tbl = function
  | Term.Const _ as t -> Some t
  | Term.Var v ->
      Option.map (fun t -> view.term_tab.(t)) (Hashtbl.find_opt head_tbl v)

(* Build one literal's candidate list, mirroring the CSP kernel's
   [build_cands] against the head-seeded bindings. Returns the
   candidates as (d_id, binds) — d_id = -1 is the environment
   pseudo-candidate — plus the Sim arguments when the environment
   branch is deferred to model checking. *)
let candidates view head_tbl spend (l : Literal.t) :
    (int * (string * int) array) list * (Term.t * Term.t) option =
  let attempt_keys ds id =
    let dk = view.key_tids.(id) in
    if Array.length dk <> Array.length ds then None
    else
      try
        let acc = ref [] in
        Array.iteri
          (fun i d -> unify_descr view.env view.term_tab acc d dk.(i))
          ds;
        Some (id, Array.of_list (List.rev !acc))
      with Reject -> None
  in
  match l with
  | Literal.Rel { pred; args } ->
      let ids = view.rel_ids pred in
      spend (List.length ids);
      let ds = Array.map (descr head_tbl) args in
      (List.filter_map (attempt_keys ds) ids, None)
  | Literal.Repair r ->
      let ids = view.repair_ids (Literal.origin_to_string r.origin) in
      spend (List.length ids);
      let ds = [| descr head_tbl r.subject; descr head_tbl r.replacement |] in
      (List.filter_map (attempt_keys ds) ids, None)
  | Literal.Sim (x, y) ->
      spend (List.length view.sim_ids);
      let dx = descr head_tbl x and dy = descr head_tbl y in
      let via_literals =
        List.concat_map
          (fun id ->
            let dk = view.key_tids.(id) in
            let attempt a b =
              try
                let acc = ref [] in
                unify_descr view.env view.term_tab acc dx a;
                unify_descr view.env view.term_tab acc dy b;
                Some (id, Array.of_list (List.rev !acc))
              with Reject -> None
            in
            List.filter_map Fun.id
              [ attempt dk.(0) dk.(1); attempt dk.(1) dk.(0) ])
          view.sim_ids
      in
      (* Environment pseudo-candidate, ordered like the CSP kernel:
         decidable at setup — first when similar, absent otherwise;
         undecidable — appended last as a deferred branch the model
         checker validates. *)
      let env_cand = (-1, [||]) in
      (match (resolve_setup view head_tbl x, resolve_setup view head_tbl y) with
      | Some rx, _ when Term.is_var rx -> (via_literals, None)
      | _, Some ry when Term.is_var ry -> (via_literals, None)
      | Some rx, Some ry ->
          if Clause_env.sim view.env rx ry then (env_cand :: via_literals, None)
          else (via_literals, None)
      | _ -> (via_literals @ [ env_cand ], Some (x, y)))
  | Literal.Eq _ | Literal.Neq _ -> assert false

(* Registration-time evaluation of a check, mirroring the CSP kernel's
   [eval_check]: only decidable when both sides resolve to non-variable
   terms; everything else is left to the residue resolution. *)
let eval_check_setup view head_tbl l =
  let r t = resolve_setup view head_tbl t in
  match l with
  | Literal.Eq (x, y) -> (
      match (r x, r y) with
      | Some tx, Some ty when not (Term.is_var tx || Term.is_var ty) ->
          if Clause_env.eq view.env tx ty then `Sat else `Unsat
      | _ -> `Unknown)
  | Literal.Neq (x, y) -> (
      match (r x, r y) with
      | Some tx, Some ty when not (Term.is_var tx || Term.is_var ty) ->
          if Clause_env.neq view.env tx ty then `Sat else `Unsat
      | _ -> `Unknown)
  | _ -> `Unknown

(* Conditional pair clauses for a pending check over the sides' known
   domains: sound regardless of which candidate is active (they only say
   "if this check is asserted and θ binds these two values, the check
   fails"), so they persist across the chain. Bounded to keep the
   encoding from going quadratic on huge domains — the model checker
   covers whatever is skipped. *)
let check_pair_clauses view st head_tbl avar l =
  let holds a b =
    match l with
    | Literal.Eq _ -> Clause_env.eq view.env a b
    | Literal.Neq _ -> Clause_env.neq view.env a b
    | _ -> true
  in
  let x, y =
    match l with
    | Literal.Eq (x, y) | Literal.Neq (x, y) -> (x, y)
    | _ -> assert false
  in
  let side t =
    match resolve_setup view head_tbl t with
    | Some r -> `Fixed r
    | None -> (
        match t with
        | Term.Var v -> (
            match Hashtbl.find_opt st.var_terms v with
            | Some dom -> `Free (v, !dom)
            | None -> `Free (v, []))
        | Term.Const _ -> assert false)
  in
  match (side x, side y) with
  | `Fixed _, `Fixed _ -> ()
  | `Fixed tx, `Free (v, dom) | `Free (v, dom), `Fixed tx ->
      if not (Term.is_var tx) then
        List.iter
          (fun t ->
            let tv = view.term_tab.(t) in
            if (not (Term.is_var tv)) && not (holds tx tv) then
              Sat_core.add_clause st.solver
                [ Sat_core.neg avar; Sat_core.neg (bvar st v t) ])
          dom
  | `Free (vx, domx), `Free (vy, domy) ->
      if List.length domx * List.length domy <= 400 then
        List.iter
          (fun tx ->
            let ttx = view.term_tab.(tx) in
            if not (Term.is_var ttx) then
              List.iter
                (fun ty ->
                  let tty = view.term_tab.(ty) in
                  if (not (Term.is_var tty)) && not (holds ttx tty) then
                    Sat_core.add_clause st.solver
                      [
                        Sat_core.neg avar;
                        Sat_core.neg (bvar st vx tx);
                        Sat_core.neg (bvar st vy ty);
                      ])
                domy)
          domx

(* Register a body literal into the shared solver: assumption var,
   selectors, selection and binding clauses. Idempotent per literal —
   an ARMG sibling sharing the literal reuses the whole block, and any
   conflict clauses learned about it. *)
let register view st head_tbl spend (l : Literal.t) =
  match Hashtbl.find_opt st.entries l with
  | Some e -> e
  | None ->
      let solver = st.solver in
      let e =
        match l with
        | Literal.Eq _ | Literal.Neq _ -> (
            let avar = Sat_core.new_var solver in
            match eval_check_setup view head_tbl l with
            | `Sat -> { avar; shape = Check_done }
            | `Unsat ->
                Sat_core.add_clause solver [ Sat_core.neg avar ];
                { avar; shape = Check_done }
            | `Unknown ->
                check_pair_clauses view st head_tbl avar l;
                { avar; shape = Check_pending l })
        | _ ->
            let cands, sim = candidates view head_tbl spend l in
            let avar = Sat_core.new_var solver in
            let n = List.length cands in
            let sels = Array.init n (fun _ -> Sat_core.new_var solver) in
            let cand_d = Array.make n (-1) in
            let cand_binds = Array.make n [||] in
            List.iteri
              (fun k (d_id, binds) ->
                cand_d.(k) <- d_id;
                cand_binds.(k) <- binds;
                (* selecting a candidate commits its bindings *)
                Array.iter
                  (fun (v, t) ->
                    Sat_core.add_clause solver
                      [ Sat_core.neg sels.(k); Sat_core.pos (bvar st v t) ])
                  binds)
              cands;
            (* at least one candidate when the literal is asserted *)
            Sat_core.add_clause solver
              (Sat_core.neg avar
              :: List.map (fun s -> Sat_core.pos s) (Array.to_list sels));
            at_most_one st sels;
            { avar; shape = Gen { sels; cand_d; cand_binds; sim } }
      in
      Hashtbl.add st.entries l e;
      e

(* Model interpretation: θ from the selected candidates of the asserted
   literals (plus the head seeds) — binding variables are auxiliary and
   never enter the witness, mirroring the reference engines where θ
   holds exactly the search's bindings. Returns the substitution, the
   raw (var -> term id) table behind it, and the per-literal selection. *)
let extract view st head_tbl actives =
  let bind_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun v t -> Hashtbl.replace bind_tbl v t) head_tbl;
  let selected =
    List.filter_map
      (fun (l, e) ->
        match e.shape with
        | Gen g ->
            let k = ref (-1) in
            Array.iteri
              (fun i s -> if !k < 0 && Sat_core.value st.solver s then k := i)
              g.sels;
            assert (!k >= 0);
            Array.iter
              (fun (v, t) -> Hashtbl.replace bind_tbl v t)
              g.cand_binds.(!k);
            Some (l, e, !k)
        | _ -> None)
      actives
  in
  let theta =
    Hashtbl.fold
      (fun v t acc -> Substitution.add acc v view.term_tab.(t))
      bind_tbl Substitution.empty
  in
  (theta, bind_tbl, selected)

(* Deferred environment-branch evaluation on a full model, mirroring the
   CSP kernel's [eval_deferred] + [finish]: both sides must resolve to
   non-variable terms the env closure relates; an unbound side can only
   be filled by the residue resolution's fresh constants, which never
   satisfy a similarity. *)
let env_branch_ok view theta (x, y) =
  let r t =
    match t with
    | Term.Const _ -> Some t
    | Term.Var v ->
        if Substitution.mem theta v then Some (Substitution.apply_term theta t)
        else None
  in
  match (r x, r y) with
  | Some rx, Some ry when not (Term.is_var rx || Term.is_var ry) ->
      Clause_env.sim view.env rx ry
  | _ -> false

(* A check's ground value under the model, for lemma targeting: Some b
   when both sides are fixed non-variable values, None otherwise. *)
let eval_check_model view head_tbl bind_tbl l =
  let r t =
    match resolve_setup view head_tbl t with
    | Some x -> Some x
    | None -> (
        match t with
        | Term.Var v ->
            Option.map
              (fun tid -> view.term_tab.(tid))
              (Hashtbl.find_opt bind_tbl v)
        | Term.Const _ -> None)
  in
  match l with
  | Literal.Eq (x, y) -> (
      match (r x, r y) with
      | Some tx, Some ty when not (Term.is_var tx || Term.is_var ty) ->
          Some (Clause_env.eq view.env tx ty)
      | _ -> None)
  | Literal.Neq (x, y) -> (
      match (r x, r y) with
      | Some tx, Some ty when not (Term.is_var tx || Term.is_var ty) ->
          Some (Clause_env.neq view.env tx ty)
      | _ -> None)
  | _ -> None

(* The b-literals asserting "θ binds this check/sim side as the model
   does": [] for fixed sides, the binding var for free ones, None when
   the side is unbound (no sound lemma exists then). *)
let side_lits st head_tbl bind_tbl t =
  match t with
  | Term.Const _ -> Some []
  | Term.Var v ->
      if Hashtbl.mem head_tbl v then Some []
      else (
        match Hashtbl.find_opt bind_tbl v with
        | Some tid -> Some [ Sat_core.neg (bvar st v tid) ]
        | None -> None)

let subsumes ?(budget = 200_000) ?(repair_connectivity = true) (view : view)
    (c : Clause.t) =
  Obs.span "subsumption.sat" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let budget = ref budget in
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise Exhausted
  in
  match head_binding view c with
  | None -> `Not_subsumed
  | Some head_tbl ->
      let reuse = reuse_enabled () in
      let run () =
        let st =
          if not reuse then fresh_state c
          else
            match view.cache.st with
            | Some st when st.head = c.head -> st
            | _ ->
                let st = fresh_state c in
                view.cache.st <- Some st;
                st
        in
        let solver = st.solver in
        let s0 = Sat_core.stats solver in
        let last_conflicts = ref s0.conflicts in
        (* retire the previous solve's blocking guard: its clauses were
           specific to that solve's asserted-literal set *)
        (match st.gvar with
        | Some g ->
            Sat_core.add_clause solver [ Sat_core.neg g ];
            st.gvar <- None
        | None -> ());
        let entries =
          List.map (fun l -> (l, register view st head_tbl spend l)) c.body
        in
        (* one assumption per distinct body literal *)
        let avars =
          List.sort_uniq compare (List.map (fun (_, e) -> e.avar) entries)
        in
        let assumptions = ref (List.map Sat_core.pos avars) in
        (* decision order: the asserted literals' selectors in body
           order, candidate order within a literal, preferred phase true
           — the first model follows the reference enumeration *)
        let prio = ref [] in
        List.iter
          (fun (_, e) ->
            match e.shape with
            | Gen g ->
                Array.iter
                  (fun s ->
                    Sat_core.set_phase solver s true;
                    prio := s :: !prio)
                  g.sels
            | _ -> ())
          entries;
        Sat_core.set_priority solver (Array.of_list (List.rev !prio));
        Obs.add Stats.encode_ns
          (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
        let t_solve = Unix.gettimeofday () in
        let pending_checks =
          List.filter_map
            (fun (l, e) ->
              match e.shape with Check_pending _ -> Some l | _ -> None)
            entries
        in
        let guard () =
          match st.gvar with
          | Some g -> g
          | None ->
              let g = Sat_core.new_var solver in
              st.gvar <- Some g;
              assumptions := Sat_core.pos g :: !assumptions;
              g
        in
        (* Repair connectivity (Definition 4.4), encoded up front: a
           model selecting a candidate onto a non-repair D literal must
           also map every repair attached to it, and likewise for the
           always-mapped head. The "some selector maps onto r"
           disjunctions range only over THIS solve's literal set — they
           grow as later candidates register literals — so the clauses
           are gated by the per-solve guard and retired with it. Without
           them the CEGAR loop excludes connectivity-violating models
           one blocking clause at a time, which enumerates forever on
           repair-heavy targets; the model check below stays as a
           belt-and-braces backstop. *)
        if repair_connectivity then begin
          let uniq_entries =
            let seen = Hashtbl.create 16 in
            List.filter
              (fun (_, e) ->
                if Hashtbl.mem seen e.avar then false
                else begin
                  Hashtbl.add seen e.avar ();
                  true
                end)
              entries
          in
          let onto : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun (_, e) ->
              match e.shape with
              | Gen g ->
                  Array.iteri
                    (fun k d_id ->
                      if d_id >= 0 then
                        match Hashtbl.find_opt onto d_id with
                        | Some l -> l := g.sels.(k) :: !l
                        | None -> Hashtbl.add onto d_id (ref [ g.sels.(k) ]))
                    g.cand_d
              | _ -> ())
            uniq_entries;
          let sels_onto r =
            match Hashtbl.find_opt onto r with
            | Some l -> List.rev_map Sat_core.pos !l
            | None -> []
          in
          let emit prefix r =
            let gv = guard () in
            Sat_core.add_clause solver
              (Sat_core.neg gv :: (prefix @ sels_onto r))
          in
          List.iter (fun r -> emit [] r) (view.attached_repairs 0);
          List.iter
            (fun (_, e) ->
              match e.shape with
              | Gen g ->
                  Array.iteri
                    (fun k d_id ->
                      if d_id >= 0 then
                        List.iter
                          (fun r -> emit [ Sat_core.neg g.sels.(k) ] r)
                          (view.attached_repairs d_id))
                    g.cand_d
              | _ -> ())
            uniq_entries
        end;
        let rec cegar () =
          spend 1;
          match
            Sat_core.solve ~assumptions:!assumptions
              ~conflict_limit:(max 1 !budget) solver
          with
          | `Limit -> raise Exhausted
          | (`Unsat | `Sat) as r -> (
              let s1 = Sat_core.stats solver in
              spend (s1.conflicts - !last_conflicts);
              last_conflicts := s1.conflicts;
              match r with
              | `Unsat -> `Not_subsumed
              | `Sat ->
                  let theta, bind_tbl, selected =
                    extract view st head_tbl entries
                  in
                  let ok = ref true in
                  (* deferred environment similarity branches *)
                  List.iter
                    (fun (_, e, k) ->
                      match e.shape with
                      | Gen g when g.cand_d.(k) < 0 -> (
                          match g.sim with
                          | Some (x, y)
                            when not (env_branch_ok view theta (x, y)) ->
                              ok := false;
                              (* reusable lemma when both sides are
                                 fixed by the model *)
                              (match
                                 ( side_lits st head_tbl bind_tbl x,
                                   side_lits st head_tbl bind_tbl y )
                               with
                              | Some lx, Some ly ->
                                  Sat_core.add_clause solver
                                    (Sat_core.neg g.sels.(k) :: (lx @ ly))
                              | _ -> ())
                          | _ -> ())
                      | _ -> ())
                    selected;
                  (* Eq/Neq residue, exactly the reference resolution *)
                  if
                    pending_checks <> []
                    && not (view.resolve_residue theta pending_checks)
                  then begin
                    ok := false;
                    (* lemmatize the individually refutable checks *)
                    List.iter
                      (fun (l, e) ->
                        match e.shape with
                        | Check_pending _ -> (
                            match eval_check_model view head_tbl bind_tbl l with
                            | Some false -> (
                                let x, y =
                                  match l with
                                  | Literal.Eq (x, y) | Literal.Neq (x, y) ->
                                      (x, y)
                                  | _ -> assert false
                                in
                                match
                                  ( side_lits st head_tbl bind_tbl x,
                                    side_lits st head_tbl bind_tbl y )
                                with
                                | Some lx, Some ly ->
                                    Sat_core.add_clause solver
                                      (Sat_core.neg e.avar :: (lx @ ly))
                                | _ -> ())
                            | _ -> ())
                        | _ -> ())
                      entries
                  end;
                  (* repair connectivity on the mapped image *)
                  let image =
                    List.filter_map
                      (fun (_, e, k) ->
                        match e.shape with
                        | Gen g when g.cand_d.(k) >= 0 -> Some g.cand_d.(k)
                        | _ -> None)
                      selected
                  in
                  if repair_connectivity && not (view.connectivity_ok image)
                  then ok := false;
                  if !ok then `Subsumed theta
                  else begin
                    (* block this exact selection for the rest of this
                       solve — guarantees CEGAR progress even when no
                       reusable lemma applied *)
                    let g = guard () in
                    Sat_core.add_clause solver
                      (Sat_core.neg g
                      :: List.map
                           (fun (_, e, k) ->
                             match e.shape with
                             | Gen gg -> Sat_core.neg gg.sels.(k)
                             | _ -> assert false)
                           selected);
                    cegar ()
                  end)
        in
        let outcome = cegar () in
        let s1 = Sat_core.stats solver in
        Obs.add Stats.solves (s1.solves - s0.solves);
        Obs.add Stats.propagations (s1.propagations - s0.propagations);
        Obs.add Stats.conflicts (s1.conflicts - s0.conflicts);
        Obs.add Stats.learned (s1.learned - s0.learned);
        Obs.add Stats.restarts (s1.restarts - s0.restarts);
        Obs.add Stats.reused (s1.reused_clause_hits - s0.reused_clause_hits);
        Obs.add Stats.solve_ns
          (int_of_float ((Unix.gettimeofday () -. t_solve) *. 1e9));
        outcome
      in
      if reuse then begin
        Mutex.lock view.cache.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock view.cache.lock)
          (fun () -> try run () with Exhausted -> `Budget_exhausted)
      end
      else begin
        try run () with Exhausted -> `Budget_exhausted
      end
