(* Tests for the SAT θ-subsumption backend: the CDCL core in isolation
   (unit propagation, conflict analysis, incremental assumptions), the
   learned-clause soundness property, witness soundness of the [`Sat]
   engine against the naive oracle, and the cross-candidate clause-reuse
   behaviour the incremental encoding exists for. *)

open Dlearn_logic
module S = Sat_core

let v = Term.var
let s = Term.str
let rel = Literal.rel

(* ------------------------------------------------------------------ *)
(* Sat_core units                                                     *)
(* ------------------------------------------------------------------ *)

let core_tests =
  [
    Alcotest.test_case "unit propagation chains through implications" `Quick
      (fun () ->
        let sv = S.create () in
        let a = S.new_var sv and b = S.new_var sv and c = S.new_var sv in
        S.add_clause sv [ S.neg a; S.pos b ];
        S.add_clause sv [ S.neg b; S.pos c ];
        S.add_clause sv [ S.pos a ];
        Alcotest.(check bool) "sat" true (S.solve sv = `Sat);
        Alcotest.(check bool) "a" true (S.value sv a);
        Alcotest.(check bool) "b propagated" true (S.value sv b);
        Alcotest.(check bool) "c propagated" true (S.value sv c);
        Alcotest.(check bool) "propagations counted" true
          ((S.stats sv).S.propagations >= 2));
    Alcotest.test_case "conflict analysis learns the asserting clause" `Quick
      (fun () ->
        (* Assuming a with (¬a∨b) and (¬a∨¬b) conflicts at the assumption
           level; first-UIP must learn the unit ¬a, after which solving
           without assumptions yields a model with a false. *)
        let sv = S.create () in
        let a = S.new_var sv and b = S.new_var sv in
        S.add_clause sv [ S.neg a; S.pos b ];
        S.add_clause sv [ S.neg a; S.neg b ];
        Alcotest.(check bool) "unsat under a" true
          (S.solve ~assumptions:[ S.pos a ] sv = `Unsat);
        Alcotest.(check bool) "learned ¬a" true
          (List.exists
             (fun cl -> cl = [| S.neg a |])
             (S.learned_clauses sv));
        Alcotest.(check bool) "sat without assumptions" true
          (S.solve sv = `Sat);
        Alcotest.(check bool) "a pinned false by the learned unit" true
          (not (S.value sv a)));
    Alcotest.test_case "assumptions retract cleanly across solves" `Quick
      (fun () ->
        let sv = S.create () in
        let x = S.new_var sv and y = S.new_var sv and z = S.new_var sv in
        S.add_clause sv [ S.pos x; S.pos y ];
        S.add_clause sv [ S.neg x; S.pos z ];
        Alcotest.(check bool) "sat under ¬y" true
          (S.solve ~assumptions:[ S.neg y ] sv = `Sat);
        Alcotest.(check bool) "x forced" true (S.value sv x);
        Alcotest.(check bool) "z forced" true (S.value sv z);
        Alcotest.(check bool) "sat under ¬x" true
          (S.solve ~assumptions:[ S.neg x ] sv = `Sat);
        Alcotest.(check bool) "y forced" true (S.value sv y);
        Alcotest.(check bool) "unsat under ¬x ¬y" true
          (S.solve ~assumptions:[ S.neg x; S.neg y ] sv = `Unsat);
        Alcotest.(check bool) "still usable afterwards" true
          (S.solve sv = `Sat));
    Alcotest.test_case "conflict limit leaves the solver usable" `Quick
      (fun () ->
        (* Pigeonhole 3-into-2, pure search. A 1-conflict budget may or
           may not finish; either way the solver must survive and a
           follow-up unlimited solve must prove unsat. *)
        let sv = S.create () in
        let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> S.new_var sv)) in
        Array.iter (fun row -> S.add_clause sv [ S.pos row.(0); S.pos row.(1) ]) p;
        for h = 0 to 1 do
          for i = 0 to 2 do
            for j = i + 1 to 2 do
              S.add_clause sv [ S.neg p.(i).(h); S.neg p.(j).(h) ]
            done
          done
        done;
        let limited = S.solve ~conflict_limit:1 sv in
        Alcotest.(check bool) "limit or unsat" true
          (limited = `Limit || limited = `Unsat);
        Alcotest.(check bool) "unsat when unbounded" true (S.solve sv = `Unsat));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: every learned clause is implied by the original formula    *)
(* ------------------------------------------------------------------ *)

let cnf_arb =
  let open QCheck.Gen in
  let gen =
    let* n = 4 -- 9 in
    let lit = pair (0 -- (n - 1)) bool in
    let* clauses = list_size (5 -- 40) (list_size (1 -- 3) lit) in
    let* assumps = list_size (0 -- 3) lit in
    return (n, clauses, assumps)
  in
  let print (n, clauses, assumps) =
    let lit (v, sg) = Printf.sprintf "%s%d" (if sg then "" else "-") v in
    Printf.sprintf "n=%d cnf=[%s] assume=[%s]" n
      (String.concat "; "
         (List.map (fun c -> String.concat " " (List.map lit c)) clauses))
      (String.concat " " (List.map lit assumps))
  in
  QCheck.make ~print gen

let to_lit (var, sign) = if sign then S.pos var else S.neg var

let build_solver n clauses =
  let sv = S.create () in
  for _ = 1 to n do
    ignore (S.new_var sv)
  done;
  List.iter (fun c -> S.add_clause sv (List.map to_lit c)) clauses;
  sv

let model_satisfies sv clauses =
  List.for_all
    (List.exists (fun (var, sign) -> S.value sv var = sign))
    clauses

let learned_clause_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "models satisfy the formula; learned clauses are implied by it"
         ~count:500 cnf_arb (fun (n, clauses, assumps) ->
           let sv = build_solver n clauses in
           (match S.solve ~assumptions:(List.map to_lit assumps) sv with
           | `Sat ->
               assert (model_satisfies sv clauses);
               assert (
                 List.for_all
                   (fun (var, sign) -> S.value sv var = sign)
                   assumps)
           | `Unsat | `Limit -> ());
           (match S.solve sv with
           | `Sat -> assert (model_satisfies sv clauses)
           | `Unsat | `Limit -> ());
           (* Re-solve the negation of each learned clause against a fresh
              copy of the original formula: implied ⇔ unsat. *)
           List.for_all
             (fun learned ->
               let fresh = build_solver n clauses in
               Array.iter
                 (fun l -> S.add_clause fresh [ S.negate l ])
                 learned;
               S.solve fresh = `Unsat)
             (S.learned_clauses sv)));
  ]

(* ------------------------------------------------------------------ *)
(* Witness soundness: any Subsumed θ from the SAT engine is accepted  *)
(* by the naive reference checker                                     *)
(* ------------------------------------------------------------------ *)

(* Mirrors the md_group / mixed_clause generators of test_logic.ml — the
   full literal grammar the engines must agree on. *)
let md_group ~md ~group ~sims_of_left ~sims_of_right (x, vx) (y, vy) cond =
  [
    Literal.Repair
      {
        origin = Literal.From_md md;
        group;
        cond;
        subject = x;
        replacement = vx;
        drops = sims_of_left;
      };
    Literal.Repair
      {
        origin = Literal.From_md md;
        group;
        cond;
        subject = y;
        replacement = vy;
        drops = sims_of_right;
      };
    Literal.Eq (vx, vy);
  ]

let mixed_clause_gen =
  let open QCheck.Gen in
  let const = map (fun c -> Term.str (String.make 1 c)) (char_range 'a' 'e') in
  let term = oneof [ const; map Term.var (oneofl [ "mx"; "my"; "mz" ]) ] in
  let lit =
    frequency
      [
        (3, map2 (fun t1 t2 -> rel "p" [ t1; t2 ]) term term);
        (2, map (fun t -> rel "q" [ t ]) term);
        (1, map2 (fun t1 t2 -> Literal.Sim (t1, t2)) const const);
        (1, map2 (fun a b -> Literal.Eq (a, b)) term term);
        (1, map2 (fun a b -> Literal.Neq (a, b)) term term);
      ]
  in
  let* body = list_size (0 -- 6) lit in
  let* head_arg = term in
  let base = Clause.make ~head:(rel "t" [ head_arg ]) body in
  let* add_group = bool in
  let* x = const and* y = const in
  if (not add_group) || Term.equal x y then return base
  else begin
    let sim = Literal.Sim (x, y) in
    let group =
      [ sim ]
      @ md_group ~md:"gm" ~group:9 ~sims_of_left:[ sim ] ~sims_of_right:[ sim ]
          (x, v "gvx") (y, v "gvy")
          [ Cond.Csim (x, y) ]
    in
    return { base with Clause.body = base.Clause.body @ group }
  end

let mixed_clause_arb = QCheck.make ~print:Clause.to_string mixed_clause_gen

let witness_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"sat witnesses are accepted by the naive checker" ~count:300
         (QCheck.triple mixed_clause_arb mixed_clause_arb QCheck.bool)
         (fun (c, d, rc) ->
           match
             Subsumption.subsumes ~engine:`Sat ~budget:500_000
               ~repair_connectivity:rc c d
           with
           | Subsumption.Subsumed theta -> (
               (* θC must still subsume D: θ grounds the sat engine's
                  choices, the naive search merely extends it over any
                  variables θ left free. Those leftover variables must
                  be renamed apart from D's *before* θ is applied — the
                  generators draw C and D variables from the same pool,
                  so a leftover C variable can share its name with a D
                  variable in θ's image; applying θ first would collapse
                  the two into one variable, and renaming afterwards
                  cannot split them again. *)
               let freshened =
                 let dom =
                   List.map fst (Substitution.to_list theta)
                 in
                 let ren =
                   List.fold_left
                     (fun s v ->
                       if List.mem v dom then s
                       else Substitution.add s v (Term.var ("w#" ^ v)))
                     Substitution.empty (Clause.vars c)
                 in
                 Substitution.apply_clause theta
                   (Substitution.apply_clause ren c)
               in
               match
                 Subsumption.subsumes_naive ~budget:500_000
                   ~repair_connectivity:rc freshened d
               with
               | Subsumption.Subsumed _ -> true
               | _ -> false)
           | _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Cross-candidate clause reuse along an ARMG chain                   *)
(* ------------------------------------------------------------------ *)

(* Bottom clause where p's second column never joins q: refuting
   p(x,y) ∧ q(y) forces real conflicts, and the clauses learned doing so
   refute the extended candidate by propagation alone. *)
let reuse_target () =
  Clause.make
    ~head:(rel "T" [ s "k" ])
    [
      rel "p" [ s "a1"; s "b1" ];
      rel "p" [ s "a2"; s "b2" ];
      rel "p" [ s "a3"; s "b3" ];
      rel "q" [ s "c1" ];
      rel "q" [ s "c2" ];
      rel "q" [ s "c3" ];
      rel "r" [ s "a1" ];
    ]

let chain_candidates () =
  let h = rel "T" [ v "h" ] in
  [
    Clause.make ~head:h [ rel "p" [ v "x"; v "y" ]; rel "q" [ v "y" ] ];
    Clause.make ~head:h
      [ rel "p" [ v "x"; v "y" ]; rel "q" [ v "y" ]; rel "r" [ v "x" ] ];
    Clause.make ~head:h [ rel "p" [ v "x"; v "y" ] ];
  ]

let run_chain () =
  let target = Subsumption.prepare (reuse_target ()) in
  List.map
    (fun c ->
      let before = (Sat_subsumption.stats ()).Sat_subsumption.reused_clause_hits in
      let outcome = Subsumption.subsumes_target ~engine:`Sat c target in
      let after = (Sat_subsumption.stats ()).Sat_subsumption.reused_clause_hits in
      (outcome, after - before))
    (chain_candidates ())

let normalize_outcome = function
  | Subsumption.Subsumed theta ->
      `Subsumed
        (List.sort compare
           (List.map
              (fun (x, t) -> (x, Term.to_string t))
              (Substitution.to_list theta)))
  | Subsumption.Not_subsumed -> `Not_subsumed
  | Subsumption.Budget_exhausted -> `Budget_exhausted

let with_reuse flag f =
  let prev = Sys.getenv_opt "DLEARN_SAT_REUSE" in
  Unix.putenv "DLEARN_SAT_REUSE" (if flag then "on" else "off");
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DLEARN_SAT_REUSE" (Option.value ~default:"on" prev))
    f

let reuse_tests =
  [
    Alcotest.test_case
      "conflict clauses learned on one candidate prune the next" `Quick
      (fun () ->
        let results = with_reuse true run_chain in
        match results with
        | [ (o1, hits1); (o2, hits2); (o3, _) ] ->
            Alcotest.(check bool) "candidate 1 refuted" true
              (o1 = Subsumption.Not_subsumed);
            Alcotest.(check int) "no prior clauses on the first candidate" 0
              hits1;
            Alcotest.(check bool) "candidate 2 refuted" true
              (o2 = Subsumption.Not_subsumed);
            Alcotest.(check bool) "candidate 2 reused learned clauses" true
              (hits2 > 0);
            Alcotest.(check bool) "candidate 3 subsumes" true
              (match o3 with Subsumption.Subsumed _ -> true | _ -> false)
        | _ -> Alcotest.fail "expected three chain results");
    Alcotest.test_case "verdicts are identical with reuse disabled" `Quick
      (fun () ->
        let on = with_reuse true run_chain in
        let off = with_reuse false run_chain in
        List.iteri
          (fun i ((o_on, _), (o_off, hits_off)) ->
            Alcotest.(check bool)
              (Printf.sprintf "candidate %d agrees" (i + 1))
              true
              (normalize_outcome o_on = normalize_outcome o_off);
            Alcotest.(check int)
              (Printf.sprintf "candidate %d: no reuse when disabled" (i + 1))
              0 hits_off)
          (List.combine on off));
  ]

let () =
  Alcotest.run "sat"
    [
      ("sat_core", core_tests);
      ("learned clauses", learned_clause_tests);
      ("witness", witness_tests);
      ("clause reuse", reuse_tests);
    ]
