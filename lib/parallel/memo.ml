type 'a state =
  | Unforced of (unit -> 'a)
  | Forced of 'a
  | Raised of exn

type 'a t = {
  m : Mutex.t;
  mutable state : 'a state;
}

let make f = { m = Mutex.create (); state = Unforced f }
let return v = { m = Mutex.create (); state = Forced v }

let force t =
  Mutex.protect t.m (fun () ->
      match t.state with
      | Forced v -> v
      | Raised e -> raise e
      | Unforced f -> (
          match f () with
          | v ->
              t.state <- Forced v;
              v
          | exception e ->
              t.state <- Raised e;
              raise e))

let is_forced t =
  Mutex.protect t.m (fun () ->
      match t.state with
      | Forced _ | Raised _ -> true
      | Unforced _ -> false)
