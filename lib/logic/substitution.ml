module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let singleton v term = M.singleton v term
let of_list l = List.fold_left (fun m (v, t) -> M.add v t m) M.empty l
let to_list t = M.bindings t
let find t v = M.find_opt v t
let mem t v = M.mem v t

let bind t v term =
  match M.find_opt v t with
  | None -> Some (M.add v term t)
  | Some existing -> if Term.equal existing term then Some t else None

let add t v term = M.add v term t

let apply_term t = function
  | Term.Var v as var -> ( match M.find_opt v t with Some x -> x | None -> var)
  | Term.Const _ as c -> c

let apply_literal t l = Literal.map_terms (apply_term t) l
let apply_clause t c = Clause.map_terms (apply_term t) c
let cardinal = M.cardinal

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat ", "
       (List.map
          (fun (v, term) -> Printf.sprintf "%s/%s" v (Term.to_string term))
          (M.bindings t)))
