(** Smith-Waterman-Gotoh local sequence alignment over characters.

    This is the first half of the paper's similarity operator (§5): local
    alignment with affine gap costs (Gotoh 1982), scored per character and
    normalised to [0, 1] by the best achievable score of the shorter
    string. An empty string scores 0 against everything. *)

type params = {
  match_score : float;  (** reward per aligned equal character, > 0 *)
  mismatch_score : float;  (** penalty per aligned unequal character, ≤ 0 *)
  gap_open : float;  (** cost of opening a gap, ≤ 0 *)
  gap_extend : float;  (** cost of extending an open gap, ≤ 0 *)
}

(** simmetrics-style defaults: match 1.0, mismatch −2.0, gap open −0.5,
    gap extend −0.2. *)
val default_params : params

(** [raw_score ?params a b] is the unnormalised best local alignment
    score. *)
val raw_score : ?params:params -> string -> string -> float

(** [similarity ?params a b] ∈ [0, 1]; 1 iff one string is a substring of
    the other (perfect local alignment of the shorter). *)
val similarity : ?params:params -> string -> string -> float
