let similarity a b =
  let n = String.length a and m = String.length b in
  if n = 0 && m = 0 then 1.0
  else if n = 0 || m = 0 then 0.0
  else float_of_int (min n m) /. float_of_int (max n m)
