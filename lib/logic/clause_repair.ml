module IntMap = Map.Make (Int)
module StrSet = Set.Make (String)

type group_kind =
  | Md_simultaneous
  | Cfd_alternative

let kind_of_origin = function
  | Literal.From_md _ -> Md_simultaneous
  | Literal.From_cfd _ -> Cfd_alternative

(* Groups present in a clause: id -> (kind, literals in body order). *)
let groups_of (c : Clause.t) =
  List.fold_left
    (fun acc l ->
      match l with
      | Literal.Repair r ->
          let kind = kind_of_origin r.origin in
          let existing =
            match IntMap.find_opt r.group acc with
            | Some (_, ls) -> ls
            | None -> []
          in
          IntMap.add r.group (kind, existing @ [ r ]) acc
      | _ -> acc)
    IntMap.empty c.body

let subst_pairs pairs t =
  match List.find_opt (fun (s, _) -> Term.equal s t) pairs with
  | Some (_, r) -> r
  | None -> t

(* Delete from [body] the repair literals of group [gid] listed in
   [members], and every literal structurally equal to one of the recorded
   drops of the applied members. *)
let delete_literals body ~gid ~applied_drops =
  List.filter
    (fun l ->
      match l with
      | Literal.Repair r when r.group = gid -> false
      | _ -> not (List.exists (Literal.equal l) applied_drops))
    body

let delete_one_repair body repair =
  let found = ref false in
  List.filter
    (fun l ->
      match l with
      | Literal.Repair r when (not !found) && r == repair ->
          found := true;
          false
      | _ -> true)
    body

(* Apply group [gid]; returns the child clauses. *)
let apply_group (c : Clause.t) gid kind (members : Literal.repair list) =
  let env = Clause_env.of_body c.body in
  let enabled =
    List.filter (fun r -> Clause_env.eval_cond env r.Literal.cond) members
  in
  match kind with
  | Md_simultaneous ->
      (* All enabled members fire at once; the whole group is consumed. *)
      let pairs = List.map (fun r -> (r.Literal.subject, r.Literal.replacement)) enabled in
      let applied_drops = List.concat_map (fun r -> r.Literal.drops) enabled in
      let body = delete_literals c.body ~gid ~applied_drops in
      let f = subst_pairs pairs in
      [ Clause.map_terms f { c with body } ]
  | Cfd_alternative -> (
      match enabled with
      | [] ->
          (* No member can fire: they are all simply removed. *)
          let body = delete_literals c.body ~gid ~applied_drops:[] in
          [ { c with body } ]
      | _ ->
          (* Branch: each enabled member may be the one applied first. The
             rest of the group stays and is re-examined (their conditions
             are falsified by the restriction literals, so they will be
             dropped on the next visit). *)
          List.map
            (fun r ->
              let body = delete_one_repair c.body r in
              let body =
                List.filter
                  (fun l -> not (List.exists (Literal.equal l) r.Literal.drops))
                  body
              in
              let f = subst_pairs [ (r.Literal.subject, r.Literal.replacement) ] in
              Clause.map_terms f { c with body })
            enabled)

let group_touch_set (members : Literal.repair list) =
  List.fold_left
    (fun acc r ->
      let terms =
        r.Literal.subject :: r.Literal.replacement
        :: List.concat_map
             (function
               | Cond.Ceq (a, b) | Cond.Cneq (a, b) | Cond.Csim (a, b) ->
                   [ a; b ])
             r.Literal.cond
      in
      List.fold_left
        (fun acc t -> StrSet.add (Term.to_string t) acc)
        acc terms)
    StrSet.empty members

let finalize (c : Clause.t) = Clause.remove_dangling_restrictions c

(* Canonical clause keys: structural equality on the sorted body, with the
   (depth-limited) polymorphic hash — far cheaper than printing. *)
module Clause_key = Hashtbl.Make (struct
  type t = Clause.t

  let equal = Clause.equal
  let hash (c : Clause.t) = Hashtbl.hash (c.Clause.head, c.Clause.body)
end)

let canonical_key c = Clause.canonical c

let enumerate ~select_group ~state_cap ~result_cap (c : Clause.t) =
  let results : Clause.t Clause_key.t = Clause_key.create 8 in
  let visited : unit Clause_key.t = Clause_key.create 64 in
  let states = ref 0 in
  let rec go clause =
    if Clause_key.length results >= result_cap then ()
    else begin
      let key = canonical_key clause in
      if not (Clause_key.mem visited key) then begin
        Clause_key.add visited key ();
        incr states;
        if !states <= state_cap then begin
          let groups =
            IntMap.filter (fun _ (kind, ms) -> select_group kind ms)
              (groups_of clause)
          in
          if IntMap.is_empty groups then begin
            let final = finalize clause in
            let fkey = canonical_key final in
            if not (Clause_key.mem results fkey) then
              Clause_key.replace results fkey final
          end
          else begin
            (* Enabled groups (some member's condition holds) are processed
               before disabled ones: a group is only dropped once nothing
               left could still enable it — otherwise an order that
               examines an induced repair before its inducing repair would
               discard it and leave the violation unrepaired. Among the
               enabled groups, one whose terms are disjoint from every
               other group's can go first deterministically; otherwise the
               order branches. *)
            let env = Clause_env.of_body clause.Clause.body in
            let bindings = IntMap.bindings groups in
            let enabled, disabled =
              List.partition
                (fun (_, (_, ms)) ->
                  List.exists
                    (fun r -> Clause_env.eval_cond env r.Literal.cond)
                    ms)
                bindings
            in
            let candidates = if enabled <> [] then enabled else disabled in
            let touch =
              List.map
                (fun (gid, (_, ms)) -> (gid, group_touch_set ms))
                candidates
            in
            let independent =
              List.find_opt
                (fun (gid, (_, _)) ->
                  let mine = List.assoc gid touch in
                  List.for_all
                    (fun (gid', ts) -> gid' = gid || StrSet.disjoint mine ts)
                    touch)
                candidates
            in
            let to_branch =
              match independent with Some g -> [ g ] | None -> candidates
            in
            List.iter
              (fun (gid, (kind, ms)) ->
                List.iter go (apply_group clause gid kind ms))
              to_branch
          end
        end
      end
    end
  in
  go c;
  Clause_key.fold (fun _ c acc -> c :: acc) results []

let repaired_clauses ?(state_cap = 4096) ?(result_cap = 64) c =
  enumerate ~select_group:(fun _ _ -> true) ~state_cap ~result_cap c

let cfd_applications ?(state_cap = 4096) ?(result_cap = 64) c =
  enumerate
    ~select_group:(fun kind _ -> kind = Cfd_alternative)
    ~state_cap ~result_cap c

let is_repaired (c : Clause.t) = Clause.repair_body c = []
