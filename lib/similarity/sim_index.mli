(** Similarity index with sharded n-gram blocking.

    DLearn precomputes pairs of similar values (§5). The index stores the
    distinct values of one attribute; a query finds the top-[km] stored
    values whose similarity to the query string reaches a threshold. To
    avoid the quadratic scan, candidates are restricted to values sharing
    at least one character n-gram with the query (blocking) — exactness is
    checked in tests against the brute-force scan for the paper's
    operator.

    The index is built for the 10⁵+-value regime (docs/SCALE.md):

    - grams are packed into [int] keys (no per-window string allocation
      for [n ≤ 7], structural hash beyond — hash collisions only widen
      the candidate set, never narrow it);
    - postings are partitioned into shards by a pure function of the
      gram key, and the build fans out over the domain {!Pool} in fixed
      4096-value chunks — the result is bit-identical whatever [jobs]
      is, pinned by {!postings_digest};
    - candidates are deduplicated before scoring (a value sharing k
      grams with the query is measured once, counted by the
      [sim_index.measured] counter) and a length-band prefilter skips
      candidates whose score ceiling from lengths alone
      ([Paper], [Levenshtein]) already misses the threshold
      ([sim_index.length_pruned]). *)

type t

(** [create ?n ?measure ?jobs ?shard_bits values] indexes the distinct
    strings of [values]. [n] (default 3) is the blocking gram size.
    [jobs] (default 1 — sequential, bit-identical either way) sizes the
    domain pool the build and {!match_pairs} fan out over. [shard_bits]
    overrides the posting-shard count ([2^bits], chosen from the value
    count by default); exposed for tests and tuning. *)
val create :
  ?n:int ->
  ?measure:Combined.measure ->
  ?jobs:int ->
  ?shard_bits:int ->
  string list ->
  t

(** [of_values ?n ?measure ?jobs vs] indexes the string renderings of
    [vs], skipping nulls. *)
val of_values :
  ?n:int ->
  ?measure:Combined.measure ->
  ?jobs:int ->
  Dlearn_relation.Value.t list ->
  t

val size : t -> int

(** Number of posting shards ([2^shard_bits]); a function of the value
    count only, never of [jobs]. *)
val shard_count : t -> int

(** [query t ~km ~threshold s] returns up to [km] stored values with
    similarity ≥ [threshold], best first, ties broken by string order.
    The query string itself is excluded only by similarity, not identity —
    an exact duplicate scores 1.0 and is returned. *)
val query : t -> km:int -> threshold:float -> string -> (string * float) list

(** [query_brute t ~km ~threshold s] is [query] without blocking and
    without the length prefilter — the reference implementation used for
    the ablation bench and the equivalence tests (so those tests validate
    blocking and prefilter soundness at once). *)
val query_brute :
  t -> km:int -> threshold:float -> string -> (string * float) list

(** [match_pairs ?n ?measure ?jobs ~km ~threshold left right] returns,
    for each string of [left] (deduplicated), its top-[km] matches
    within [right], as [(left_value, right_value, score)] triples. With
    [jobs > 1] the per-left-value queries fan out over the pool; the
    result is identical to the sequential run. *)
val match_pairs :
  ?n:int ->
  ?measure:Combined.measure ->
  ?jobs:int ->
  km:int ->
  threshold:float ->
  string list ->
  string list ->
  (string * string * float) list

(** Hex digest of the full index content (parameters, values, and every
    posting list in ascending key order). Builds of the same inputs
    digest identically regardless of [jobs] — the determinism pin. *)
val postings_digest : t -> string
