(** Literals of the extended Horn language (§3.2).

    Besides schema atoms, the language contains:
    - similarity literals [x ≈ y] between comparable terms;
    - equality / inequality restriction literals;
    - {b repair literals} [V_c(x, v_x)]: "replace [x] by [v_x] everywhere
      if condition [c] holds in the clause". Each repair literal records
      the constraint (MD or CFD) it came from, a group id tying together
      the repair alternatives of one violation / one similarity match, and
      the induced equality literals its application invalidates. *)

type origin =
  | From_md of string  (** MD identifier *)
  | From_cfd of string  (** CFD identifier *)

type repair = {
  origin : origin;
  group : int;
      (** id of the violation or similarity-match instance this repair
          belongs to; repairs in one group are alternatives — applying one
          falsifies the conditions of the others. Group ids are local to a
          clause and not compared across clauses. *)
  cond : Cond.t;
  subject : Term.t;  (** the term being replaced *)
  replacement : Term.t;  (** the replacement variable (or merged value) *)
  drops : t list;
      (** induced equality literals deleted when this repair applies —
          e.g. the [x1 = x2] literal of a CFD left-hand-side repair. *)
}

and t =
  | Rel of {
      pred : string;
      args : Term.t array;
    }  (** schema atom R(u1, ..., un) *)
  | Sim of Term.t * Term.t  (** x ≈ y *)
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t
  | Repair of repair

val rel : string -> Term.t list -> t

val origin_equal : origin -> origin -> bool

val origin_to_string : origin -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val is_rel : t -> bool

val is_repair : t -> bool

(** [is_restriction l] holds for [Sim], [Eq] and [Neq] literals. *)
val is_restriction : t -> bool

(** [terms l] lists the top-level terms of [l]; for repair literals this is
    subject, replacement and the condition's terms (drops excluded). *)
val terms : t -> Term.t list

val vars : t -> string list

(** [map_terms f l] rewrites every term, including inside repair conditions
    and drops. *)
val map_terms : (Term.t -> Term.t) -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
