(** Human-readable explanations of coverage verdicts.

    Given a clause and an example, reports {e why} the clause covers it:
    the substitution found by θ-subsumption and the image of each body
    literal in the example's ground bottom clause — i.e. the concrete
    tuples and matches supporting the inference. When coverage holds only
    through the repair semantics, the explanation names the repaired
    clause and the repair of the example that support it. *)

(** [positive ctx clause e] explains why [clause] covers [e], or returns
    [None] when it does not. *)
val positive :
  Context.t -> Dlearn_logic.Clause.t -> Dlearn_relation.Tuple.t -> string option
