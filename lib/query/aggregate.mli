(** Aggregation over query answers: group the answer tuples of a
    conjunctive query by a subset of head positions and fold the rest.

    This rounds out the query substrate for downstream use (inspecting
    generated workloads, summarising predictions); the learner itself
    never aggregates. *)

type func =
  | Count
  | Count_distinct of int  (** position aggregated *)
  | Min of int
  | Max of int

(** [run ?limit db oracle clause ~group_by ~aggregate] evaluates the
    clause, groups answers by the [group_by] head positions (in order) and
    applies [aggregate] within each group. Returns one tuple per group:
    the group key values followed by the aggregate value. Groups appear in
    first-seen order.
    @raise Invalid_argument on an out-of-range position. *)
val run :
  ?limit:int ->
  Dlearn_relation.Database.t ->
  Conjunctive.oracle ->
  Dlearn_logic.Clause.t ->
  group_by:int list ->
  aggregate:func ->
  Dlearn_relation.Tuple.t list
