(* Dense coverage sets for the incremental coverage engine: an immutable
   bitset over [Bytes] indexed by the context's dense example ids, the
   per-clause cache entry holding tested/covered sets for both coverage
   predicates, and the canonical-clause hashtable the cache is keyed on. *)

module Bitset = struct
  (* Bit [i] lives at byte [i lsr 3], position [i land 7]. Invariant: the
     last byte is non-zero (constructors trim), so structural equality is
     [Bytes.equal] and the representation of a set is unique. *)
  type t = Bytes.t

  let empty = Bytes.empty

  let trim b =
    let n = ref (Bytes.length b) in
    while !n > 0 && Bytes.get b (!n - 1) = '\000' do
      decr n
    done;
    if !n = Bytes.length b then b else Bytes.sub b 0 !n

  let capacity t = 8 * Bytes.length t
  let is_empty t = Bytes.length t = 0
  let equal = Bytes.equal

  let test_packed b i =
    let byte = i lsr 3 in
    i >= 0
    && byte < Bytes.length b
    && (Char.code (Bytes.get b byte) lsr (i land 7)) land 1 = 1

  let mem t i = test_packed t i
  let of_packed b = trim (Bytes.copy b)

  (* A copy of [t] with room for bit [bits - 1]. *)
  let ensure t bits =
    let need = (bits + 7) / 8 in
    if need <= Bytes.length t then Bytes.copy t
    else begin
      let out = Bytes.make need '\000' in
      Bytes.blit t 0 out 0 (Bytes.length t);
      out
    end

  let set_packed b i =
    let byte = i lsr 3 in
    Bytes.set b byte
      (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (i land 7))))

  let add t i =
    if i < 0 then invalid_arg "Bitset.add: negative id";
    if mem t i then t
    else begin
      let out = ensure t (i + 1) in
      set_packed out i;
      out
    end

  (* [add_list t ids] is [t] with every id set — one allocation, not one
     per element. *)
  let add_list t ids =
    match ids with
    | [] -> t
    | _ ->
        let hi = List.fold_left max 0 ids in
        let out = ensure t (hi + 1) in
        List.iter
          (fun i ->
            if i < 0 then invalid_arg "Bitset.add_list: negative id";
            set_packed out i)
          ids;
        trim out

  let of_list ids = add_list empty ids
  let singleton i = add empty i

  let union a b =
    let big, small =
      if Bytes.length a >= Bytes.length b then (a, b) else (b, a)
    in
    if Bytes.length small = 0 then big
    else begin
      let out = Bytes.copy big in
      for i = 0 to Bytes.length small - 1 do
        Bytes.set out i
          (Char.chr (Char.code (Bytes.get big i) lor Char.code (Bytes.get small i)))
      done;
      out
    end

  let inter a b =
    let n = min (Bytes.length a) (Bytes.length b) in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set out i
        (Char.chr (Char.code (Bytes.get a i) land Char.code (Bytes.get b i)))
    done;
    trim out

  let diff a b =
    let out = Bytes.copy a in
    let n = min (Bytes.length a) (Bytes.length b) in
    for i = 0 to n - 1 do
      Bytes.set out i
        (Char.chr
           (Char.code (Bytes.get a i) land (lnot (Char.code (Bytes.get b i)) land 0xff)))
    done;
    trim out

  let popcount =
    let table = Array.make 256 0 in
    for i = 1 to 255 do
      table.(i) <- table.(i lsr 1) + (i land 1)
    done;
    table

  let cardinal t =
    let acc = ref 0 in
    for i = 0 to Bytes.length t - 1 do
      acc := !acc + popcount.(Char.code (Bytes.get t i))
    done;
    !acc

  let iter f t =
    for byte = 0 to Bytes.length t - 1 do
      let v = Char.code (Bytes.get t byte) in
      if v <> 0 then
        for bit = 0 to 7 do
          if (v lsr bit) land 1 = 1 then f ((byte lsl 3) lor bit)
        done
    done

  let to_list t =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) t;
    List.rev !acc
end

(* One cache entry per canonical clause: for each coverage predicate, the
   set of example ids whose verdict is known and the subset that came out
   covered. Mutable under [lock] — the climb's candidate scoring and the
   covering loop hit entries from several domains at once. *)
type entry = {
  lock : Mutex.t;
  mutable pos_tested : Bitset.t;
  mutable pos_covered : Bitset.t;
  mutable neg_tested : Bitset.t;
  mutable neg_covered : Bitset.t;
}

let entry () =
  {
    lock = Mutex.create ();
    pos_tested = Bitset.empty;
    pos_covered = Bitset.empty;
    neg_tested = Bitset.empty;
    neg_covered = Bitset.empty;
  }

(* Forget the verdicts of the masked example ids — the monotone
   invalidation a committed tuple delta triggers: the ids leave both the
   tested and covered sets, so the next query recomputes them against
   the new database while every other verdict survives. *)
let invalidate e mask =
  Mutex.protect e.lock (fun () ->
      e.pos_tested <- Bitset.diff e.pos_tested mask;
      e.pos_covered <- Bitset.diff e.pos_covered mask;
      e.neg_tested <- Bitset.diff e.neg_tested mask;
      e.neg_covered <- Bitset.diff e.neg_covered mask)

(* Canonical-clause keys, same scheme as Clause_repair's internal table:
   structural equality on the (sorted, deduplicated) body with the
   depth-limited polymorphic hash — no string rendering. *)
module Clause_tbl = Hashtbl.Make (struct
  type t = Dlearn_logic.Clause.t

  let equal = Dlearn_logic.Clause.equal

  let hash (c : Dlearn_logic.Clause.t) =
    Hashtbl.hash (c.Dlearn_logic.Clause.head, c.Dlearn_logic.Clause.body)
end)
