(** Bottom-clause construction over dirty data (Algorithm 2, §4.1).

    Starting from a training example, the relevant tuples [I_e] are
    gathered over [depth] iterations: exact index lookups on every seen
    constant, plus MD-driven similarity searches returning the top-[km]
    matches above the similarity threshold. The number of literals per
    relation is capped by [sample_size] (random sampling, deterministic in
    the seed and the example).

    The clause is then assembled:
    - one schema atom per gathered tuple, constants mapped to variables
      (or kept as constants for the configured constant attributes; in
      ground mode every constant stays);
    - per similarity match: similarity literals, one repair-literal group
      replacing both unified values (fresh replacement variables in
      variable mode, the canonical merged value in ground mode), and the
      restriction equality between the replacements (§3.2);
    - per CFD violation among the clause's literals: one repair group
      whose alternatives repair the right-hand side in either direction or
      split the shared left-hand-side occurrences apart (Example 3.1, with
      the paper's minimal-repair reduction); violations induced by
      hypothetical repairs are found in later rounds and their conditions
      reference the inducing repair's terms, so they stay inert until it
      fires.

    Ground mode ([Ground]) produces the ground bottom clause used by
    coverage testing (§4.3): the same construction with constants kept,
    merged values for MD replacements, and tagged constants for split
    occurrences (related by explicit equality literals). *)

type mode =
  | Variable
  | Ground

(** [build ctx mode e] constructs the bottom clause of example [e].
    @raise Invalid_argument if [e]'s arity differs from the target
    schema. *)
val build : Context.t -> mode -> Dlearn_relation.Tuple.t -> Dlearn_logic.Clause.t

(** [ground ctx e] builds (and caches in [ctx]) the ground bottom clause
    of [e]. *)
val ground : Context.t -> Dlearn_relation.Tuple.t -> Context.ground_entry
