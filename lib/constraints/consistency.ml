open Dlearn_relation

let single_relation_consistent (cfds : Cfd.t list) =
  match cfds with
  | [] -> invalid_arg "Consistency.single_relation_consistent: empty set"
  | first :: rest ->
      if
        not
          (List.for_all
             (fun c -> String.equal c.Cfd.relation first.Cfd.relation)
             rest)
      then
        invalid_arg
          "Consistency.single_relation_consistent: CFDs over several relations";
      (* Relevant attributes and their candidate values: every pattern
         constant mentioned for the attribute, plus one fresh value that
         differs from all of them. *)
      let attrs =
        List.concat_map
          (fun (c : Cfd.t) -> fst c.Cfd.rhs :: List.map fst c.Cfd.lhs)
          cfds
        |> List.sort_uniq String.compare
      in
      let candidates attr =
        let consts =
          List.concat_map
            (fun (c : Cfd.t) ->
              List.filter_map
                (fun (a, p) ->
                  match p with
                  | Cfd.Const v when String.equal a attr -> Some v
                  | _ -> None)
                (c.Cfd.rhs :: c.Cfd.lhs))
            cfds
          |> List.sort_uniq Value.compare
        in
        consts @ [ Value.String ("\xe2\x8a\xa5other:" ^ attr) ]
      in
      let tuple_ok assignment =
        List.for_all
          (fun (c : Cfd.t) ->
            let value attr = List.assoc attr assignment in
            let lhs_matches =
              List.for_all
                (fun (a, p) -> Cfd.matches p (value a))
                c.Cfd.lhs
            in
            let rhs_attr, rhs_pat = c.Cfd.rhs in
            (not lhs_matches) || Cfd.matches rhs_pat (value rhs_attr))
          cfds
      in
      let rec search assignment = function
        | [] -> tuple_ok assignment
        | attr :: more ->
            List.exists
              (fun v -> search ((attr, v) :: assignment) more)
              (candidates attr)
      in
      search [] attrs

let consistent cfds =
  let by_relation = Hashtbl.create 8 in
  List.iter
    (fun (c : Cfd.t) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_relation c.Cfd.relation)
      in
      Hashtbl.replace by_relation c.Cfd.relation (c :: existing))
    cfds;
  Hashtbl.fold
    (fun _ group acc -> acc && single_relation_consistent group)
    by_relation true
