let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let render_row row =
    let cells = List.mapi (fun i cell -> pad widths.(i) cell) row in
    String.concat "  " cells
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let of_relation ?(limit = 20) r =
  let schema = Relation.schema r in
  let header =
    Array.to_list
      (Array.map
         (fun (a : Schema.attribute) -> a.attr_name)
         (Schema.attributes schema))
  in
  let rows = ref [] in
  let count = ref 0 in
  (try
     Relation.iter
       (fun _ tu ->
         if !count >= limit then raise Exit;
         incr count;
         rows :=
           Array.to_list (Array.map Value.to_string tu) :: !rows)
       r
   with Exit -> ());
  let body = List.rev !rows in
  let table = render ~header body in
  if Relation.cardinality r > limit then
    table
    ^ Printf.sprintf "... (%d more tuples)\n" (Relation.cardinality r - limit)
  else table
