open Dlearn_relation
open Dlearn_constraints

type candidate = {
  lhs : string list;
  rhs : string;
  condition_attr : string;
}

let discover ?(min_support = 3) relation candidate =
  if not (List.mem candidate.condition_attr candidate.lhs) then
    invalid_arg "Cfd_discovery.discover: condition_attr not in lhs";
  let relation_name = Relation.name relation in
  if Fd_discovery.holds relation candidate.lhs candidate.rhs then
    [
      Cfd.fd
        ~id:(Printf.sprintf "%s:%s->%s" relation_name
               (String.concat "," candidate.lhs) candidate.rhs)
        ~relation:relation_name candidate.lhs candidate.rhs;
    ]
  else begin
    let schema = Relation.schema relation in
    let cond_pos = Schema.position schema candidate.condition_attr in
    let constants = Relation.distinct_values relation cond_pos in
    List.filter_map
      (fun c ->
        let selection =
          Relation.filter (fun t -> Value.equal (Tuple.get t cond_pos) c) relation
        in
        if
          Relation.cardinality selection >= min_support
          && Fd_discovery.holds selection candidate.lhs candidate.rhs
        then
          Some
            (Cfd.make
               ~id:(Printf.sprintf "%s:%s=%s" relation_name
                      candidate.condition_attr (Value.to_string c))
               ~relation:relation_name
               ~lhs:
                 (List.map
                    (fun a ->
                      if String.equal a candidate.condition_attr then
                        (a, Cfd.Const c)
                      else (a, Cfd.Wildcard))
                    candidate.lhs)
               ~rhs:(candidate.rhs, Cfd.Wildcard))
        else None)
      constants
  end
