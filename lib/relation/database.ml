type t = {
  by_name : (string, Relation.t) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
}

let create () = { by_name = Hashtbl.create 16; order = [] }

let add_relation t r =
  let n = Relation.name r in
  if Hashtbl.mem t.by_name n then
    invalid_arg (Printf.sprintf "Database.add_relation: duplicate %s" n);
  Hashtbl.add t.by_name n r;
  t.order <- n :: t.order

let create_relation t schema =
  let r = Relation.create schema in
  add_relation t r;
  r

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some r -> r
  | None -> raise Not_found

let find_opt t name = Hashtbl.find_opt t.by_name name
let mem t name = Hashtbl.mem t.by_name name
let relation_names t = List.rev t.order
let relations t = List.map (find t) (relation_names t)

let total_tuples t =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 (relations t)

let copy t =
  let t' = create () in
  List.iter (fun r -> add_relation t' (Relation.copy r)) (relations t);
  t'

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>database: %d relations, %d tuples"
    (List.length t.order) (total_tuples t);
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  %a: %d tuples" Schema.pp (Relation.schema r)
        (Relation.cardinality r))
    (relations t);
  Format.fprintf fmt "@]"
