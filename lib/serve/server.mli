(** The dlearn serve loop (docs/SERVE.md): one warm learning state — a
    versioned database ({!Dlearn_relation.Vdb}), a long-lived
    {!Dlearn_core.Context} over its head, the workload's labelled
    examples — behind a Unix-domain socket speaking the {!Protocol}
    frames. Concurrent requests take a writer-preferring readers–writer
    lock: [learn]/[coverage]/[check]/[query]/[status] share it,
    [insert]/[update] exclude them, so every read sees a committed
    version and commits invalidate the warm caches
    ({!Dlearn_core.Context.apply_delta}) before any read can observe the
    new data.

    Operations (request [op] field): [ping], [status], [learn] (optional
    [pos]/[neg] prefix sizes), [coverage] (clause), [check] (optional
    clause list), [query] (clause, optional limit), [insert] / [update]
    (relation, values, id for update), [metrics], [shutdown]. Every
    request is timed under a [serve.<op>] span; [serve.requests],
    [serve.errors] and [serve.connections] count on the
    {!Dlearn_obs.Obs} registry. *)

type t
(** The warm server state. Usable directly in-process ({!handle}) — the
    tests and the warm-path benchmark drive it without a socket. *)

val create : Dlearn_eval.Workload.t -> t
(** Adopt the workload's database into a {!Dlearn_relation.Vdb}, build
    the long-lived context over its head, and subscribe the
    cache-invalidation hook. The workload's database must not be mutated
    behind the server's back afterwards. *)

val workload : t -> Dlearn_eval.Workload.t
val context : t -> Dlearn_core.Context.t
val vdb : t -> Dlearn_relation.Vdb.t

val handle : t -> Json.t -> Json.t
(** Dispatch one request under the RW lock and return the response
    envelope. Handler failures (bad fields, parse errors, learner
    rejections) become [{"ok":false}] responses, never exceptions. *)

val run : t -> socket_path:string -> unit
(** Bind the socket (removing a stale file first), accept connections —
    one systhread each — and serve until a [shutdown] request (or
    {!stop}) is observed; joins the connection threads and removes the
    socket file before returning. *)

val stop : t -> unit
(** Ask the accept loop to stop; safe from any thread or signal. *)
