open Dlearn_logic

let format_direct theta (clause : Clause.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "covered by direct subsumption; literal images:\n";
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "  %s  -->  %s\n" (Literal.to_string l)
           (Literal.to_string (Substitution.apply_literal theta l))))
    (clause.Clause.head :: clause.Clause.body);
  Buffer.add_string buf
    (Format.asprintf "with substitution %a" Substitution.pp theta);
  Buffer.contents buf

let positive (ctx : Context.t) clause e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let entry = Bottom_clause.ground ctx e in
  let ge = entry.Context.ground in
  match Subsumption.subsumes ~budget clause ge with
  | Subsumption.Subsumed theta -> Some (format_direct theta clause)
  | Subsumption.Budget_exhausted | Subsumption.Not_subsumed ->
      let prepared = Coverage.prepare ctx clause in
      if not (Coverage.covers_positive ctx prepared e) then None
      else begin
        (* Name the repaired-clause pair supporting each part of the
           Definition 3.4 check. *)
        let crs = Dlearn_parallel.Memo.force prepared.Coverage.repairs in
        let grs =
          match entry.Context.repairs with Some rs -> rs | None -> []
        in
        let buf = Buffer.create 256 in
        Buffer.add_string buf
          "covered through the repair semantics (Definition 3.4):\n";
        List.iteri
          (fun i cr ->
            let support =
              List.find_index
                (fun gr ->
                  Subsumption.subsumes_bool ~budget ~repair_connectivity:false
                    cr gr)
                grs
            in
            match support with
            | Some j ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "  repaired clause %d subsumes repair %d of the example:\n%s\n"
                     i j (Clause.to_string cr))
            | None -> ())
          crs;
        Some (Buffer.contents buf)
      end
