(** Clause weights (§1: "one may assign weights to these definitions to
    describe their prevalence in the data according to their training
    accuracy").

    Each clause is weighted by its Laplace-corrected training precision
    (m-estimate with m = 2 and prior 1/2): weight = (tp + 1) / (tp + fp + 2).
    Prediction scores an example by the best weight among the clauses
    covering it, giving a ranking / thresholding layer on top of the
    boolean semantics. *)

type t = {
  definition : Dlearn_logic.Definition.t;
  weights : float list;  (** one weight per clause, same order *)
  prepared : Coverage.prepared list;  (** cached per-clause repair data *)
}

(** [weigh ctx definition ~pos ~neg] computes the weights from training
    coverage. *)
val weigh :
  Context.t ->
  Dlearn_logic.Definition.t ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  t

(** [score ctx t e] is the best weight among covering clauses, 0.0 when
    none covers [e]. *)
val score : Context.t -> t -> Dlearn_relation.Tuple.t -> float

(** [predict ctx t ~threshold e] is [score ctx t e >= threshold]. *)
val predict :
  Context.t -> t -> threshold:float -> Dlearn_relation.Tuple.t -> bool

val pp : Format.formatter -> t -> unit
