type 'a fold = {
  train_pos : 'a list;
  train_neg : 'a list;
  test_pos : 'a list;
  test_neg : 'a list;
}

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

(* Deal into k slices round-robin so the slices differ in size by at most
   one element. *)
let slices k l =
  let buckets = Array.make k [] in
  List.iteri (fun i x -> buckets.(i mod k) <- x :: buckets.(i mod k)) l;
  Array.to_list (Array.map List.rev buckets)

let folds ~k ~seed ~pos ~neg =
  if k < 2 then invalid_arg "Cross_validation.folds: k must be at least 2";
  if List.length pos < k || List.length neg < k then
    invalid_arg "Cross_validation.folds: fewer examples than folds";
  let rng = Random.State.make [| seed |] in
  let pos = shuffle rng pos and neg = shuffle rng neg in
  let pos_slices = slices k pos and neg_slices = slices k neg in
  List.init k (fun i ->
      let test_pos = List.nth pos_slices i and test_neg = List.nth neg_slices i in
      let train_of slices =
        List.concat (List.filteri (fun j _ -> j <> i) slices)
      in
      {
        train_pos = train_of pos_slices;
        train_neg = train_of neg_slices;
        test_pos;
        test_neg;
      })

let run ?pool ~k ~seed ~pos ~neg f =
  let fs = folds ~k ~seed ~pos ~neg in
  let f fold = Dlearn_obs.Obs.span "cv.fold" (fun () -> f fold) in
  match pool with
  | None -> List.map f fs
  | Some pool -> Dlearn_parallel.Pool.map_list pool f fs

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean l in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l
        /. float_of_int (List.length l - 1)
      in
      sqrt var
