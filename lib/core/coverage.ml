open Dlearn_logic
module Memo = Dlearn_parallel.Memo
module Pool = Dlearn_parallel.Pool

type prepared = {
  clause : Clause.t;
  cfd_apps : Clause.t list Memo.t;
  repairs : Clause.t list Memo.t;
  skeleton : Clause.t Memo.t;
      (* head + schema atoms with every occurrence of a repairable term
         (subject or replacement of some repair literal) wildcarded *)
}

let caps (ctx : Context.t) =
  let c = ctx.Context.config in
  (c.Config.repair_state_cap, c.Config.repair_result_cap)

(* The relational skeleton of a clause: head and schema atoms only, with
   every occurrence of a term that some repair literal may rewrite
   replaced by a fresh variable. Used as a necessary condition: if some
   repaired clause of C subsumes some repaired clause of Ge, then the
   skeleton subsumes Ge's relational part modulo Ge's potential merges. *)
let skeleton_of (clause : Clause.t) =
  let repairable =
    List.filter_map
      (function
        | Literal.Repair { subject; replacement; _ } ->
            Some [ subject; replacement ]
        | _ -> None)
      clause.Clause.body
    |> List.concat
  in
  let gen = Term.Fresh.make "w" in
  let wildcard t =
    if List.exists (Term.equal t) repairable then Term.Fresh.next gen else t
  in
  let rewrite = function
    | Literal.Rel { pred; args } ->
        Literal.Rel { pred; args = Array.map wildcard args }
    | l -> l
  in
  Clause.make ~head:(rewrite clause.Clause.head)
    (List.map rewrite (Clause.rel_body clause))

let prepare ctx clause =
  let state_cap, result_cap = caps ctx in
  {
    clause;
    cfd_apps =
      Memo.make (fun () ->
          Clause_repair.cfd_applications ~state_cap ~result_cap clause);
    repairs =
      Memo.make (fun () ->
          Clause_repair.repaired_clauses ~state_cap ~result_cap clause);
    skeleton = Memo.make (fun () -> skeleton_of clause);
  }

let has_cfd_repairs (c : Clause.t) =
  List.exists
    (function
      | Literal.Repair { origin = Literal.From_cfd _; _ } -> true
      | _ -> false)
    c.Clause.body

(* The per-entry caches below memoize under the entry's lock so that
   concurrent coverage checks of one example from several domains compute
   each object once and share it. The [_unlocked] variants exist for the
   accessors that need one another (repair targets need the repairs):
   stdlib mutexes are not reentrant, so only the outermost accessor
   locks. *)

let ground_cfd_apps ctx (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.cfd_apps with
      | Some apps -> apps
      | None ->
          let state_cap, result_cap = caps ctx in
          let apps =
            Clause_repair.cfd_applications ~state_cap ~result_cap
              entry.Context.ground
          in
          entry.Context.cfd_apps <- Some apps;
          apps)

let ground_target (_ctx : Context.t) (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.target with
      | Some t -> t
      | None ->
          let t = Subsumption.prepare entry.Context.ground in
          entry.Context.target <- Some t;
          t)

let ground_repairs_unlocked ctx (entry : Context.ground_entry) =
  match entry.Context.repairs with
  | Some rs -> rs
  | None ->
      let state_cap, result_cap = caps ctx in
      let rs =
        Clause_repair.repaired_clauses ~state_cap ~result_cap
          entry.Context.ground
      in
      entry.Context.repairs <- Some rs;
      rs

let ground_repairs ctx (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () -> ground_repairs_unlocked ctx entry)

(* Fast path: Definition 4.4 subsumption against the ground bottom clause
   is sound for coverage (Theorem 4.6). When it fails, decide Definition
   3.4 directly: every repaired clause of C must subsume some repaired
   clause of Ge — the repairs of Ge stand in for the repairs of the
   database by Theorem 4.11. Both sides are repair-free there, so the
   connectivity condition is vacuous. *)
let ground_repair_targets ctx (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.repair_targets with
      | Some ts -> ts
      | None ->
          let ts =
            List.map Subsumption.prepare (ground_repairs_unlocked ctx entry)
          in
          entry.Context.repair_targets <- Some ts;
          ts)

(* Ge's relational part, with equality literals unioning every pair of
   terms some repair group might make identical — the over-approximation
   of all possible merges that the skeleton is matched against. *)
let prefilter_target (_ctx : Context.t) (entry : Context.ground_entry) =
  Mutex.protect entry.Context.lock (fun () ->
      match entry.Context.prefilter_target with
      | Some t -> t
      | None ->
          let ge = entry.Context.ground in
          let merge_eqs =
            List.filter_map
              (function
                | Literal.Repair { subject; replacement; _ } ->
                    Some (Literal.Eq (subject, replacement))
                | _ -> None)
              ge.Clause.body
          in
          let target_clause =
            Clause.make ~head:ge.Clause.head (Clause.rel_body ge @ merge_eqs)
          in
          let t = Subsumption.prepare target_clause in
          entry.Context.prefilter_target <- Some t;
          t)

let passes_prefilter ctx prepared entry =
  let budget = ctx.Context.config.Config.subsumption_budget in
  Subsumption.subsumes_target_bool ~budget ~repair_connectivity:false
    (Memo.force prepared.skeleton)
    (prefilter_target ctx entry)

let covers_positive ctx prepared e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let entry = Bottom_clause.ground ctx e in
  if
    Subsumption.subsumes_target_bool ~budget prepared.clause
      (ground_target ctx entry)
  then true
  else if not (passes_prefilter ctx prepared entry) then false
  else begin
    let crs = Memo.force prepared.repairs in
    let grs = ground_repair_targets ctx entry in
    crs <> []
    && List.for_all
         (fun cr ->
           List.exists
             (fun gr ->
               Subsumption.subsumes_target_bool ~budget
                 ~repair_connectivity:false cr gr)
             grs)
         crs
  end

let covers_negative ctx prepared e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let entry = Bottom_clause.ground ctx e in
  if not (passes_prefilter ctx prepared entry) then false
  else
  let crs = Memo.force prepared.repairs in
  let grs = ground_repair_targets ctx entry in
  List.exists
    (fun cr ->
      List.exists
        (fun gr ->
          Subsumption.subsumes_target_bool ~budget ~repair_connectivity:false
            cr gr)
        grs)
    crs

(* The paper's §4.3 intermediate procedure: apply only the CFD groups on
   both sides and keep MD repair literals as atoms (Theorem 4.9). Exposed
   for the ablation benchmark comparing it with the full enumeration.
   The skeleton prefilter is the same necessary condition as for the full
   enumeration — a CFD application only rewrites repairable-term
   occurrences, all of which the skeleton wildcards and the prefilter
   target's merge equalities cover — so it gates this branch too;
   [~prefilter:false] preserves the unfiltered path for the regression
   test pinning their equivalence. *)
let covers_positive_cfd_split ?(prefilter = true) ctx prepared e =
  let budget = ctx.Context.config.Config.subsumption_budget in
  let entry = Bottom_clause.ground ctx e in
  let ge = entry.Context.ground in
  if Subsumption.subsumes_bool ~budget prepared.clause ge then true
  else if prefilter && not (passes_prefilter ctx prepared entry) then false
  else if not (has_cfd_repairs prepared.clause || has_cfd_repairs ge) then
    false
  else begin
    let cas = Memo.force prepared.cfd_apps in
    let gas = ground_cfd_apps ctx entry in
    cas <> []
    && List.for_all
         (fun ca ->
           List.exists (fun ga -> Subsumption.subsumes_bool ~budget ca ga) gas)
         cas
  end

let covers_positive_batch ctx prepared es =
  Pool.map_list (Context.pool ctx) (covers_positive ctx prepared) es

let covers_negative_batch ctx prepared es =
  Pool.map_list (Context.pool ctx) (covers_negative ctx prepared) es

let coverage ctx prepared ~pos ~neg =
  let pool = Context.pool ctx in
  let p = Pool.filter_count_list pool (covers_positive ctx prepared) pos in
  let n = Pool.filter_count_list pool (covers_negative ctx prepared) neg in
  (p, n)
