(** k-fold cross validation (the paper evaluates with 5 folds, §6.1.3). *)

type 'a fold = {
  train_pos : 'a list;
  train_neg : 'a list;
  test_pos : 'a list;
  test_neg : 'a list;
}

(** [folds ~k ~seed ~pos ~neg] shuffles both classes deterministically and
    deals them into [k] folds; fold [i]'s test set is slice [i] of each
    class.
    @raise Invalid_argument when [k < 2] or a class has fewer than [k]
    members. *)
val folds : k:int -> seed:int -> pos:'a list -> neg:'a list -> 'a fold list

(** [run ?pool ~k ~seed ~pos ~neg f] maps [f] over the folds and returns
    the results in fold order. With [pool], folds run across the domain
    pool (nested fan-outs inside [f] fall back to their sequential path);
    results and their order are identical to the sequential run. *)
val run :
  ?pool:Dlearn_parallel.Pool.t ->
  k:int ->
  seed:int ->
  pos:'a list ->
  neg:'a list ->
  ('a fold -> 'b) ->
  'b list

val mean : float list -> float

val stddev : float list -> float
