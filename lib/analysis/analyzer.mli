(** The preflight static analyzer: one entry point per input kind, plus
    the combined preflight the learner runs before bottom-clause
    construction.

    DLearn's guarantees (§3–§4) assume well-formed declarative inputs:
    satisfiable CFD sets, MDs over existing string attributes, safe and
    head-connected clauses. These checks are decidable and cheap, so they
    run statically — before any learning — and report structured
    {!Diagnostic.t} values instead of dying mid-run on [Not_found]. *)

(** [check_clause db ?target c] runs the clause lints
    ({!Clause_lint.check}) and the schema typechecker
    ({!Schema_check.check}) on one clause. *)
val check_clause :
  Dlearn_relation.Database.t ->
  ?target:Dlearn_relation.Schema.t ->
  Dlearn_logic.Clause.t ->
  Diagnostic.t list

(** [check_constraints db ~mds ~cfds] runs the constraint-set analysis
    ({!Constraint_check.check}). *)
val check_constraints :
  Dlearn_relation.Database.t ->
  mds:Dlearn_constraints.Md.t list ->
  cfds:Dlearn_constraints.Cfd.t list ->
  Diagnostic.t list

(** [preflight db ?target ~mds ~cfds clauses] checks the constraints and
    every clause. *)
val preflight :
  Dlearn_relation.Database.t ->
  ?target:Dlearn_relation.Schema.t ->
  mds:Dlearn_constraints.Md.t list ->
  cfds:Dlearn_constraints.Cfd.t list ->
  Dlearn_logic.Clause.t list ->
  Diagnostic.t list

exception Rejected of Diagnostic.t list

(** [reject_on_errors ds] raises [Rejected ds] when [ds] contains an
    [Error]; warnings and hints pass. *)
val reject_on_errors : Diagnostic.t list -> unit
