open Dlearn_relation

type t =
  | Var of string
  | Const of Value.t

let var v = Var v
let const c = Const c
let str s = Const (Value.String s)
let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> Value.equal x y
  | (Var _ | Const _), _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let hash = function
  | Var x -> Hashtbl.hash (0, x)
  | Const c -> Hashtbl.hash (1, Value.hash c)

let to_string = function
  | Var x -> x
  | Const (Value.String s) -> Printf.sprintf "%S" s
  | Const c -> Value.to_string c

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Hashtable keyed by terms (structural equality). The subsumption kernel
   uses it to intern a target clause's terms to dense int ids so the inner
   matching loop compares ints instead of values. *)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Fresh = struct
  type gen = {
    prefix : string;
    mutable counter : int;
  }

  let make prefix = { prefix; counter = 0 }

  let next g =
    let v = Var (Printf.sprintf "%s%d" g.prefix g.counter) in
    g.counter <- g.counter + 1;
    v
end
