(* Wire protocol of the serve loop: length-prefixed JSON frames over a
   Unix-domain stream socket. A frame is a 4-byte big-endian payload
   length followed by that many bytes of JSON. Requests are objects with
   an "op" field; responses are objects with an "ok" field ({"ok":true,
   ...} or {"ok":false,"error":...}). The prefix makes framing
   independent of JSON whitespace and keeps reads exact — no
   buffering-ahead across requests, so one descriptor can be driven by
   simple blocking code on both sides. *)

exception Protocol_error of string

(* A hard ceiling on payload size: a corrupt or hostile length prefix
   must not make the server allocate gigabytes. Generous for real
   responses (full imdb3 definitions are a few KiB). *)
let max_frame = 64 * 1024 * 1024

let really_read fd buf pos len =
  let rec go pos remaining =
    if remaining > 0 then begin
      let n = Unix.read fd buf pos remaining in
      if n = 0 then raise End_of_file;
      go (pos + n) (remaining - n)
    end
  in
  go pos len

let really_write fd buf pos len =
  let rec go pos remaining =
    if remaining > 0 then begin
      let n = Unix.write fd buf pos remaining in
      go (pos + n) (remaining - n)
    end
  in
  go pos len

let read_frame fd =
  let header = Bytes.create 4 in
  really_read fd header 0 4;
  let len =
    (Char.code (Bytes.get header 0) lsl 24)
    lor (Char.code (Bytes.get header 1) lsl 16)
    lor (Char.code (Bytes.get header 2) lsl 8)
    lor Char.code (Bytes.get header 3)
  in
  if len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" len));
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  Bytes.unsafe_to_string payload

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" len));
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

let read_json fd =
  let payload = read_frame fd in
  try Json.of_string payload
  with Json.Parse_error msg -> raise (Protocol_error ("bad JSON: " ^ msg))

let write_json fd v = write_frame fd (Json.to_string v)

(* {2 Envelopes} *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.String msg) ]

let request op fields = Json.Obj (("op", Json.String op) :: fields)

let op_of_request v =
  match Json.string_field "op" v with
  | Some op -> op
  | None -> raise (Protocol_error "request has no \"op\" field")

let is_ok v = match Json.member "ok" v with Some (Json.Bool b) -> b | _ -> false

let error_of_response v =
  match Json.string_field "error" v with
  | Some msg -> msg
  | None -> "unknown error"
