(** Value-corruption primitives used to simulate the heterogeneity of the
    paper's datasets: the same entity rendered differently across sources
    (§1), typos, abbreviated person names, and missing values. All
    functions are deterministic in the supplied RNG state. *)

(** [typo rng s] applies one random character edit (swap, drop or
    duplicate); strings shorter than 2 characters are returned as is. *)
val typo : Random.State.t -> string -> string

(** [movie_title_variant rng ~title ~year] renders a movie title in one of
    the source formats: ["T (Y)"], ["T - Y"], ["T [Y]"], ["T: Y"] or bare
    ["T"]. *)
val movie_title_variant : Random.State.t -> title:string -> year:int -> string

(** [abbreviate_name rng name] turns ["John Smith"] into ["J. Smith"]
    (or returns the input when it has no space). *)
val abbreviate_name : Random.State.t -> string -> string

(** [product_title_variant rng name] reorders or decorates a product name
    the way marketplaces do (supplier suffixes, model codes). *)
val product_title_variant : Random.State.t -> string -> string

(** [venue_variant rng venue] abbreviates a venue string ("SIGMOD
    Conference" → "SIGMOD Conf." / "Proc. SIGMOD Conference"). *)
val venue_variant : Random.State.t -> string -> string

(** [maybe rng p f x] applies [f] with probability [p]. *)
val maybe : Random.State.t -> float -> (string -> string) -> string -> string
