(** Learning workloads: a database, its constraints, a learner
    configuration and labelled examples — everything one experiment run
    needs (§6.1.1).

    [inject_violations] implements §6.1.2: a proportion [p] of the tuples
    of every relation constrained by some CFD is made to violate it, by
    inserting a conflicting near-duplicate (same left-hand side, corrupted
    right-hand side). The original tuple remains — which value is correct
    is exactly the information a cleaning step would have to guess. *)

type t = {
  name : string;
  db : Dlearn_relation.Database.t;
  mds : Dlearn_constraints.Md.t list;
  cfds : Dlearn_constraints.Cfd.t list;
  config : Dlearn_core.Config.t;
  pos : Dlearn_relation.Tuple.t list;
  neg : Dlearn_relation.Tuple.t list;
}

(** [inject_violations t ~p ~seed] returns a workload whose database
    contains, for each CFD, ⌈p·|R|⌉ violating pairs. [p = 0.] returns the
    workload unchanged. *)
val inject_violations : t -> p:float -> seed:int -> t

(** [with_examples t ~pos ~neg ~seed] subsamples the example sets to the
    requested sizes (for the scalability sweeps); requesting more examples
    than available keeps them all. *)
val with_examples : t -> pos:int -> neg:int -> seed:int -> t

val describe : t -> string

(** [sample rng n l] draws [n] elements without replacement (all of them
    when [l] is shorter) — shared by the generators. *)
val sample : Random.State.t -> int -> 'a list -> 'a list
