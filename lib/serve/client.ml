(* A blocking client for the serve protocol: one connected Unix-domain
   socket, one request/response exchange at a time. The CI smoke job and
   the tests drive the server through this. *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  { fd; closed = false }

(* Retry the connect while the server is still binding its socket. *)
let connect_retry ?(attempts = 50) ?(delay = 0.1) path =
  let rec go n =
    match connect path with
    | c -> c
    | exception (Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) as e)
      ->
        if n <= 1 then raise e
        else begin
          Thread.delay delay;
          go (n - 1)
        end
  in
  go attempts

let request t req =
  if t.closed then invalid_arg "Client.request: closed";
  Protocol.write_json t.fd req;
  Protocol.read_json t.fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
