open Dlearn_relation

let check_same_relation name = function
  | [] -> invalid_arg (Printf.sprintf "Consistency.%s: empty set" name)
  | first :: rest ->
      if
        not
          (List.for_all
             (fun c -> String.equal c.Cfd.relation first.Cfd.relation)
             rest)
      then
        invalid_arg
          (Printf.sprintf "Consistency.%s: CFDs over several relations" name)

(* The one-tuple reduction: satisfiable iff some assignment of the
   relevant attributes — pattern constants plus one fresh value each —
   satisfies every CFD. *)
let satisfiable_by_one_tuple (cfds : Cfd.t list) =
  let attrs =
    List.concat_map
      (fun (c : Cfd.t) -> fst c.Cfd.rhs :: List.map fst c.Cfd.lhs)
      cfds
    |> List.sort_uniq String.compare
  in
  let candidates attr =
    let consts =
      List.concat_map
        (fun (c : Cfd.t) ->
          List.filter_map
            (fun (a, p) ->
              match p with
              | Cfd.Const v when String.equal a attr -> Some v
              | _ -> None)
            (c.Cfd.rhs :: c.Cfd.lhs))
        cfds
      |> List.sort_uniq Value.compare
    in
    consts @ [ Value.String ("\xe2\x8a\xa5other:" ^ attr) ]
  in
  let tuple_ok assignment =
    List.for_all
      (fun (c : Cfd.t) ->
        let value attr = List.assoc attr assignment in
        let lhs_matches =
          List.for_all (fun (a, p) -> Cfd.matches p (value a)) c.Cfd.lhs
        in
        let rhs_attr, rhs_pat = c.Cfd.rhs in
        (not lhs_matches) || Cfd.matches rhs_pat (value rhs_attr))
      cfds
  in
  let rec search assignment = function
    | [] -> tuple_ok assignment
    | attr :: more ->
        List.exists
          (fun v -> search ((attr, v) :: assignment) more)
          (candidates attr)
  in
  search [] attrs

let single_relation_consistent cfds =
  check_same_relation "single_relation_consistent" cfds;
  satisfiable_by_one_tuple cfds

(* Shrink an inconsistent set to a minimal core: drop every CFD whose
   removal keeps the remainder inconsistent. Linear in |cfds| consistency
   checks — fine at constraint-set sizes. *)
let minimize cfds =
  let rec shrink kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let without = List.rev_append kept rest in
        if without <> [] && not (satisfiable_by_one_tuple without) then
          shrink kept rest
        else shrink (c :: kept) rest
  in
  shrink [] cfds

let single_relation_core cfds =
  check_same_relation "single_relation_core" cfds;
  if satisfiable_by_one_tuple cfds then None else Some (minimize cfds)

let group_by_relation cfds =
  let by_relation = Hashtbl.create 8 in
  List.iter
    (fun (c : Cfd.t) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_relation c.Cfd.relation)
      in
      Hashtbl.replace by_relation c.Cfd.relation (c :: existing))
    cfds;
  Hashtbl.fold (fun rel group acc -> (rel, List.rev group) :: acc) by_relation []
  |> List.sort (fun (r1, _) (r2, _) -> String.compare r1 r2)

let inconsistent_cores cfds =
  group_by_relation cfds
  |> List.filter_map (fun (_, group) -> single_relation_core group)

let consistent cfds = inconsistent_cores cfds = []
