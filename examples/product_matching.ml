(* Product matching with integrity violations: the paper's Walmart+Amazon
   scenario under injected CFD violations (§6.1.2, Table 5).

   We inject conflicting duplicates into the catalogs and compare learning
   over the dirty data directly (DLearn-CFD) against repairing first and
   learning on the single repaired instance (DLearn-Repaired) — the repair
   has to guess which of the conflicting values is right, DLearn does not.

   Run with: dune exec examples/product_matching.exe *)

open Dlearn_constraints
open Dlearn_core
open Dlearn_eval

let () =
  let w = Walmart_amazon.generate ~n:120 () in
  Printf.printf "%s\n" (Workload.describe w);
  List.iter (fun c -> Printf.printf "  CFD %s\n" (Cfd.to_string c)) w.Workload.cfds;

  let dirty = Workload.inject_violations w ~p:0.10 ~seed:3 in
  Printf.printf "\nafter injection: %d violating pairs\n\n"
    (Violation.count dirty.Workload.cfds dirty.Workload.db);

  List.iter
    (fun system ->
      let r = Experiment.evaluate ~folds:3 system dirty in
      Printf.printf "%-16s F1=%.2f precision=%.2f recall=%.2f (%.1fs/fold)\n"
        (Baselines.name system) r.Experiment.f1 r.Experiment.precision
        r.Experiment.recall r.Experiment.seconds)
    [ Baselines.Dlearn_cfd; Baselines.Dlearn_repaired ]
