(* A compact CDCL core: two-watched-literal propagation, first-UIP
   learning with backjumping, Luby restarts, incremental assumptions.
   No clause deletion and no activity heuristic — the subsumption
   encoder wants a static, caller-controlled decision order so the
   first model is the one its enumeration semantics prescribe. *)

(* Literal encoding: [2v] is the positive, [2v+1] the negative literal
   of variable [v]. *)
let pos v = 2 * v
let neg v = (2 * v) + 1
let negate l = l lxor 1
let var_of l = l lsr 1

type clause = {
  mutable lits : int array;
  learnt : bool;
  born : int; (* the solve call this clause was learned in; -1 = input *)
}

(* Watch lists as growable vectors, filtered in place during
   propagation (MiniSat-style) — cons-rebuilt immutable lists showed up
   as the dominant propagation cost on bottom-clause-sized encodings. *)
type watchlist = { mutable wdata : clause array; mutable wlen : int }

let new_watchlist () = { wdata = [||]; wlen = 0 }

let watch_push w c =
  if w.wlen = Array.length w.wdata then begin
    let bigger = Array.make (max 4 (2 * w.wlen)) c in
    Array.blit w.wdata 0 bigger 0 w.wlen;
    w.wdata <- bigger
  end;
  w.wdata.(w.wlen) <- c;
  w.wlen <- w.wlen + 1

type t = {
  mutable nvars : int;
  (* assignment state, indexed by variable *)
  mutable assigns : int array; (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;
  (* watch lists, indexed by literal *)
  mutable watches : watchlist array;
  (* trail of literals assigned true, with decision-level marks *)
  mutable trail : int array;
  mutable trail_n : int;
  mutable trail_lim : int array;
  mutable trail_lim_n : int;
  mutable qhead : int;
  (* clause database *)
  mutable learnts : clause list;
  mutable unsat : bool;
  (* static decision order: [priority] first, then index order *)
  mutable priority : int array;
  mutable prio_head : int;
  mutable scan_head : int;
  (* counters *)
  mutable n_solves : int;
  mutable n_props : int;
  mutable n_conflicts : int;
  mutable n_learned : int;
  mutable n_restarts : int;
  mutable n_reused : int;
  (* conflict-analysis scratch *)
  mutable seen : bool array;
}

type stats = {
  solves : int;
  propagations : int;
  conflicts : int;
  learned : int;
  restarts : int;
  reused_clause_hits : int;
}

let create () =
  {
    nvars = 0;
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    phase = Array.make 16 false;
    watches = Array.init 32 (fun _ -> new_watchlist ());
    trail = Array.make 16 0;
    trail_n = 0;
    trail_lim = Array.make 16 0;
    trail_lim_n = 0;
    qhead = 0;
    learnts = [];
    unsat = false;
    priority = [||];
    prio_head = 0;
    scan_head = 0;
    n_solves = 0;
    n_props = 0;
    n_conflicts = 0;
    n_learned = 0;
    n_restarts = 0;
    n_reused = 0;
    seen = Array.make 16 false;
  }

let grow_to arr n fill =
  let len = Array.length !arr in
  if n > len then begin
    let bigger = Array.make (max n (2 * len)) fill in
    Array.blit !arr 0 bigger 0 len;
    arr := bigger
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  let n = s.nvars in
  let g get set fill =
    let r = ref (get s) in
    grow_to r n fill;
    set s !r
  in
  g (fun s -> s.assigns) (fun s a -> s.assigns <- a) (-1);
  g (fun s -> s.level) (fun s a -> s.level <- a) 0;
  g (fun s -> s.phase) (fun s a -> s.phase <- a) false;
  g (fun s -> s.seen) (fun s a -> s.seen <- a) false;
  g (fun s -> s.trail) (fun s a -> s.trail <- a) 0;
  (let r = ref s.reason in
   grow_to r n None;
   s.reason <- !r);
  (* watch slots must be distinct records — no shared fill value *)
  (let len = Array.length s.watches in
   if 2 * n > len then
     s.watches <-
       Array.init
         (max (2 * n) (2 * len))
         (fun i -> if i < len then s.watches.(i) else new_watchlist ()));
  v

let num_vars s = s.nvars

(* -1 unassigned, 0 false, 1 true — of a literal *)
let lit_value s l =
  match s.assigns.(l lsr 1) with
  | -1 -> -1
  | a -> if l land 1 = 0 then a else 1 - a

let decision_level s = s.trail_lim_n

let enqueue s l reason =
  s.assigns.(l lsr 1) <- (if l land 1 = 0 then 1 else 0);
  s.level.(l lsr 1) <- decision_level s;
  s.reason.(l lsr 1) <- reason;
  s.trail.(s.trail_n) <- l;
  s.trail_n <- s.trail_n + 1

let new_decision_level s =
  if s.trail_lim_n = Array.length s.trail_lim then begin
    let r = ref s.trail_lim in
    grow_to r (s.trail_lim_n + 1) 0;
    s.trail_lim <- !r
  end;
  s.trail_lim.(s.trail_lim_n) <- s.trail_n;
  s.trail_lim_n <- s.trail_lim_n + 1

let backtrack s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_n - 1 downto bound do
      let v = s.trail.(i) lsr 1 in
      s.phase.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- None
    done;
    s.trail_n <- bound;
    s.qhead <- bound;
    s.trail_lim_n <- lvl;
    s.prio_head <- 0;
    s.scan_head <- 0
  end

exception Conflict of clause

(* Two-watched-literal propagation: a clause watches lits.(0) and
   lits.(1); when a watched literal becomes false it either finds a new
   non-false literal to watch, is satisfied through the other watch,
   propagates it as a unit, or conflicts. *)
let propagate s =
  try
    while s.qhead < s.trail_n do
      let p = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      let false_lit = negate p in
      let w = s.watches.(false_lit) in
      (* in-place filter: [i] reads, [j] writes back the kept watchers;
         a moved watch is pushed onto another literal's list (never this
         one — clause literals are distinct), so the scan stays sound *)
      let i = ref 0 and j = ref 0 in
      while !i < w.wlen do
        let c = w.wdata.(!i) in
        incr i;
        let lits = c.lits in
        (* normalize: the false literal sits at index 1 *)
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if lit_value s lits.(0) = 1 then begin
          (* satisfied through the other watch *)
          w.wdata.(!j) <- c;
          incr j
        end
        else begin
          (* look for a replacement watch *)
          let n = Array.length lits in
          let k = ref 2 in
          while !k < n && lit_value s lits.(!k) = 0 do
            incr k
          done;
          if !k < n then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- false_lit;
            watch_push s.watches.(lits.(1)) c
          end
          else begin
            w.wdata.(!j) <- c;
            incr j;
            match lit_value s lits.(0) with
            | 0 ->
                (* conflict: keep the unvisited watchers before bailing *)
                while !i < w.wlen do
                  w.wdata.(!j) <- w.wdata.(!i);
                  incr i;
                  incr j
                done;
                w.wlen <- !j;
                if c.learnt && c.born < s.n_solves then
                  s.n_reused <- s.n_reused + 1;
                raise (Conflict c)
            | _ ->
                s.n_props <- s.n_props + 1;
                if c.learnt && c.born < s.n_solves then
                  s.n_reused <- s.n_reused + 1;
                enqueue s lits.(0) (Some c)
          end
        end
      done;
      w.wlen <- !j
    done;
    None
  with Conflict c -> Some c

let attach s c =
  watch_push s.watches.(c.lits.(0)) c;
  watch_push s.watches.(c.lits.(1)) c

let add_clause s lits =
  if not s.unsat then begin
    assert (decision_level s = 0);
    (* simplify against the root assignment; drop duplicates and
       tautologies *)
    let sorted = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> l land 1 = 0 && List.mem (negate l) sorted) sorted
    in
    let live = List.filter (fun l -> lit_value s l <> 0) sorted in
    let satisfied = List.exists (fun l -> lit_value s l = 1) live in
    if not (taut || satisfied) then
      match live with
      | [] -> s.unsat <- true
      | [ l ] -> (
          enqueue s l None;
          match propagate s with
          | Some _ -> s.unsat <- true
          | None -> ())
      | _ :: _ :: _ ->
          let c = { lits = Array.of_list live; learnt = false; born = -1 } in
          attach s c
  end

(* First-UIP conflict analysis. Returns the learned clause (asserting
   literal first) and the backjump level. *)
let analyze s confl =
  let current = decision_level s in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_n - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let lits = !confl.lits in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length lits - 1 do
      let q = lits.(j) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        if s.level.(v) >= current then incr counter
        else learnt := q :: !learnt
      end
    done;
    (* pick the next seen literal off the trail *)
    while not s.seen.(s.trail.(!index) lsr 1) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    let v = !p lsr 1 in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else
      (* the reason clause of [p] keeps [p] at index 0 (propagation and
         learning both enqueue [lits.(0)]), so the resolvent is the
         clause itself scanned from index 1 *)
      match s.reason.(v) with
      | Some c -> confl := c
      | None -> assert false
  done;
  let others = !learnt in
  List.iter (fun q -> s.seen.(q lsr 1) <- false) others;
  let bt =
    List.fold_left (fun acc q -> max acc s.level.(q lsr 1)) 0 others
  in
  (negate !p :: others, bt)

(* Luby restart sequence: 1 1 2 1 1 2 4 ... *)
let luby i =
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let pick_branch s =
  let n = Array.length s.priority in
  let found = ref (-1) in
  while !found < 0 && s.prio_head < n do
    let v = s.priority.(s.prio_head) in
    if s.assigns.(v) = -1 then found := v else s.prio_head <- s.prio_head + 1
  done;
  while !found < 0 && s.scan_head < s.nvars do
    if s.assigns.(s.scan_head) = -1 then found := s.scan_head
    else s.scan_head <- s.scan_head + 1
  done;
  !found

let solve ?(assumptions = []) ?(conflict_limit = max_int) s =
  if s.unsat then `Unsat
  else begin
    s.n_solves <- s.n_solves + 1;
    let assumptions = Array.of_list assumptions in
    let conflicts0 = s.n_conflicts in
    let restart_base = 100 in
    let next_restart = ref (restart_base * luby 0) in
    let restart_idx = ref 0 in
    let result = ref `Unknown in
    (match propagate s with
    | Some _ ->
        s.unsat <- true;
        result := `Unsat
    | None -> ());
    while !result = `Unknown do
      match propagate s with
      | Some confl ->
          s.n_conflicts <- s.n_conflicts + 1;
          if decision_level s = 0 then begin
            s.unsat <- true;
            result := `Unsat
          end
          else if s.n_conflicts - conflicts0 >= conflict_limit then begin
            backtrack s 0;
            result := `Limit
          end
          else begin
            let learnt, bt = analyze s confl in
            backtrack s bt;
            (match learnt with
            | [] -> assert false
            | [ l ] ->
                (* root-asserted, so no watches needed — kept in the
                   database only so [learned_clauses] reports it *)
                s.learnts <-
                  { lits = [| l |]; learnt = true; born = s.n_solves }
                  :: s.learnts;
                s.n_learned <- s.n_learned + 1;
                enqueue s l None
            | l0 :: _ :: _ ->
                (* second watch must sit at the backjump level *)
                let arr = Array.of_list learnt in
                let wi = ref 1 in
                for j = 2 to Array.length arr - 1 do
                  if s.level.(arr.(j) lsr 1) > s.level.(arr.(!wi) lsr 1) then
                    wi := j
                done;
                let tmp = arr.(1) in
                arr.(1) <- arr.(!wi);
                arr.(!wi) <- tmp;
                let c = { lits = arr; learnt = true; born = s.n_solves } in
                attach s c;
                s.learnts <- c :: s.learnts;
                s.n_learned <- s.n_learned + 1;
                enqueue s l0 (Some c));
            if s.n_conflicts - conflicts0 >= !next_restart then begin
              s.n_restarts <- s.n_restarts + 1;
              incr restart_idx;
              next_restart :=
                s.n_conflicts - conflicts0 + (restart_base * luby !restart_idx);
              backtrack s 0
            end
          end
      | None ->
          (* decide: pending assumptions first, then the static order *)
          let next = ref (-2) in
          while
            !next = -2 && decision_level s < Array.length assumptions
          do
            let p = assumptions.(decision_level s) in
            match lit_value s p with
            | 1 -> new_decision_level s (* already satisfied: dummy level *)
            | 0 -> next := -3 (* assumption failed *)
            | _ -> next := p
          done;
          if !next = -3 then begin
            backtrack s 0;
            result := `Unsat
          end
          else begin
            (if !next = -2 then
               match pick_branch s with
               | -1 -> next := -4 (* all assigned: model *)
               | v -> next := (if s.phase.(v) then pos v else neg v));
            if !next = -4 then begin
              result := `Sat
            end
            else begin
              new_decision_level s;
              enqueue s !next None
            end
          end
    done;
    match !result with
    | `Sat ->
        (* keep the model readable: phases already saved on backtrack;
           freeze assignments into the phase array, then reset *)
        for i = 0 to s.nvars - 1 do
          if s.assigns.(i) >= 0 then s.phase.(i) <- s.assigns.(i) = 1
        done;
        backtrack s 0;
        `Sat
    | `Unsat ->
        backtrack s 0;
        `Unsat
    | `Limit -> `Limit
    | `Unknown -> assert false
  end

(* After [`Sat] the model lives in the saved phases (frozen just before
   the final backtrack), plus whatever the root level pinned. *)
let value s v =
  match s.assigns.(v) with 1 -> true | 0 -> false | _ -> s.phase.(v)

let set_priority s vars =
  s.priority <- vars;
  s.prio_head <- 0

let set_phase s v b = s.phase.(v) <- b

let learned_clauses s = List.rev_map (fun c -> Array.copy c.lits) s.learnts

let stats s =
  {
    solves = s.n_solves;
    propagations = s.n_props;
    conflicts = s.n_conflicts;
    learned = s.n_learned;
    restarts = s.n_restarts;
    reused_clause_hits = s.n_reused;
  }
