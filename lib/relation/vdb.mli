(** Versioned, transactional database core (ROADMAP item 1).

    [Vdb] wraps a materialized {!Database.t} (the {b head}) with
    snapshot/versioned semantics: every commit mints an immutable
    {b version handle} — a database of {!Relation.snapshot} views sharing
    the live tuple arrays, O(relations) to create — and transactions
    buffer tuple deltas that apply atomically under the store lock.
    Inserts append to the live relations (older versions bound their
    index probes by their recorded sizes, so they keep their exact
    contents for free); updates rebuild the touched relation
    copy-on-write and swap it into the head, leaving older versions on
    the superseded object.

    Concurrency: commits serialize under the store lock; version handles
    are immutable and safe to read from any domain. Reads of the {b live}
    head concurrent with a commit are the caller's to order (the serve
    loop holds a readers–writer lock around requests —
    docs/SERVE.md). Conflict rule: first-committer-wins on updates to
    the same (relation, id); inserts always merge. *)

type delta =
  | Insert of { rel : string; tuple : Tuple.t }
  | Update of { rel : string; id : int; tuple : Tuple.t; previous : Tuple.t }

type version
(** An immutable database version. *)

type t
type txn

type error =
  | Conflict of { rel : string; id : int }
      (** another transaction updated this tuple after ours began *)
  | Closed  (** the transaction was already committed or aborted *)

val error_to_string : error -> string

(** [of_database db] adopts [db] as the head, forcing any pending
    relations, and mints version 0. The store owns [db] from here on:
    mutate only through transactions. *)
val of_database : Database.t -> t

(** The live head database — what a learning context reads. Callers must
    order their reads against commits (see module docs). *)
val head : t -> Database.t

(** The latest committed version. *)
val version : t -> version

val version_id : version -> int

(** The version's immutable database of snapshot relations. *)
val database : version -> Database.t

(** [subscribe t f] registers [f], called after every successful commit
    with the new version and its deltas (outside the store lock, in
    commit order as long as commits are externally serialized). *)
val subscribe : t -> (version -> delta list -> unit) -> unit

(** {2 Transactions} *)

val begin_txn : t -> txn

(** The version the transaction reads from — its stable snapshot. *)
val base : txn -> version

(** [insert txn rel tuple] buffers an insert.
    @raise Invalid_argument on arity mismatch or unknown relation;
    returns [Error Closed] on a finished transaction. *)
val insert : txn -> string -> Tuple.t -> (unit, error) result

(** [update txn rel id tuple] buffers an update of tuple [id] (as
    numbered in the transaction's base version).
    @raise Invalid_argument on a bad id, arity mismatch or unknown
    relation; returns [Error Closed] on a finished transaction. *)
val update : txn -> string -> int -> Tuple.t -> (unit, error) result

(** [commit txn] atomically applies the buffered deltas, mints the next
    version and notifies subscribers. [Error (Conflict _)] aborts the
    transaction (first-committer-wins on updates). *)
val commit : txn -> (version, error) result

val abort : txn -> unit

(** {2 One-shot writes} *)

val insert_one : t -> string -> Tuple.t -> (version, error) result
val update_one : t -> string -> int -> Tuple.t -> (version, error) result

(** [changed_tuples deltas] lists, per relation, every tuple a delta
    touches — new values for inserts, new and previous for updates. The
    invalidation universe cache layers key on. *)
val changed_tuples : delta list -> (string * Tuple.t list) list
