open Dlearn_relation

let value_tests =
  [
    Alcotest.test_case "of_string parses ints" `Quick (fun () ->
        Alcotest.(check bool) "int" true (Value.equal (Value.of_string "42") (Value.Int 42)));
    Alcotest.test_case "of_string parses floats" `Quick (fun () ->
        Alcotest.(check bool)
          "float" true
          (Value.equal (Value.of_string "3.5") (Value.Float 3.5)));
    Alcotest.test_case "of_string keeps strings" `Quick (fun () ->
        Alcotest.(check bool)
          "string" true
          (Value.equal (Value.of_string "Star Wars") (Value.String "Star Wars")));
    Alcotest.test_case "of_string empty is null" `Quick (fun () ->
        Alcotest.(check bool) "null" true (Value.is_null (Value.of_string "")));
    Alcotest.test_case "equality is per constructor" `Quick (fun () ->
        Alcotest.(check bool)
          "Int 1 <> String 1" false
          (Value.equal (Value.Int 1) (Value.String "1")));
    Alcotest.test_case "compare orders within constructor" `Quick (fun () ->
        Alcotest.(check bool) "1 < 2" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
        Alcotest.(check bool)
          "a < b" true
          (Value.compare (Value.String "a") (Value.String "b") < 0));
    Alcotest.test_case "hash agrees with equal" `Quick (fun () ->
        Alcotest.(check int)
          "same hash"
          (Value.hash (Value.String "x"))
          (Value.hash (Value.String "x")));
  ]

let schema_tests =
  [
    Alcotest.test_case "position lookup" `Quick (fun () ->
        let s = Schema.string_attrs "movies" [ "id"; "title"; "year" ] in
        Alcotest.(check int) "title at 1" 1 (Schema.position s "title");
        Alcotest.(check int) "arity" 3 (Schema.arity s));
    Alcotest.test_case "missing attribute raises" `Quick (fun () ->
        let s = Schema.string_attrs "r" [ "a" ] in
        Alcotest.check_raises "Not_found" Not_found (fun () ->
            ignore (Schema.position s "zz")));
    Alcotest.test_case "duplicate attribute rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Schema.string_attrs "r" [ "a"; "a" ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "empty attributes rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Schema.make "r" []);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "comparable by domain" `Quick (fun () ->
        let s = Schema.make "r" [ { Schema.attr_name = "a"; domain = Schema.Dint } ] in
        let u = Schema.string_attrs "q" [ "b" ] in
        Alcotest.(check bool) "int vs string" false (Schema.comparable s 0 u 0);
        Alcotest.(check bool) "string vs string" true (Schema.comparable u 0 u 0));
  ]

let tuple_tests =
  [
    Alcotest.test_case "project keeps order" `Quick (fun () ->
        let t = Tuple.of_strings [ "a"; "b"; "c" ] in
        let p = Tuple.project t [| 2; 0 |] in
        Alcotest.(check string) "projected" "(c, a)" (Tuple.to_string p));
    Alcotest.test_case "set is persistent" `Quick (fun () ->
        let t = Tuple.of_strings [ "a"; "b" ] in
        let t' = Tuple.set t 0 (Value.String "z") in
        Alcotest.(check bool) "original intact" true
          (Value.equal (Tuple.get t 0) (Value.String "a"));
        Alcotest.(check bool) "copy updated" true
          (Value.equal (Tuple.get t' 0) (Value.String "z")));
    Alcotest.test_case "equal tuples share hash" `Quick (fun () ->
        let a = Tuple.of_strings [ "x"; "7" ] and b = Tuple.of_strings [ "x"; "7" ] in
        Alcotest.(check bool) "equal" true (Tuple.equal a b);
        Alcotest.(check int) "hash" (Tuple.hash a) (Tuple.hash b));
    Alcotest.test_case "compare is lexicographic" `Quick (fun () ->
        let a = Tuple.of_strings [ "a"; "b" ] and b = Tuple.of_strings [ "a"; "c" ] in
        Alcotest.(check bool) "a < b" true (Tuple.compare a b < 0));
  ]

let movies_relation () =
  let s = Schema.string_attrs "movies" [ "id"; "title"; "year" ] in
  let r = Relation.create s in
  Relation.insert_all r
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ];
      Tuple.of_strings [ "m3"; "Orphanage (2007)"; "y2007" ];
    ];
  r

let relation_tests =
  [
    Alcotest.test_case "indexed selection" `Quick (fun () ->
        let r = movies_relation () in
        let hits = Relation.select_eq r 2 (Value.String "y2007") in
        Alcotest.(check int) "two 2007 movies" 2 (List.length hits));
    Alcotest.test_case "duplicates are kept" `Quick (fun () ->
        let r = movies_relation () in
        ignore (Relation.insert r (Tuple.of_strings [ "m1"; "Superbad (2007)"; "y2007" ]));
        Alcotest.(check int) "4 tuples" 4 (Relation.cardinality r);
        Alcotest.(check int) "two m1 hits" 2
          (List.length (Relation.select_eq r 0 (Value.String "m1"))));
    Alcotest.test_case "distinct values" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check int) "2 distinct years" 2
          (List.length (Relation.distinct_values r 2)));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Relation.insert r (Tuple.of_strings [ "only-one" ]));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "filter builds fresh indexed relation" `Quick (fun () ->
        let r = movies_relation () in
        let dramas = Relation.filter (fun t ->
            Value.equal (Tuple.get t 2) (Value.String "y2007")) r in
        Alcotest.(check int) "2 kept" 2 (Relation.cardinality dramas);
        Alcotest.(check int) "index rebuilt" 1
          (List.length (Relation.select_eq dramas 0 (Value.String "m1"))));
    Alcotest.test_case "contains" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check bool) "present" true
          (Relation.contains r (Tuple.of_strings [ "m2"; "Zoolander (2001)"; "y2001" ]));
        Alcotest.(check bool) "absent" false
          (Relation.contains r (Tuple.of_strings [ "m2"; "Zoolander"; "y2001" ])));
    Alcotest.test_case "holds_value" `Quick (fun () ->
        let r = movies_relation () in
        Alcotest.(check bool) "yes" true (Relation.holds_value r 0 (Value.String "m3"));
        Alcotest.(check bool) "no" false (Relation.holds_value r 0 (Value.String "m9")));
    Alcotest.test_case "map_tuples rewrites" `Quick (fun () ->
        let r = movies_relation () in
        let r' = Relation.map_tuples (fun t -> Tuple.set t 2 (Value.String "yX")) r in
        Alcotest.(check int) "all rewritten" 3
          (List.length (Relation.select_eq r' 2 (Value.String "yX"))));
  ]

let database_tests =
  [
    Alcotest.test_case "find and mem" `Quick (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        Alcotest.(check bool) "mem" true (Database.mem db "movies");
        Alcotest.(check int) "tuples" 3 (Database.total_tuples db));
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        Alcotest.(check bool) "raises" true
          (try
             Database.add_relation db (movies_relation ());
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "copy is deep" `Quick (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        let db' = Database.copy db in
        ignore
          (Relation.insert (Database.find db' "movies")
             (Tuple.of_strings [ "m4"; "New"; "y2020" ]));
        Alcotest.(check int) "original unchanged" 3
          (Relation.cardinality (Database.find db "movies"));
        Alcotest.(check int) "copy grew" 4
          (Relation.cardinality (Database.find db' "movies")));
    Alcotest.test_case "relation order preserved" `Quick (fun () ->
        let db = Database.create () in
        ignore (Database.create_relation db (Schema.string_attrs "b" [ "x" ]));
        ignore (Database.create_relation db (Schema.string_attrs "a" [ "x" ]));
        Alcotest.(check (list string)) "order" [ "b"; "a" ] (Database.relation_names db));
  ]

let csv_tests =
  [
    Alcotest.test_case "parse simple" `Quick (fun () ->
        Alcotest.(check (list string)) "fields" [ "a"; "b"; "c" ] (Csv.parse_line "a,b,c"));
    Alcotest.test_case "parse quoted with comma" `Quick (fun () ->
        Alcotest.(check (list string))
          "fields" [ "a,b"; "c" ]
          (Csv.parse_line "\"a,b\",c"));
    Alcotest.test_case "parse doubled quotes" `Quick (fun () ->
        Alcotest.(check (list string))
          "fields" [ "say \"hi\""; "x" ]
          (Csv.parse_line "\"say \"\"hi\"\"\",x"));
    Alcotest.test_case "parse empty fields" `Quick (fun () ->
        Alcotest.(check (list string)) "fields" [ ""; ""; "" ] (Csv.parse_line ",,"));
    Alcotest.test_case "render quotes when needed" `Quick (fun () ->
        Alcotest.(check string) "quoted" "\"a,b\",c" (Csv.render_line [ "a,b"; "c" ]));
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let r = movies_relation () in
        let path = Filename.temp_file "dlearn" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Csv.save r path;
            let r' = Csv.load (Relation.schema r) path in
            Alcotest.(check int) "same size" (Relation.cardinality r)
              (Relation.cardinality r');
            Relation.iter
              (fun _ t ->
                Alcotest.(check bool) "tuple present" true (Relation.contains r' t))
              r));
    Alcotest.test_case "load strips CRLF line endings" `Quick (fun () ->
        (* A file written by a Windows tool: every record ends in \r\n.
           The \r must not leak into the last column's value. *)
        let schema = Schema.string_attrs "m" [ "id"; "title" ] in
        let path = Filename.temp_file "dlearn_crlf" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "m1,Alien\r\nm2,\"Up, Down\"\r\n";
            close_out oc;
            let r = Csv.load schema path in
            Alcotest.(check int) "two tuples" 2 (Relation.cardinality r);
            Alcotest.(check bool)
              "last column clean" true
              (Relation.contains r (Tuple.of_strings [ "m1"; "Alien" ]));
            Alcotest.(check bool)
              "quoted field clean" true
              (Relation.contains r (Tuple.of_strings [ "m2"; "Up, Down" ]))));
    Alcotest.test_case "round trip survives CRLF rewriting" `Quick (fun () ->
        (* save/load over a file whose LF terminators were rewritten to
           CRLF in transit — including a field that itself contains \r,
           which save quotes and load must preserve. *)
        let schema = Schema.string_attrs "m" [ "id"; "note" ] in
        let r = Relation.create schema in
        ignore (Relation.insert r (Tuple.of_strings [ "m1"; "line\rfeed" ]));
        ignore (Relation.insert r (Tuple.of_strings [ "m2"; "plain" ]));
        let path = Filename.temp_file "dlearn_crlf_rt" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Csv.save r path;
            let ic = open_in_bin path in
            let contents = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let crlf =
              String.concat "\r\n" (String.split_on_char '\n' contents)
            in
            let oc = open_out_bin path in
            output_string oc crlf;
            close_out oc;
            let r' = Csv.load schema path in
            Alcotest.(check int) "same size" 2 (Relation.cardinality r');
            Relation.iter
              (fun _ t ->
                Alcotest.(check bool) "tuple survives" true
                  (Relation.contains r' t))
              r));
  ]

let index_tests =
  [
    Alcotest.test_case "lookup returns insertion order" `Quick (fun () ->
        let idx = Index.create () in
        let v = Value.String "x" in
        List.iter (Index.add idx v) [ 1; 2; 3 ];
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Index.lookup idx v);
        (* The memoized view must stay physically stable across repeated
           lookups and be invalidated by the next insertion. *)
        Alcotest.(check bool)
          "memoized" true
          (Index.lookup idx v == Index.lookup idx v);
        Index.add idx v 4;
        Alcotest.(check (list int))
          "order after insert" [ 1; 2; 3; 4 ] (Index.lookup idx v));
    Alcotest.test_case "lookup keeps duplicates in order" `Quick (fun () ->
        let idx = Index.create () in
        let v = Value.Int 7 in
        List.iter (Index.add idx v) [ 5; 5; 9 ];
        Alcotest.(check (list int)) "duplicates" [ 5; 5; 9 ] (Index.lookup idx v));
    Alcotest.test_case "lookup of absent value is empty" `Quick (fun () ->
        let idx = Index.create () in
        Alcotest.(check (list int)) "empty" [] (Index.lookup idx (Value.Int 0)));
  ]

let text_table_tests =
  [
    Alcotest.test_case "columns aligned" `Quick (fun () ->
        let out = Text_table.render ~header:[ "a"; "long" ] [ [ "xxx"; "y" ] ] in
        let lines = String.split_on_char '\n' out in
        (match lines with
        | h :: _ :: row :: _ ->
            Alcotest.(check int) "same width" (String.length h) (String.length row)
        | _ -> Alcotest.fail "unexpected shape"));
    Alcotest.test_case "short rows padded" `Quick (fun () ->
        let out = Text_table.render ~header:[ "a"; "b" ] [ [ "only" ] ] in
        Alcotest.(check bool) "renders" true (String.length out > 0));
    Alcotest.test_case "of_relation truncates" `Quick (fun () ->
        let r = movies_relation () in
        let out = Text_table.of_relation ~limit:2 r in
        Alcotest.(check bool) "mentions more" true
          (let re = "more tuples" in
           let rec contains i =
             i + String.length re <= String.length out
             && (String.sub out i (String.length re) = re || contains (i + 1))
           in
           contains 0));
  ]

let qcheck_tests =
  let field_gen =
    QCheck.Gen.(
      string_size ~gen:(oneof [ char_range 'a' 'z'; return ','; return '"' ]) (0 -- 8))
  in
  let fields_arb =
    QCheck.make
      ~print:(fun fs -> String.concat "|" fs)
      QCheck.Gen.(list_size (1 -- 5) field_gen)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"csv render/parse round-trips" ~count:300 fields_arb
         (fun fields ->
           Csv.parse_line (Csv.render_line fields) = fields));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"value of_string/to_string round-trips ints"
         ~count:200 QCheck.int (fun i ->
           Value.equal (Value.of_string (Value.to_string (Value.Int i))) (Value.Int i)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tuple full projection is identity" ~count:200
         QCheck.(list_of_size (QCheck.Gen.int_range 1 6) small_string)
         (fun fields ->
           let t = Tuple.of_strings fields in
           Tuple.equal t (Tuple.project t (Array.init (Tuple.arity t) Fun.id))));
  ]


let storage_tests =
  [
    Alcotest.test_case "database round-trips through a directory" `Quick
      (fun () ->
        let db = Database.create () in
        Database.add_relation db (movies_relation ());
        let prices =
          Database.create_relation db
            (Schema.make "prices"
               [
                 { Schema.attr_name = "id"; domain = Schema.Dstring };
                 { Schema.attr_name = "amount"; domain = Schema.Dint };
               ])
        in
        ignore
          (Relation.insert prices
             (Tuple.make [ Value.String "m1"; Value.Int 12 ]));
        let dir = Filename.temp_file "dlearn" "" in
        Sys.remove dir;
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir then begin
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir f))
                (Sys.readdir dir);
              Sys.rmdir dir
            end)
          (fun () ->
            Storage.save db dir;
            let db2 = Storage.load dir in
            Alcotest.(check int) "same tuples" (Database.total_tuples db)
              (Database.total_tuples db2);
            Alcotest.(check (list string)) "same relations"
              (Database.relation_names db) (Database.relation_names db2);
            (* Numeric strings stay strings when the domain says string:
               the movie years were stored in a string column. *)
            let m = Database.find db2 "movies" in
            Alcotest.(check bool) "year is a string" true
              (Relation.fold
                 (fun _ t acc ->
                   acc
                   && (match Tuple.get t 2 with
                      | Value.String _ -> true
                      | _ -> false))
                 m true);
            (* And ints stay ints. *)
            let p = Database.find db2 "prices" in
            Alcotest.(check bool) "amount is an int" true
              (match Tuple.get (Relation.get p 0) 1 with
              | Value.Int 12 -> true
              | _ -> false)));
    Alcotest.test_case "loading a missing directory fails" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Storage.load "/nonexistent-dlearn-db");
             false
           with Sys_error _ -> true));
  ]


(* {2 Streaming}

   The chunked CSV reader and lazy storage layer behind the scale path:
   records spanning the 64 KiB read-chunk boundary, CRLF in the same
   stream, files without trailing newlines, relation scans that never
   materialize, and deferred relation loading. *)

let with_temp_dir f =
  let dir = Filename.temp_file "dlearn_scale" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let streaming_tests =
  [
    Alcotest.test_case "fold streams large quoted fields across chunks" `Quick
      (fun () ->
        (* One field of 100 000 characters: spans two 64 KiB read chunks,
           is quoted (contains a comma), and the file ends CRLF. The
           reader must reassemble it byte-perfectly. *)
        let big = String.init 100_000 (fun i -> Char.chr (97 + (i mod 23))) in
        let path = Filename.temp_file "dlearn_big" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "first,plain\r\n";
            output_string oc (Csv.render_line [ "second"; big ^ ",tail" ]);
            output_string oc "\r\n";
            close_out oc;
            let records =
              Csv.fold_records path ~init:[] ~f:(fun acc _line fields ->
                  fields :: acc)
            in
            match List.rev records with
            | [ [ "first"; "plain" ]; [ "second"; huge ] ] ->
                Alcotest.(check int)
                  "field length" (String.length big + 5) (String.length huge);
                Alcotest.(check string) "field content" (big ^ ",tail") huge
            | other -> Alcotest.failf "unexpected shape: %d records" (List.length other)));
    Alcotest.test_case "fold handles a missing trailing newline" `Quick
      (fun () ->
        let path = Filename.temp_file "dlearn_eof" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "a,b\nc,d";
            close_out oc;
            let records =
              Csv.fold_records path ~init:[] ~f:(fun acc _line fields ->
                  fields :: acc)
            in
            Alcotest.(check (list (list string)))
              "both records" [ [ "a"; "b" ]; [ "c"; "d" ] ] (List.rev records)));
    Alcotest.test_case "fold skips blank lines but counts them" `Quick
      (fun () ->
        let path = Filename.temp_file "dlearn_blank" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "a,b\n\nc,d\n";
            close_out oc;
            let records =
              Csv.fold_records path ~init:[] ~f:(fun acc line fields ->
                  (line, fields) :: acc)
            in
            (* The blank line is skipped yet still advances line numbers —
               what load's arity errors report. *)
            Alcotest.(check (list (list string)))
              "records" [ [ "a"; "b" ]; [ "c"; "d" ] ]
              (List.rev_map snd records);
            Alcotest.(check (list int)) "line numbers" [ 1; 3 ]
              (List.rev_map fst records)));
    Alcotest.test_case "load reports arity errors with line numbers" `Quick
      (fun () ->
        let schema = Schema.string_attrs "m" [ "id"; "title" ] in
        let path = Filename.temp_file "dlearn_arity" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "m1,Alien\nm2,Up,extra\n";
            close_out oc;
            match Csv.load schema path with
            | _ -> Alcotest.fail "expected arity failure"
            | exception Invalid_argument msg ->
                Alcotest.(check bool)
                  (Printf.sprintf "message names line 2: %s" msg)
                  true
                  (let sub = "line 2" in
                   let rec contains i =
                     i + String.length sub <= String.length msg
                     && (String.sub msg i (String.length sub) = sub
                        || contains (i + 1))
                   in
                   contains 0)));
    Alcotest.test_case "scan streams a stored relation without loading it"
      `Quick (fun () ->
        with_temp_dir (fun dir ->
            let db = Database.create () in
            Database.add_relation db (movies_relation ());
            Storage.save db dir;
            let expected = Relation.cardinality (Database.find db "movies") in
            let rows =
              Storage.scan dir "movies" ~init:0 ~f:(fun acc tu ->
                  (* Tuples arrive typed against the manifest schema. *)
                  (match Tuple.get tu 0 with
                  | Value.String _ -> ()
                  | v ->
                      Alcotest.failf "expected string id, got %s"
                        (Value.to_string v));
                  acc + 1)
            in
            Alcotest.(check int) "all rows scanned" expected rows;
            Alcotest.(check bool) "unknown relation rejected" true
              (try
                 ignore (Storage.scan dir "nope" ~init:0 ~f:(fun a _ -> a));
                 false
               with Invalid_argument _ -> true)));
    Alcotest.test_case "lazy load defers relations until first access" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            let db = Database.create () in
            Database.add_relation db (movies_relation ());
            let prices =
              Database.create_relation db
                (Schema.make "prices"
                   [
                     { Schema.attr_name = "id"; domain = Schema.Dstring };
                     { Schema.attr_name = "amount"; domain = Schema.Dint };
                   ])
            in
            ignore
              (Relation.insert prices
                 (Tuple.make [ Value.String "m1"; Value.Int 12 ]));
            Storage.save db dir;
            let db2 = Storage.load ~lazy_load:true dir in
            Alcotest.(check int) "all pending" 2 (Database.pending_count db2);
            Alcotest.(check bool) "movies not loaded" false
              (Database.is_loaded db2 "movies");
            (* Names are known without touching any CSV. *)
            Alcotest.(check (list string)) "names visible"
              (Database.relation_names db) (Database.relation_names db2);
            (* First access forces exactly that relation. *)
            let m = Database.find db2 "movies" in
            Alcotest.(check int) "movies loaded in full"
              (Relation.cardinality (Database.find db "movies"))
              (Relation.cardinality m);
            Alcotest.(check bool) "movies now loaded" true
              (Database.is_loaded db2 "movies");
            Alcotest.(check int) "prices still pending" 1
              (Database.pending_count db2);
            (* materialize forces the rest; contents match an eager load. *)
            Database.materialize db2;
            Alcotest.(check int) "nothing pending" 0
              (Database.pending_count db2);
            Alcotest.(check int) "same tuples" (Database.total_tuples db)
              (Database.total_tuples db2)));
  ]

let stress_tests =
  [
    Alcotest.test_case "100k-tuple relation stays responsive" `Slow (fun () ->
        let r = Relation.create (Schema.string_attrs "big" [ "k"; "v" ]) in
        let t0 = Unix.gettimeofday () in
        for i = 0 to 99_999 do
          ignore
            (Relation.insert r
               (Tuple.make
                  [
                    Value.String (Printf.sprintf "k%06d" i);
                    Value.Int (i mod 97);
                  ]))
        done;
        let insert_time = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "bulk insert under 5s" true (insert_time < 5.0);
        let t1 = Unix.gettimeofday () in
        for i = 0 to 9_999 do
          let hits =
            Relation.select_eq r 0 (Value.String (Printf.sprintf "k%06d" (i * 7)))
          in
          Alcotest.(check int) "unique key" 1 (List.length hits)
        done;
        let lookup_time = Unix.gettimeofday () -. t1 in
        Alcotest.(check bool) "10k lookups under 1s" true (lookup_time < 1.0);
        Alcotest.(check int) "value index groups" 97
          (List.length (Relation.distinct_values r 1)));
  ]

let () =
  Alcotest.run "relation"
    [
      ("value", value_tests);
      ("schema", schema_tests);
      ("tuple", tuple_tests);
      ("relation", relation_tests);
      ("database", database_tests);
      ("csv", csv_tests);
      ("index", index_tests);
      ("text_table", text_table_tests);
      ("storage", storage_tests);
      ("streaming", streaming_tests);
      ("stress", stress_tests);
      ("properties", qcheck_tests);
    ]
