open Dlearn_relation
open Dlearn_constraints

let domain_to_string = function
  | Schema.Dint -> "int"
  | Schema.Dfloat -> "float"
  | Schema.Dstring -> "string"

let pattern_fits domain = function
  | Cfd.Wildcard -> true
  | Cfd.Const v -> (
      match v, domain with
      | Value.Null, _ -> true
      | Value.Int _, Schema.Dint
      | Value.Float _, Schema.Dfloat
      | Value.String _, Schema.Dstring ->
          true
      | (Value.Int _ | Value.Float _ | Value.String _), _ -> false)

(* One CFD against the catalog: DL301/DL302/DL303/DL307. *)
let check_cfd db (cfd : Cfd.t) =
  let subject = Diagnostic.Constraint cfd.Cfd.id in
  match Database.find_opt db cfd.Cfd.relation with
  | None ->
      [
        Diagnostic.error ~code:"DL301" ~subject ~witness:cfd.Cfd.relation
          (Printf.sprintf "CFD ranges over relation %s, which is not in \
                           the catalog" cfd.Cfd.relation);
      ]
  | Some relation ->
      let schema = Relation.schema relation in
      let entries = cfd.Cfd.rhs :: cfd.Cfd.lhs in
      let missing, typed =
        List.partition
          (fun (attr, _) ->
            match Schema.position schema attr with
            | (_ : int) -> false
            | exception Not_found -> true)
          entries
      in
      let missing_ds =
        List.map
          (fun (attr, _) ->
            Diagnostic.error ~code:"DL302" ~subject
              ~witness:(Printf.sprintf "%s.%s" cfd.Cfd.relation attr)
              (Printf.sprintf "CFD references attribute %s, which \
                               relation %s does not have" attr
                 cfd.Cfd.relation))
          missing
      in
      let pattern_ds =
        List.filter_map
          (fun (attr, pattern) ->
            let domain = Schema.domain schema (Schema.position schema attr) in
            if pattern_fits domain pattern then None
            else
              Some
                (Diagnostic.warning ~code:"DL303" ~subject
                   ~witness:
                     (Printf.sprintf "pattern %s at %s.%s"
                        (match pattern with
                        | Cfd.Const v -> Value.to_string v
                        | Cfd.Wildcard -> "-")
                        cfd.Cfd.relation attr)
                   (Printf.sprintf
                      "pattern constant cannot match the %s domain of \
                       %s.%s; the CFD never applies"
                      (domain_to_string domain) cfd.Cfd.relation attr)))
          typed
      in
      let empty_ds =
        if Relation.cardinality relation = 0 then
          [
            Diagnostic.hint ~code:"DL307" ~subject ~witness:cfd.Cfd.relation
              (Printf.sprintf "relation %s is empty; the CFD is vacuously \
                               satisfied" cfd.Cfd.relation);
          ]
        else []
      in
      missing_ds @ pattern_ds @ empty_ds

(* DL304: unsatisfiable CFD sets, witnessed by a minimal core. *)
let check_cfd_satisfiability cfds =
  Consistency.inconsistent_cores cfds
  |> List.map (fun core ->
         let relation =
           match core with c :: _ -> c.Cfd.relation | [] -> assert false
         in
         Diagnostic.error ~code:"DL304"
           ~subject:(Diagnostic.Relation relation)
           ~witness:(String.concat "; " (List.map Cfd.to_string core))
           (Printf.sprintf
              "the CFD set over relation %s is unsatisfiable: no \
               non-empty instance can satisfy all of %s"
              relation
              (String.concat ", " (List.map (fun c -> c.Cfd.id) core))))

(* Pattern p1 is at least as general as p2. *)
let pattern_geq p1 p2 =
  match p1, p2 with
  | Cfd.Wildcard, _ -> true
  | Cfd.Const a, Cfd.Const b -> Value.equal a b
  | Cfd.Const _, Cfd.Wildcard -> false

(* [subsumes c1 c2]: every violation of c2 is a violation of c1, so
   enforcing c1 makes c2 redundant. Sound criterion: same relation and
   right-hand side, lhs(c1) ⊆ lhs(c2) with patterns at least as
   general. *)
let subsumes (c1 : Cfd.t) (c2 : Cfd.t) =
  String.equal c1.Cfd.relation c2.Cfd.relation
  && String.equal (fst c1.Cfd.rhs) (fst c2.Cfd.rhs)
  && (match snd c1.Cfd.rhs, snd c2.Cfd.rhs with
     | Cfd.Wildcard, Cfd.Wildcard -> true
     | Cfd.Const a, Cfd.Const b -> Value.equal a b
     | (Cfd.Wildcard | Cfd.Const _), _ -> false)
  && List.for_all
       (fun (attr, p1) ->
         match List.assoc_opt attr c2.Cfd.lhs with
         | Some p2 -> pattern_geq p1 p2
         | None -> false)
       c1.Cfd.lhs

(* DL305: report each CFD subsumed by an earlier-or-distinct one; when two
   CFDs subsume each other (duplicates) only the later is reported. *)
let check_cfd_redundancy cfds =
  let arr = Array.of_list cfds in
  let n = Array.length arr in
  let ds = ref [] in
  for j = 0 to n - 1 do
    let redundant_because = ref None in
    for i = 0 to n - 1 do
      if
        !redundant_because = None && i <> j
        && subsumes arr.(i) arr.(j)
        && not (subsumes arr.(j) arr.(i) && i > j)
      then redundant_because := Some arr.(i)
    done;
    match !redundant_because with
    | Some by ->
        ds :=
          Diagnostic.warning ~code:"DL305"
            ~subject:(Diagnostic.Constraint arr.(j).Cfd.id)
            ~witness:(Printf.sprintf "subsumed by %s" (Cfd.to_string by))
            (Printf.sprintf
               "CFD %s is redundant: %s already enforces it" arr.(j).Cfd.id
               by.Cfd.id)
          :: !ds
    | None -> ()
  done;
  List.rev !ds

(* DL306: duplicate identifiers within a constraint kind. *)
let check_duplicate_ids kind ids =
  let rec go seen = function
    | [] -> []
    | id :: rest ->
        if List.mem id seen then
          Diagnostic.warning ~code:"DL306"
            ~subject:(Diagnostic.Constraint id)
            (Printf.sprintf "duplicate %s identifier %s; repair literals \
                             record constraints by id and would conflate \
                             them" kind id)
          :: go seen rest
        else go (id :: seen) rest
  in
  go [] ids

(* One MD against the catalog: DL310/DL311/DL312/DL313/DL307. *)
let check_md db (md : Md.t) =
  let subject = Diagnostic.Constraint md.Md.id in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let relation_schema rel =
    match Database.find_opt db rel with
    | None ->
        add
          (Diagnostic.error ~code:"DL310" ~subject ~witness:rel
             (Printf.sprintf "MD ranges over relation %s, which is not in \
                              the catalog" rel));
        None
    | Some relation ->
        if Relation.cardinality relation = 0 then
          add
            (Diagnostic.hint ~code:"DL307" ~subject ~witness:rel
               (Printf.sprintf "relation %s is empty; the MD is vacuously \
                                satisfied" rel));
        Some (Relation.schema relation)
  in
  let left_schema = relation_schema md.Md.left_rel in
  let right_schema = relation_schema md.Md.right_rel in
  let check_attr schema rel attr =
    match schema with
    | None -> ()
    | Some schema -> (
        match Schema.position schema attr with
        | pos ->
            let domain = Schema.domain schema pos in
            if domain <> Schema.Dstring then
              add
                (Diagnostic.error ~code:"DL312" ~subject
                   ~witness:
                     (Printf.sprintf "%s.%s is %s" rel attr
                        (domain_to_string domain))
                   (Printf.sprintf
                      "MD compares or unifies %s.%s, which is not \
                       string-typed; the similarity operator is defined \
                       on string domains"
                      rel attr))
        | exception Not_found ->
            add
              (Diagnostic.error ~code:"DL311" ~subject
                 ~witness:(Printf.sprintf "%s.%s" rel attr)
                 (Printf.sprintf "MD references attribute %s, which \
                                  relation %s does not have" attr rel)))
  in
  List.iter
    (fun (a, b) ->
      check_attr left_schema md.Md.left_rel a;
      check_attr right_schema md.Md.right_rel b)
    md.Md.compared;
  let c, d = md.Md.unified in
  check_attr left_schema md.Md.left_rel c;
  check_attr right_schema md.Md.right_rel d;
  (match md.Md.threshold_override with
  | Some t when not (t > 0.0 && t <= 1.0) ->
      add
        (Diagnostic.error ~code:"DL313" ~subject
           ~witness:(Printf.sprintf "threshold %g" t)
           "MD similarity threshold must lie in (0, 1]")
  | _ -> ());
  List.rev !ds

(* DL314: cycles of length >= 2 in the MD interaction graph. Node: MD;
   edge m -> m' when applying m modifies an attribute m' compares. *)
let check_md_interaction mds =
  let arr = Array.of_list mds in
  let n = Array.length arr in
  let outputs (m : Md.t) =
    [ (m.Md.left_rel, fst m.Md.unified); (m.Md.right_rel, snd m.Md.unified) ]
  in
  let inputs (m : Md.t) =
    List.concat_map
      (fun (a, b) -> [ (m.Md.left_rel, a); (m.Md.right_rel, b) ])
      m.Md.compared
  in
  let edge i j =
    i <> j
    && List.exists
         (fun out ->
           List.exists
             (fun inp -> fst out = fst inp && snd out = snd inp)
             (inputs arr.(j)))
         (outputs arr.(i))
  in
  (* Mutual reachability via Floyd–Warshall; components of size >= 2 are
     the interaction cycles. *)
  let reach = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      reach.(i).(j) <- edge i j
    done
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  let reported = Array.make n false in
  let ds = ref [] in
  for i = 0 to n - 1 do
    if not reported.(i) then begin
      let component =
        List.filter
          (fun j -> j = i || (reach.(i).(j) && reach.(j).(i)))
          (List.init n Fun.id)
      in
      if List.length component >= 2 then begin
        List.iter (fun j -> reported.(j) <- true) component;
        let ids = List.map (fun j -> arr.(j).Md.id) component in
        ds :=
          Diagnostic.warning ~code:"DL314"
            ~subject:(Diagnostic.Constraint (List.hd ids))
            ~witness:(String.concat " -> " (ids @ [ List.hd ids ]))
            (Printf.sprintf
               "MDs %s form an interaction cycle: applying one modifies \
                attributes another compares, so enforcement may cascade"
               (String.concat ", " ids))
          :: !ds
      end
    end
  done;
  List.rev !ds

let check db ~mds ~cfds =
  List.concat_map (check_cfd db) cfds
  @ check_cfd_satisfiability cfds
  @ check_cfd_redundancy cfds
  @ check_duplicate_ids "CFD" (List.map (fun (c : Cfd.t) -> c.Cfd.id) cfds)
  @ List.concat_map (check_md db) mds
  @ check_duplicate_ids "MD" (List.map (fun (m : Md.t) -> m.Md.id) mds)
  @ check_md_interaction mds
