type t = {
  schema : Schema.t;
  mutable tuples : Tuple.t array;
  mutable size : int;
  indexes : Index.t array;
  frozen : bool;
      (* a snapshot view: shares [tuples] and [indexes] with a live base
         that may keep appending at ids >= [size]; reads must bound every
         index probe by [size], and writes are rejected *)
}

let create schema =
  {
    schema;
    tuples = Array.make 16 [||];
    size = 0;
    indexes = Array.init (Schema.arity schema) (fun _ -> Index.create ());
    frozen = false;
  }

let schema t = t.schema
let name t = Schema.name t.schema
let cardinality t = t.size
let is_snapshot t = t.frozen

(* O(arity): the snapshot borrows the base's arrays. The base only ever
   appends (ids >= [t.size] at snapshot time), and growth replaces the
   base's own [tuples] field with a fresh array, so everything below
   [t.size] stays immutable from the snapshot's point of view. *)
let snapshot t = { t with frozen = true }

let ensure_capacity t =
  if t.size = Array.length t.tuples then begin
    let bigger = Array.make (2 * Array.length t.tuples) [||] in
    Array.blit t.tuples 0 bigger 0 t.size;
    t.tuples <- bigger
  end

let insert t tuple =
  if t.frozen then
    invalid_arg
      (Printf.sprintf "Relation.insert: %s is a frozen snapshot"
         (Schema.name t.schema));
  if Tuple.arity tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.insert: arity %d tuple into %s"
         (Tuple.arity tuple) (Schema.name t.schema));
  ensure_capacity t;
  let id = t.size in
  t.tuples.(id) <- tuple;
  t.size <- t.size + 1;
  Array.iteri (fun pos idx -> Index.add idx (Tuple.get tuple pos) id) t.indexes;
  id

let insert_all t tuples = List.iter (fun tu -> ignore (insert t tu)) tuples

let get t id =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Relation.get: id %d out of range" id);
  t.tuples.(id)

(* Snapshots share the base's indexes, which keep accumulating ids the
   base inserts after the snapshot was taken — bound every probe by the
   snapshot's own [size]. Live relations skip the filter: their indexes
   hold exactly the ids below [size]. *)
let select_eq t pos v =
  let ids = Index.lookup t.indexes.(pos) v in
  if t.frozen then List.filter (fun id -> id < t.size) ids else ids

let holds_value t pos v =
  if t.frozen then
    List.exists (fun id -> id < t.size) (Index.lookup t.indexes.(pos) v)
  else Index.mem t.indexes.(pos) v

let distinct_values t pos =
  let values = Index.distinct_values t.indexes.(pos) in
  if t.frozen then List.filter (fun v -> holds_value t pos v) values
  else values

let iter f t =
  for id = 0 to t.size - 1 do
    f id t.tuples.(id)
  done

let fold f t init =
  let acc = ref init in
  iter (fun id tu -> acc := f id tu !acc) t;
  !acc

let to_list t = List.rev (fold (fun _ tu acc -> tu :: acc) t [])

let filter p t =
  let t' = create t.schema in
  iter (fun _ tu -> if p tu then ignore (insert t' tu)) t;
  t'

let map_tuples f t =
  let t' = create t.schema in
  iter (fun _ tu -> ignore (insert t' (f tu))) t;
  t'

let contains t tuple =
  if Tuple.arity tuple <> Schema.arity t.schema then false
  else
    select_eq t 0 (Tuple.get tuple 0)
    |> List.exists (fun id -> Tuple.equal (get t id) tuple)

let copy t = map_tuples Fun.id t

(* Copy-on-write update: a fresh live relation (own arrays, own indexes)
   with tuple [id] replaced. Snapshots of the original keep seeing the old
   tuple — the versioned layer swaps the fresh relation in as the new
   head. O(cardinality), vs O(1) shared appends for inserts. *)
let with_tuple t id tuple =
  if id < 0 || id >= t.size then
    invalid_arg (Printf.sprintf "Relation.with_tuple: id %d out of range" id);
  if Tuple.arity tuple <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.with_tuple: arity %d tuple into %s"
         (Tuple.arity tuple) (Schema.name t.schema));
  let t' = create t.schema in
  iter (fun i tu -> ignore (insert t' (if i = id then tuple else tu))) t;
  t'

let pp fmt t =
  Format.fprintf fmt "@[<v>%a [%d tuples]" Schema.pp t.schema t.size;
  iter (fun _ tu -> Format.fprintf fmt "@,  %a" Tuple.pp tu) t;
  Format.fprintf fmt "@]"
