(** Coverage testing over heterogeneous data (§3.3, §4.3).

    Positive coverage follows Definition 3.4 through the efficient
    procedure of §4.3: first try θ-subsumption of the clause against the
    example's ground bottom clause directly (repair literals treated as
    atoms — sound by Theorem 4.6 and complete for MD-only clauses by
    Theorem 4.9); when CFD repair literals are present, apply the CFD
    groups on both sides and require every application of the clause to
    subsume some application of the ground clause.

    Negative coverage follows Definition 3.6: the clause covers the
    negative example when {e some} fully repaired clause of it subsumes
    {e some} fully repaired clause of the example's ground bottom clause
    (both sides repair-free, so Definition 4.4's connectivity condition is
    vacuous). Enumerations are capped by the configuration; the caps only
    ever under-approximate negative coverage. *)

type prepared = {
  clause : Dlearn_logic.Clause.t;
  cfd_apps : Dlearn_logic.Clause.t list Lazy.t;
  repairs : Dlearn_logic.Clause.t list Lazy.t;
  skeleton : Dlearn_logic.Clause.t Lazy.t;
      (** the clause's relational skeleton with repairable term occurrences
          wildcarded — matched against the example's relational part modulo
          its potential merges as a necessary condition before any repair
          enumeration runs *)
}

(** [prepare ctx c] wraps [c] with lazily computed repair enumerations so
    that scoring over many examples shares them. *)
val prepare : Context.t -> Dlearn_logic.Clause.t -> prepared

val covers_positive : Context.t -> prepared -> Dlearn_relation.Tuple.t -> bool

(** [ground_target ctx entry] is the example's ground bottom clause
    prepared for subsumption, cached in the entry. *)
val ground_target :
  Context.t -> Context.ground_entry -> Dlearn_logic.Subsumption.target

val covers_negative : Context.t -> prepared -> Dlearn_relation.Tuple.t -> bool

(** [covers_positive_cfd_split ctx p e] is the paper's §4.3 intermediate
    procedure: apply only the CFD repair groups on both sides, keep the MD
    repair literals as atoms (Theorem 4.9), and require every application
    of the clause to subsume some application of the ground clause. Kept
    for the ablation benchmark; [covers_positive] decides Definition 3.4
    over full repairs when the fast path fails. *)
val covers_positive_cfd_split :
  Context.t -> prepared -> Dlearn_relation.Tuple.t -> bool

(** [coverage ctx p ~pos ~neg] counts covered positives and negatives. *)
val coverage :
  Context.t ->
  prepared ->
  pos:Dlearn_relation.Tuple.t list ->
  neg:Dlearn_relation.Tuple.t list ->
  int * int
