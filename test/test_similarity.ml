open Dlearn_similarity

let close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %f, got %f" msg expected actual)
    true
    (Float.abs (expected -. actual) < eps)

let swg_tests =
  [
    Alcotest.test_case "identical strings score 1" `Quick (fun () ->
        close "identical" 1.0 (Smith_waterman.similarity "superbad" "superbad"));
    Alcotest.test_case "substring scores 1" `Quick (fun () ->
        close "substring" 1.0 (Smith_waterman.similarity "star wars" "star wars: episode iv"));
    Alcotest.test_case "empty scores 0" `Quick (fun () ->
        close "empty" 0.0 (Smith_waterman.similarity "" "abc"));
    Alcotest.test_case "disjoint alphabets score 0" `Quick (fun () ->
        close "disjoint" 0.0 (Smith_waterman.similarity "aaa" "bbb"));
    Alcotest.test_case "known small case" `Quick (fun () ->
        (* Best local alignment of abc/abd is "ab": raw 2.0; normalised by
           min-length 3. *)
        close "abc vs abd" (2.0 /. 3.0) (Smith_waterman.similarity "abc" "abd"));
    Alcotest.test_case "gap cheaper than mismatch here" `Quick (fun () ->
        (* ac vs abc: align a, open one gap (-0.5), then c: 1 + 1 - 0.5 = 1.5,
           normalised by 2. *)
        close "ac vs abc" 0.75 (Smith_waterman.similarity "ac" "abc"));
    Alcotest.test_case "raw score monotone in common prefix" `Quick (fun () ->
        Alcotest.(check bool) "longer common prefix scores more" true
          (Smith_waterman.raw_score "abcdef" "abcxyz"
          > Smith_waterman.raw_score "abcdef" "abxyzw"));
  ]

let length_tests =
  [
    Alcotest.test_case "ratio of lengths" `Quick (fun () ->
        close "3/6" 0.5 (Length_similarity.similarity "abc" "abcdef"));
    Alcotest.test_case "equal lengths" `Quick (fun () ->
        close "1" 1.0 (Length_similarity.similarity "abc" "xyz"));
    Alcotest.test_case "both empty" `Quick (fun () ->
        close "1" 1.0 (Length_similarity.similarity "" ""));
    Alcotest.test_case "one empty" `Quick (fun () ->
        close "0" 0.0 (Length_similarity.similarity "" "x"));
  ]

let levenshtein_tests =
  [
    Alcotest.test_case "kitten/sitting = 3" `Quick (fun () ->
        Alcotest.(check int) "distance" 3 (Levenshtein.distance "kitten" "sitting"));
    Alcotest.test_case "empty vs word" `Quick (fun () ->
        Alcotest.(check int) "distance" 4 (Levenshtein.distance "" "word"));
    Alcotest.test_case "identical" `Quick (fun () ->
        Alcotest.(check int) "distance" 0 (Levenshtein.distance "same" "same"));
    Alcotest.test_case "similarity normalised" `Quick (fun () ->
        close "1 - 3/7" (1.0 -. (3.0 /. 7.0)) (Levenshtein.similarity "kitten" "sitting"));
    Alcotest.test_case "sunday/saturday = 3" `Quick (fun () ->
        Alcotest.(check int) "distance" 3 (Levenshtein.distance "sunday" "saturday"));
    Alcotest.test_case "flaw/lawn = 2" `Quick (fun () ->
        Alcotest.(check int) "distance" 2 (Levenshtein.distance "flaw" "lawn"));
  ]

let jaro_tests =
  [
    Alcotest.test_case "martha/marhta" `Quick (fun () ->
        close ~eps:1e-4 "jaro" 0.9444 (Jaro_winkler.jaro "martha" "marhta");
        close ~eps:1e-4 "jw" 0.9611 (Jaro_winkler.similarity "martha" "marhta"));
    Alcotest.test_case "dwayne/duane" `Quick (fun () ->
        close ~eps:1e-4 "jaro" 0.8222 (Jaro_winkler.jaro "dwayne" "duane");
        close ~eps:1e-4 "jw" 0.8400 (Jaro_winkler.similarity "dwayne" "duane"));
    Alcotest.test_case "no common characters" `Quick (fun () ->
        close "0" 0.0 (Jaro_winkler.jaro "abc" "xyz"));
    Alcotest.test_case "dixon/dicksonx" `Quick (fun () ->
        (* The other classic Winkler pair: m=4, t=0 ->
           (4/5 + 4/8 + 4/4)/3 = 0.7667; prefix "di" lifts it to 0.8133. *)
        close ~eps:1e-4 "jaro" 0.7667 (Jaro_winkler.jaro "dixon" "dicksonx");
        close ~eps:1e-4 "jw" 0.8133 (Jaro_winkler.similarity "dixon" "dicksonx"));
  ]

let ngram_tests =
  [
    Alcotest.test_case "gram count with padding" `Quick (fun () ->
        (* "ab" padded to "##ab$$": 4 trigrams. *)
        Alcotest.(check int) "4 trigrams" 4 (List.length (Ngram.grams ~n:3 "ab")));
    Alcotest.test_case "empty string has no grams" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (List.length (Ngram.grams ~n:3 "")));
    Alcotest.test_case "jaccard of identical strings" `Quick (fun () ->
        close "1" 1.0 (Ngram.jaccard ~n:3 "superbad" "superbad"));
    Alcotest.test_case "jaccard is case-insensitive" `Quick (fun () ->
        close "1" 1.0 (Ngram.jaccard ~n:3 "SuperBad" "superbad"));
    Alcotest.test_case "dice >= jaccard" `Quick (fun () ->
        let a = "star wars iv" and b = "star wars: episode iv" in
        Alcotest.(check bool) "dice >= jaccard" true
          (Ngram.dice ~n:3 a b >= Ngram.jaccard ~n:3 a b));
  ]

let combined_tests =
  [
    Alcotest.test_case "paper operator is the average" `Quick (fun () ->
        let a = "star wars" and b = "star wars: episode iv - 1977" in
        close "average"
          ((Smith_waterman.similarity a b +. Length_similarity.similarity a b) /. 2.0)
          (Combined.paper a b));
    Alcotest.test_case "case-insensitive" `Quick (fun () ->
        close "1" 1.0 (Combined.paper "Superbad" "SUPERBAD"));
    Alcotest.test_case "heterogeneous titles are similar" `Quick (fun () ->
        Alcotest.(check bool) "above 0.6" true
          (Combined.paper "Superbad" "Superbad (2007)" > 0.6));
    Alcotest.test_case "unrelated titles are dissimilar" `Quick (fun () ->
        Alcotest.(check bool) "below 0.6" true
          (Combined.paper "Superbad" "The Orphanage" < 0.6));
  ]

let sim_index_tests =
  let titles =
    [
      "Star Wars: Episode IV - 1977";
      "Star Wars: Episode III - 2005";
      "Superbad (2007)";
      "Zoolander (2001)";
      "The Orphanage (2007)";
    ]
  in
  [
    Alcotest.test_case "exact value found with score 1" `Quick (fun () ->
        let idx = Sim_index.create titles in
        match Sim_index.query idx ~km:1 ~threshold:0.9 "Superbad (2007)" with
        | [ (v, s) ] ->
            Alcotest.(check string) "value" "Superbad (2007)" v;
            close "score" 1.0 s
        | other -> Alcotest.failf "expected 1 hit, got %d" (List.length other));
    Alcotest.test_case "ambiguous match returns both episodes" `Quick (fun () ->
        let idx = Sim_index.create titles in
        let hits = Sim_index.query idx ~km:5 ~threshold:0.5 "Star Wars" in
        Alcotest.(check bool) "at least 2" true (List.length hits >= 2);
        let names = List.map fst hits in
        Alcotest.(check bool) "episode IV found" true
          (List.mem "Star Wars: Episode IV - 1977" names);
        Alcotest.(check bool) "episode III found" true
          (List.mem "Star Wars: Episode III - 2005" names));
    Alcotest.test_case "km cuts the result list" `Quick (fun () ->
        let idx = Sim_index.create titles in
        let hits = Sim_index.query idx ~km:1 ~threshold:0.3 "Star Wars" in
        Alcotest.(check int) "1 hit" 1 (List.length hits));
    Alcotest.test_case "results sorted by score" `Quick (fun () ->
        let idx = Sim_index.create titles in
        let hits = Sim_index.query idx ~km:5 ~threshold:0.2 "Superbad" in
        let scores = List.map snd hits in
        Alcotest.(check bool) "descending" true
          (List.sort (fun a b -> Float.compare b a) scores = scores));
    Alcotest.test_case "blocked query equals brute force on titles" `Quick (fun () ->
        let idx = Sim_index.create titles in
        List.iter
          (fun q ->
            let a = Sim_index.query idx ~km:5 ~threshold:0.6 q in
            let b = Sim_index.query_brute idx ~km:5 ~threshold:0.6 q in
            Alcotest.(check (list (pair string (float 1e-9)))) ("query " ^ q) b a)
          [ "Star Wars"; "Superbad"; "Zoolander"; "Orphanage" ]);
    Alcotest.test_case "match_pairs links columns" `Quick (fun () ->
        let pairs =
          Sim_index.match_pairs ~km:2 ~threshold:0.5 [ "Star Wars"; "Superbad" ]
            titles
        in
        Alcotest.(check bool) "nonempty" true (List.length pairs >= 2);
        List.iter
          (fun (_, _, s) ->
            Alcotest.(check bool) "score above threshold" true (s >= 0.5))
          pairs);
    Alcotest.test_case "deduplicates stored values" `Quick (fun () ->
        let idx = Sim_index.create [ "same"; "same"; "same" ] in
        Alcotest.(check int) "1 distinct" 1 (Sim_index.size idx));
  ]

let measure_tests =
  [
    Alcotest.test_case "index honours the configured measure" `Quick (fun () ->
        (* Under Levenshtein, "abcd" vs "abcx" scores 0.75; the paper
           operator scores it differently — check the measure is actually
           threaded through the index. *)
        let values = [ "abcd" ] in
        let lev = Sim_index.create ~measure:Combined.Levenshtein values in
        let hits = Sim_index.query lev ~km:1 ~threshold:0.74 "abcx" in
        Alcotest.(check int) "levenshtein accepts at 0.74" 1 (List.length hits);
        let jac = Sim_index.create ~measure:(Combined.Ngram_jaccard 3) values in
        let hits' = Sim_index.query jac ~km:1 ~threshold:0.74 "abcx" in
        Alcotest.(check int) "trigram jaccard rejects at 0.74" 0
          (List.length hits'));
    Alcotest.test_case "measure names are distinct" `Quick (fun () ->
        let names =
          List.map Combined.measure_name
            [
              Combined.Paper; Combined.Smith_waterman; Combined.Levenshtein;
              Combined.Jaro_winkler; Combined.Ngram_jaccard 3;
            ]
        in
        Alcotest.(check int) "5 distinct" 5
          (List.length (List.sort_uniq String.compare names)));
  ]

let qcheck_tests =
  let word =
    QCheck.make
      ~print:(fun s -> s)
      QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 10))
  in
  let pair_words = QCheck.pair word word in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"swg similarity is symmetric" ~count:300 pair_words
         (fun (a, b) ->
           Float.abs (Smith_waterman.similarity a b -. Smith_waterman.similarity b a)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"swg similarity within [0,1]" ~count:300 pair_words
         (fun (a, b) ->
           let s = Smith_waterman.similarity a b in
           s >= 0.0 && s <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein symmetric" ~count:300 pair_words
         (fun (a, b) -> Levenshtein.distance a b = Levenshtein.distance b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
         (QCheck.triple word word word) (fun (a, b, c) ->
           Levenshtein.distance a c
           <= Levenshtein.distance a b + Levenshtein.distance b c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"levenshtein identity of indiscernibles" ~count:300
         pair_words (fun (a, b) -> Levenshtein.distance a b = 0 = (a = b)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"combined similarity bounded for all measures"
         ~count:200 pair_words (fun (a, b) ->
           List.for_all
             (fun m ->
               let s = Combined.similarity ~measure:m a b in
               s >= 0.0 && s <= 1.0)
             [
               Combined.Paper;
               Combined.Smith_waterman;
               Combined.Levenshtein;
               Combined.Jaro_winkler;
               Combined.Ngram_jaccard 3;
             ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"jaro-winkler >= jaro" ~count:300 pair_words
         (fun (a, b) ->
           Jaro_winkler.similarity a b >= Jaro_winkler.jaro a b -. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"swg raw score is symmetric" ~count:300 pair_words
         (fun (a, b) ->
           Float.abs (Smith_waterman.raw_score a b -. Smith_waterman.raw_score b a)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"blocked query is a subset of brute force" ~count:100
         (QCheck.pair word (QCheck.list_of_size (QCheck.Gen.int_range 1 8) word))
         (fun (q, vs) ->
           let idx = Sim_index.create vs in
           let blocked = Sim_index.query idx ~km:10 ~threshold:0.5 q in
           let brute = Sim_index.query_brute idx ~km:10 ~threshold:0.5 q in
           List.for_all (fun (v, _) -> List.mem_assoc v brute) blocked));
    (let nonempty_word =
       QCheck.make
         ~print:(fun s -> s)
         QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (1 -- 10))
     in
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make
          ~name:"blocked query equals brute force above threshold 0.9"
          ~count:200
          (QCheck.pair nonempty_word
             (QCheck.list_of_size (QCheck.Gen.int_range 1 8) nonempty_word))
          (fun (q, vs) ->
            (* At 0.9 under the paper operator, any qualifying pair is so
               close in edit structure that it must share a padded
               trigram, so n-gram blocking loses nothing and the blocked
               query is exactly the brute-force scan. (At lower
               thresholds this fails: "ab" vs "ba" scores 0.75 yet
               shares no padded trigram.) *)
            let norm l = List.sort compare l in
            let idx = Sim_index.create vs in
            let blocked = Sim_index.query idx ~km:10 ~threshold:0.9 q in
            let brute = Sim_index.query_brute idx ~km:10 ~threshold:0.9 q in
            norm blocked = norm brute)));
  ]

(* {2 Candidate dedup}

   A query sharing k grams with a stored value must reach the measure
   exactly once for that value, not k times — pinned through the
   [sim_index.measured] counter rather than timing. *)
let dedup_tests =
  let module Obs = Dlearn_obs.Obs in
  let measured = Obs.counter "sim_index.measured" in
  let candidates = Obs.counter "sim_index.candidates" in
  [
    Alcotest.test_case "value sharing many grams is measured once" `Quick
      (fun () ->
        (* "abcdefgh" yields 10 padded trigrams, every one shared with the
           identical query — yet one candidate, one measure call. *)
        let idx = Sim_index.create [ "abcdefgh" ] in
        let m0 = Obs.value measured and c0 = Obs.value candidates in
        let hits = Sim_index.query idx ~km:5 ~threshold:0.5 "abcdefgh" in
        Alcotest.(check int) "1 hit" 1 (List.length hits);
        Alcotest.(check int) "1 candidate" 1 (Obs.value candidates - c0);
        Alcotest.(check int) "1 measure call" 1 (Obs.value measured - m0));
    Alcotest.test_case "each candidate measured at most once" `Quick (fun () ->
        let values = [ "star wars"; "star trek"; "star gate"; "moonrise" ] in
        let idx = Sim_index.create values in
        let m0 = Obs.value measured and c0 = Obs.value candidates in
        ignore (Sim_index.query idx ~km:5 ~threshold:0.1 "star warp");
        let n_candidates = Obs.value candidates - c0 in
        Alcotest.(check bool)
          (Printf.sprintf "measured (%d) <= candidates (%d)"
             (Obs.value measured - m0) n_candidates)
          true
          (Obs.value measured - m0 <= n_candidates);
        Alcotest.(check bool) "candidates <= stored values" true
          (n_candidates <= List.length values));
    Alcotest.test_case "length prefilter prunes before measuring" `Quick
      (fun () ->
        let pruned = Obs.counter "sim_index.length_pruned" in
        (* A 2-char query against a 40-char value: score ceiling
           (1 + 2/40)/2 = 0.525 < 0.9, so the measure must not run. *)
        let long = String.make 40 'a' in
        let idx = Sim_index.create [ long ] in
        let m0 = Obs.value measured and p0 = Obs.value pruned in
        let hits = Sim_index.query idx ~km:5 ~threshold:0.9 "aa" in
        Alcotest.(check int) "no hits" 0 (List.length hits);
        Alcotest.(check int) "pruned once" 1 (Obs.value pruned - p0);
        Alcotest.(check int) "never measured" 0 (Obs.value measured - m0));
  ]

(* {2 Build determinism}

   The sharded build's posting content must be byte-identical whatever
   the pool size and whichever build strategy ran — the chunked path is
   forced via DLEARN_SIM_CHUNKED so the pin holds even on single-core
   hosts where the spare-parallelism rule would pick the direct path. *)
let determinism_tests =
  let module Pool = Dlearn_parallel.Pool in
  let values =
    (* Enough distinct values to cross the 4096-value chunk size and get
       a multi-shard index, with repeats to exercise sort_uniq. *)
    List.init 9000 (fun i ->
        Printf.sprintf "product %c%d model %d"
          (Char.chr (Char.code 'a' + (i mod 17)))
          (i mod 4111) (i * 31 mod 257))
  in
  let with_chunked mode f =
    let previous = Option.value ~default:"" (Sys.getenv_opt "DLEARN_SIM_CHUNKED") in
    Unix.putenv "DLEARN_SIM_CHUNKED" mode;
    Fun.protect ~finally:(fun () -> Unix.putenv "DLEARN_SIM_CHUNKED" previous) f
  in
  [
    Alcotest.test_case "parallel chunked build equals sequential direct build"
      `Quick (fun () ->
        let direct =
          with_chunked "never" (fun () ->
              Sim_index.postings_digest (Sim_index.create ~jobs:1 values))
        in
        (* Force real fan-out: chunked strategy and a pool that never
           inlines batches. *)
        Pool.set_cost_model ~fanout_threshold:0 ();
        let chunked =
          Fun.protect ~finally:Pool.reset_cost_model (fun () ->
              with_chunked "always" (fun () ->
                  Sim_index.postings_digest (Sim_index.create ~jobs:8 values)))
        in
        Alcotest.(check string) "digest" direct chunked);
    Alcotest.test_case "digest is stable across jobs 1/4/8" `Quick (fun () ->
        let digest jobs =
          Sim_index.postings_digest (Sim_index.create ~jobs values)
        in
        let d1 = digest 1 in
        Alcotest.(check string) "jobs 4" d1 (digest 4);
        Alcotest.(check string) "jobs 8" d1 (digest 8));
    Alcotest.test_case "chunked and direct answer queries identically" `Quick
      (fun () ->
        let direct = with_chunked "never" (fun () -> Sim_index.create values) in
        let chunked =
          with_chunked "always" (fun () -> Sim_index.create values)
        in
        List.iter
          (fun q ->
            Alcotest.(check (list (pair string (float 1e-9))))
              ("query " ^ q)
              (Sim_index.query direct ~km:5 ~threshold:0.6 q)
              (Sim_index.query chunked ~km:5 ~threshold:0.6 q))
          [ "product a100 model 7"; "product q4000"; "unrelated string" ]);
  ]

(* {2 Blocked = brute across thresholds and pool sizes}

   Exactness argument per configuration:
   - n=1, θ ∈ {0.6, 0.8}: a paper-operator score ≥ θ > 0.5 forces
     SWG > 0, i.e. at least one aligned character pair — so query and
     value share a character, which with unigram blocking means the
     value is always a candidate.
   - n=3, θ = 0.9: any qualifying pair is close enough in edit
     structure to share a padded trigram (at lower thresholds this
     fails: "ab" vs "ba" scores 0.75 sharing no trigram). *)
let scale_qcheck_tests =
  let nonempty_word =
    QCheck.make
      ~print:(fun s -> s)
      QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (1 -- 10))
  in
  let gen =
    QCheck.pair nonempty_word
      (QCheck.list_of_size (QCheck.Gen.int_range 1 12) nonempty_word)
  in
  let norm l = List.sort compare l in
  List.concat_map
    (fun (threshold, n) ->
      List.map
        (fun jobs ->
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make
               ~name:
                 (Printf.sprintf
                    "blocked = brute at threshold %.1f, n=%d, jobs=%d" threshold
                    n jobs)
               ~count:150 gen
               (fun (q, vs) ->
                 let idx = Sim_index.create ~n ~jobs vs in
                 norm (Sim_index.query idx ~km:10 ~threshold q)
                 = norm (Sim_index.query_brute idx ~km:10 ~threshold q))))
        [ 1; 4; 8 ])
    [ (0.6, 1); (0.8, 1); (0.9, 3) ]

let () =
  Alcotest.run "similarity"
    [
      ("smith_waterman", swg_tests);
      ("length", length_tests);
      ("levenshtein", levenshtein_tests);
      ("jaro_winkler", jaro_tests);
      ("ngram", ngram_tests);
      ("combined", combined_tests);
      ("sim_index", sim_index_tests);
      ("measures", measure_tests);
      ("properties", qcheck_tests);
      ("dedup", dedup_tests);
      ("determinism", determinism_tests);
      ("scale_properties", scale_qcheck_tests);
    ]
