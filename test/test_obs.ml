(* Unit tests for the observability layer: registry semantics, sharded
   counters under domain fan-out, span timing/exception behaviour, and
   the Chrome trace-event export. *)

module Obs = Dlearn_obs.Obs

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let registry_tests =
  [
    Alcotest.test_case "counter add/value/reset" `Quick (fun () ->
        let c = Obs.counter "test.registry.counter" in
        Obs.reset_counter c;
        Obs.incr c;
        Obs.add c 41;
        Alcotest.(check int) "value" 42 (Obs.value c);
        Obs.reset_counter c;
        Alcotest.(check int) "after reset" 0 (Obs.value c));
    Alcotest.test_case "counter is get-or-create" `Quick (fun () ->
        let a = Obs.counter "test.registry.shared" in
        Obs.reset_counter a;
        Obs.add a 7;
        let b = Obs.counter "test.registry.shared" in
        Alcotest.(check int) "same metric" 7 (Obs.value b));
    Alcotest.test_case "kind mismatch rejected" `Quick (fun () ->
        let _ = Obs.counter "test.registry.kinded" in
        Alcotest.check_raises "gauge over counter"
          (Invalid_argument
             "Obs: metric test.registry.kinded already registered with \
              another kind") (fun () ->
            ignore (Obs.gauge "test.registry.kinded")));
    Alcotest.test_case "gauge last write wins" `Quick (fun () ->
        let g = Obs.gauge "test.registry.gauge" in
        Obs.set_gauge g 1.5;
        Obs.set_gauge g 2.5;
        Alcotest.(check (float 1e-9)) "value" 2.5 (Obs.gauge_value g));
    Alcotest.test_case "histogram snapshot" `Quick (fun () ->
        let h = Obs.histogram "test.registry.hist" in
        List.iter (Obs.observe_ns h) [ 10; 30; 20 ];
        let s = Obs.histogram_snapshot h in
        Alcotest.(check int) "count" 3 s.Obs.count;
        Alcotest.(check int) "total" 60 s.Obs.total_ns;
        Alcotest.(check int) "min" 10 s.Obs.min_ns;
        Alcotest.(check int) "max" 30 s.Obs.max_ns);
    Alcotest.test_case "empty histogram snapshot is all zero" `Quick (fun () ->
        let h = Obs.histogram "test.registry.hist_empty" in
        let s = Obs.histogram_snapshot h in
        Alcotest.(check int) "count" 0 s.Obs.count;
        Alcotest.(check int) "min" 0 s.Obs.min_ns;
        Alcotest.(check int) "max" 0 s.Obs.max_ns);
  ]

let sharding_tests =
  [
    Alcotest.test_case "counter merges across domains" `Quick (fun () ->
        let c = Obs.counter "test.shard.counter" in
        Obs.reset_counter c;
        let per_domain = 10_000 and domains = 4 in
        let ds =
          List.init domains (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to per_domain do
                    Obs.incr c
                  done))
        in
        List.iter Domain.join ds;
        Alcotest.(check int) "merged" (domains * per_domain) (Obs.value c));
    Alcotest.test_case "histogram merges across domains" `Quick (fun () ->
        let h = Obs.histogram "test.shard.hist" in
        let ds =
          List.init 3 (fun i ->
              Domain.spawn (fun () -> Obs.observe_ns h ((i + 1) * 100)))
        in
        List.iter Domain.join ds;
        let s = Obs.histogram_snapshot h in
        Alcotest.(check int) "count" 3 s.Obs.count;
        Alcotest.(check int) "total" 600 s.Obs.total_ns;
        Alcotest.(check int) "min" 100 s.Obs.min_ns;
        Alcotest.(check int) "max" 300 s.Obs.max_ns);
  ]

exception Boom

(* Spans only do work while active (metrics on or recording); these
   tests switch metrics on explicitly and restore the default-off state
   afterwards. *)
let with_metrics f =
  Obs.set_metrics true;
  Fun.protect ~finally:(fun () -> Obs.set_metrics false) f

let span_tests =
  [
    Alcotest.test_case "span returns the result and feeds the histogram"
      `Quick (fun () ->
        with_metrics (fun () ->
            let before =
              (Obs.histogram_snapshot (Obs.histogram "test.span.ok")).Obs.count
            in
            let v = Obs.span "test.span.ok" (fun () -> 1 + 1) in
            Alcotest.(check int) "result" 2 v;
            let s = Obs.histogram_snapshot (Obs.histogram "test.span.ok") in
            Alcotest.(check int) "observed once" (before + 1) s.Obs.count));
    Alcotest.test_case "span re-raises and still records" `Quick (fun () ->
        with_metrics (fun () ->
            (try ignore (Obs.span "test.span.raises" (fun () -> raise Boom))
             with Boom -> ());
            let s =
              Obs.histogram_snapshot (Obs.histogram "test.span.raises")
            in
            Alcotest.(check int) "observed" 1 s.Obs.count));
    Alcotest.test_case "span short-circuits when no recorder is active"
      `Quick (fun () ->
        Alcotest.(check bool) "metrics off" false (Obs.metrics_enabled ());
        Alcotest.(check bool) "not recording" false (Obs.recording ());
        Alcotest.(check bool) "inactive" false (Obs.active ());
        let v = Obs.span "test.span.inactive" (fun () -> 40 + 2) in
        Alcotest.(check int) "result still computed" 42 v;
        let s = Obs.histogram_snapshot (Obs.histogram "test.span.inactive") in
        Alcotest.(check int) "histogram untouched" 0 s.Obs.count;
        with_metrics (fun () ->
            Alcotest.(check bool) "metrics activate spans" true (Obs.active ());
            ignore (Obs.span "test.span.inactive" (fun () -> 0)));
        let s = Obs.histogram_snapshot (Obs.histogram "test.span.inactive") in
        Alcotest.(check int) "observed once active" 1 s.Obs.count);
    Alcotest.test_case "now_ns is monotone enough to time spans" `Quick
      (fun () ->
        let a = Obs.now_ns () in
        let b = Obs.now_ns () in
        Alcotest.(check bool) "non-decreasing" true (b >= a));
  ]

let trace_tests =
  [
    Alcotest.test_case "events only recorded while recording" `Quick
      (fun () ->
        let path = Filename.temp_file "dlearn_trace" ".json" in
        Obs.stop_recording ();
        ignore (Obs.span "test.trace.before" (fun () -> ()));
        Obs.start_recording ();
        ignore (Obs.span "test.trace.during" (fun () -> ()));
        Obs.stop_recording ();
        ignore (Obs.span "test.trace.after" (fun () -> ()));
        Obs.write_trace path;
        let s = read_file path in
        Sys.remove path;
        Alcotest.(check bool)
          "during present" true
          (contains ~sub:"test.trace.during" s);
        Alcotest.(check bool)
          "before absent" false
          (contains ~sub:"test.trace.before" s);
        Alcotest.(check bool)
          "after absent" false
          (contains ~sub:"test.trace.after" s));
    Alcotest.test_case "trace JSON carries the Chrome event fields" `Quick
      (fun () ->
        let path = Filename.temp_file "dlearn_trace" ".json" in
        Obs.start_recording ();
        ignore
          (Obs.span "test.trace.fields"
             ~args:[ ("k", "v\"quoted\"") ]
             (fun () -> ()));
        Obs.emit_event ~name:"test.trace.manual" ~start_ns:(Obs.now_ns ())
          ~dur_ns:5_000 ();
        Obs.stop_recording ();
        Obs.write_trace path;
        let s = read_file path in
        Sys.remove path;
        List.iter
          (fun sub ->
            Alcotest.(check bool) (Printf.sprintf "has %s" sub) true
              (contains ~sub s))
          [
            "\"traceEvents\"";
            "\"ph\":\"X\"";
            "\"ph\":\"M\"";
            "\"pid\":";
            "\"tid\":";
            "\"ts\":";
            "\"dur\":";
            "test.trace.fields";
            "test.trace.manual";
            "\\\"quoted\\\"";
          ]);
    Alcotest.test_case "emit_event is a no-op when idle" `Quick (fun () ->
        let path = Filename.temp_file "dlearn_trace" ".json" in
        Obs.start_recording ();
        Obs.stop_recording ();
        (* drop anything a prior test left, then emit while idle *)
        Obs.start_recording ();
        Obs.stop_recording ();
        Obs.emit_event ~name:"test.trace.idle" ~start_ns:0 ~dur_ns:1 ();
        Obs.write_trace path;
        let s = read_file path in
        Sys.remove path;
        Alcotest.(check bool)
          "idle event absent" false
          (contains ~sub:"test.trace.idle" s));
  ]

let report_tests =
  [
    Alcotest.test_case "report mentions active metrics" `Quick (fun () ->
        with_metrics (fun () ->
            let c = Obs.counter "test.report.counter" in
            Obs.reset_counter c;
            Obs.add c 5;
            ignore (Obs.span "test.report.span" (fun () -> ()));
            let r = Obs.report () in
            Alcotest.(check bool) "counter" true
              (contains ~sub:"test.report.counter" r);
            Alcotest.(check bool) "span" true
              (contains ~sub:"test.report.span" r)));
    Alcotest.test_case "report_json is shaped" `Quick (fun () ->
        let c = Obs.counter "test.report.json" in
        Obs.reset_counter c;
        Obs.incr c;
        let j = Obs.report_json () in
        List.iter
          (fun sub ->
            Alcotest.(check bool) (Printf.sprintf "has %s" sub) true
              (contains ~sub j))
          [ "\"spans\""; "\"counters\""; "\"gauges\""; "test.report.json" ]);
  ]

let () =
  Alcotest.run "dlearn-obs"
    [
      ("registry", registry_tests);
      ("sharding", sharding_tests);
      ("spans", span_tests);
      ("trace", trace_tests);
      ("report", report_tests);
    ]
