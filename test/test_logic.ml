open Dlearn_logic

let v = Term.var
let s = Term.str
let rel = Literal.rel

(* An MD repair group as bottom-clause construction emits it: both sides of
   the similarity match [x ≈ y] are replaced simultaneously, and firing
   consumes the similarity literals that mention the replaced terms. *)
let md_group ~md ~group ~sims_of_left ~sims_of_right (x, vx) (y, vy) cond =
  [
    Literal.Repair
      {
        origin = Literal.From_md md;
        group;
        cond;
        subject = x;
        replacement = vx;
        drops = sims_of_left;
      };
    Literal.Repair
      {
        origin = Literal.From_md md;
        group;
        cond;
        subject = y;
        replacement = vy;
        drops = sims_of_right;
      };
    Literal.Eq (vx, vy);
  ]

(* Example 3.2 of the paper. *)
let example_3_2 () =
  let x = v "x" and y = v "y" and t = v "t" and z = v "z" in
  let vx = v "vx" and vt = v "vt" in
  let sim = Literal.Sim (x, t) in
  Clause.make
    ~head:(rel "highGrossing" [ x ])
    ([
       rel "movies" [ y; t; z ];
       rel "mov2genres" [ y; s "comedy" ];
       rel "highBudgetMovies" [ x ];
       sim;
     ]
    @ md_group ~md:"s1" ~group:0 ~sims_of_left:[ sim ] ~sims_of_right:[ sim ]
        (x, vx) (t, vt)
        [ Cond.Csim (x, t) ])

(* Example 3.3 of the paper: two MDs both matching the head variable. *)
let example_3_3 () =
  let x = v "x" and y = v "y" and z = v "z" in
  let vx = v "vx" and vy = v "vy" and ux = v "ux" and vz = v "vz" in
  let sim_xy = Literal.Sim (x, y) and sim_xz = Literal.Sim (x, z) in
  Clause.make
    ~head:(rel "T" [ x ])
    ([ rel "R" [ y ]; sim_xy ]
    @ md_group ~md:"m1" ~group:0 ~sims_of_left:[ sim_xy; sim_xz ]
        ~sims_of_right:[ sim_xy ] (x, vx) (y, vy)
        [ Cond.Csim (x, y) ]
    @ [ rel "S" [ z ]; sim_xz ]
    @ md_group ~md:"m2" ~group:1 ~sims_of_left:[ sim_xy; sim_xz ]
        ~sims_of_right:[ sim_xz ] (x, ux) (z, vz)
        [ Cond.Csim (x, z) ])

let clause_equal_mod_order a b =
  Clause.equal (Clause.canonical a) (Clause.canonical b)

let contains_clause cs c = List.exists (clause_equal_mod_order c) cs

let clause_tests =
  [
    Alcotest.test_case "head must be a schema atom" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Clause.make ~head:(Literal.Eq (v "x", v "y")) []);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "head_connected drops disconnected literals" `Quick
      (fun () ->
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "x"; v "y" ]; rel "S" [ v "z"; v "w" ] ]
        in
        let c' = Clause.head_connected c in
        Alcotest.(check int) "one body literal" 1 (Clause.body_size c'));
    Alcotest.test_case "head_connected keeps transitive connections" `Quick
      (fun () ->
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "x"; v "y" ]; rel "S" [ v "y"; v "z" ] ]
        in
        Alcotest.(check int) "both kept" 2
          (Clause.body_size (Clause.head_connected c)));
    Alcotest.test_case "head_connected drops repairs of dropped literals" `Quick
      (fun () ->
        let repair =
          Literal.Repair
            {
              origin = Literal.From_md "m";
              group = 0;
              cond = [];
              subject = v "z";
              replacement = v "vz";
              drops = [];
            }
        in
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "x"; v "y" ]; rel "S" [ v "z"; v "w" ]; repair ]
        in
        let c' = Clause.head_connected c in
        Alcotest.(check int) "repair gone too" 1 (Clause.body_size c'));
    Alcotest.test_case "remove_dangling_restrictions" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [
              rel "R" [ v "x"; v "y" ];
              Literal.Eq (v "y", v "x");
              Literal.Eq (v "u", v "w");
              Literal.Sim (v "x", v "u");
            ]
        in
        let c' = Clause.remove_dangling_restrictions c in
        Alcotest.(check int) "only anchored restriction kept" 2
          (Clause.body_size c'));
    Alcotest.test_case "vars collects head and body" `Quick (fun () ->
        let c = example_3_2 () in
        Alcotest.(check bool) "x present" true (List.mem "x" (Clause.vars c));
        Alcotest.(check bool) "vt present" true (List.mem "vt" (Clause.vars c)));
    Alcotest.test_case "canonical deduplicates" `Quick (fun () ->
        let l = rel "R" [ v "x" ] in
        let c = Clause.make ~head:(rel "T" [ v "x" ]) [ l; l ] in
        Alcotest.(check int) "dedup" 1 (Clause.body_size (Clause.canonical c)));
  ]

let env_tests =
  [
    Alcotest.test_case "equality closes over chains" `Quick (fun () ->
        let env =
          Clause_env.of_body [ Literal.Eq (v "x", v "y"); Literal.Eq (v "y", v "z") ]
        in
        Alcotest.(check bool) "x = z" true (Clause_env.eq env (v "x") (v "z")));
    Alcotest.test_case "equal constants are equal" `Quick (fun () ->
        let env = Clause_env.of_body [] in
        Alcotest.(check bool) "a = a" true (Clause_env.eq env (s "a") (s "a"));
        Alcotest.(check bool) "a != b" true (Clause_env.neq env (s "a") (s "b")));
    Alcotest.test_case "similarity modulo equality" `Quick (fun () ->
        let env =
          Clause_env.of_body
            [ Literal.Sim (v "x", v "y"); Literal.Eq (v "y", v "z") ]
        in
        Alcotest.(check bool) "x ~ z" true (Clause_env.sim env (v "x") (v "z")));
    Alcotest.test_case "similarity is reflexive" `Quick (fun () ->
        let env = Clause_env.of_body [] in
        Alcotest.(check bool) "x ~ x" true (Clause_env.sim env (v "x") (v "x")));
    Alcotest.test_case "neq is the negation of eq" `Quick (fun () ->
        let env = Clause_env.of_body [ Literal.Eq (v "x", v "y") ] in
        Alcotest.(check bool) "x != y is false" false
          (Clause_env.neq env (v "x") (v "y")));
    Alcotest.test_case "cond evaluation" `Quick (fun () ->
        let env = Clause_env.of_body [ Literal.Sim (v "x", v "t") ] in
        Alcotest.(check bool) "sim cond holds" true
          (Clause_env.eval_cond env [ Cond.Csim (v "x", v "t") ]);
        Alcotest.(check bool) "conjunction with failing eq" false
          (Clause_env.eval_cond env
             [ Cond.Csim (v "x", v "t"); Cond.Ceq (v "x", v "t") ]));
  ]

let substitution_tests =
  [
    Alcotest.test_case "bind rejects conflicts" `Quick (fun () ->
        let th = Substitution.singleton "x" (s "a") in
        Alcotest.(check bool) "same binding ok" true
          (Substitution.bind th "x" (s "a") <> None);
        Alcotest.(check bool) "conflict rejected" true
          (Substitution.bind th "x" (s "b") = None));
    Alcotest.test_case "apply_clause rewrites terms" `Quick (fun () ->
        let th = Substitution.of_list [ ("x", s "a"); ("y", s "b") ] in
        let c =
          Clause.make ~head:(rel "T" [ v "x" ]) [ rel "R" [ v "x"; v "y" ] ]
        in
        let c' = Substitution.apply_clause th c in
        Alcotest.(check bool) "ground now" true
          (Clause.vars c' = []));
  ]

let ground_d () =
  Clause.make
    ~head:(rel "highGrossing" [ s "m1" ])
    [
      rel "movies" [ s "m1"; s "Superbad (2007)"; s "2007" ];
      rel "mov2genres" [ s "m1"; s "comedy" ];
      rel "mov2countries" [ s "m1"; s "c1" ];
    ]

let subsumption_tests =
  [
    Alcotest.test_case "paper example: generalisation subsumes" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "highGrossing" [ v "x" ])
            [ rel "movies" [ v "x"; v "y"; v "z" ] ]
        in
        Alcotest.(check bool) "subsumes" true (Subsumption.subsumes_bool c (ground_d ())));
    Alcotest.test_case "missing predicate blocks subsumption" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "highGrossing" [ v "x" ])
            [ rel "mov2releasedate" [ v "x"; s "May"; v "u" ] ]
        in
        Alcotest.(check bool) "not subsumed" false
          (Subsumption.subsumes_bool c (ground_d ())));
    Alcotest.test_case "constant mismatch blocks subsumption" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "highGrossing" [ v "x" ])
            [ rel "mov2genres" [ v "y"; s "drama" ] ]
        in
        Alcotest.(check bool) "not subsumed" false
          (Subsumption.subsumes_bool c (ground_d ())));
    Alcotest.test_case "head must unify" `Quick (fun () ->
        let c = Clause.make ~head:(rel "otherTarget" [ v "x" ]) [] in
        Alcotest.(check bool) "not subsumed" false
          (Subsumption.subsumes_bool c (ground_d ())));
    Alcotest.test_case "shared variable forces join" `Quick (fun () ->
        (* movies and mov2genres must join on the id in C, and do in D. *)
        let c =
          Clause.make
            ~head:(rel "highGrossing" [ v "x" ])
            [ rel "movies" [ v "y"; v "t"; v "z" ]; rel "mov2genres" [ v "y"; s "comedy" ] ]
        in
        Alcotest.(check bool) "subsumed" true (Subsumption.subsumes_bool c (ground_d ())));
    Alcotest.test_case "equality literal satisfied through bindings" `Quick
      (fun () ->
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [
              rel "R" [ v "x"; v "y" ];
              rel "S" [ v "x"; v "z" ];
              Literal.Eq (v "y", v "z");
            ]
        in
        let d_good =
          Clause.make
            ~head:(rel "T" [ s "a" ])
            [ rel "R" [ s "a"; s "b" ]; rel "S" [ s "a"; s "b" ] ]
        in
        let d_bad =
          Clause.make
            ~head:(rel "T" [ s "a" ])
            [ rel "R" [ s "a"; s "b" ]; rel "S" [ s "a"; s "c" ] ]
        in
        Alcotest.(check bool) "good" true (Subsumption.subsumes_bool c d_good);
        Alcotest.(check bool) "bad" false (Subsumption.subsumes_bool c d_bad));
    Alcotest.test_case "similarity literal needs support in D" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "y" ]; Literal.Sim (v "x", v "y") ]
        in
        let d_with =
          Clause.make
            ~head:(rel "T" [ s "a" ])
            [ rel "R" [ s "b" ]; Literal.Sim (s "a", s "b") ]
        in
        let d_without =
          Clause.make ~head:(rel "T" [ s "a" ]) [ rel "R" [ s "b" ] ]
        in
        Alcotest.(check bool) "with sim" true (Subsumption.subsumes_bool c d_with);
        Alcotest.(check bool) "without sim" false
          (Subsumption.subsumes_bool c d_without));
    Alcotest.test_case "repair connectivity (Def 4.4) enforced" `Quick (fun () ->
        let vab = s "v{a|b}" in
        let d =
          Clause.make
            ~head:(rel "T" [ s "a" ])
            [
              rel "R" [ s "b" ];
              Literal.Sim (s "a", s "b");
              Literal.Repair
                {
                  origin = Literal.From_md "m1";
                  group = 0;
                  cond = [ Cond.Csim (s "a", s "b") ];
                  subject = s "a";
                  replacement = vab;
                  drops = [ Literal.Sim (s "a", s "b") ];
                };
              Literal.Repair
                {
                  origin = Literal.From_md "m1";
                  group = 0;
                  cond = [ Cond.Csim (s "a", s "b") ];
                  subject = s "b";
                  replacement = vab;
                  drops = [ Literal.Sim (s "a", s "b") ];
                };
            ]
        in
        let c_without =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "y" ]; Literal.Sim (v "x", v "y") ]
        in
        Alcotest.(check bool) "fails without matching repairs" false
          (Subsumption.subsumes_bool c_without d);
        Alcotest.(check bool) "passes with connectivity disabled" true
          (Subsumption.subsumes_bool ~repair_connectivity:false c_without d);
        let sim = Literal.Sim (v "x", v "y") in
        let c_with =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            ([ rel "R" [ v "y" ]; sim ]
            @ md_group ~md:"m1" ~group:0 ~sims_of_left:[ sim ]
                ~sims_of_right:[ sim ]
                (v "x", v "vx")
                (v "y", v "vy")
                [ Cond.Csim (v "x", v "y") ])
        in
        Alcotest.(check bool) "succeeds with matching repairs" true
          (Subsumption.subsumes_bool c_with d));
    Alcotest.test_case "first-match witness follows body order" `Quick
      (fun () ->
        (* Subsumption.prepare buckets the target's literals by predicate
           (and repair origin) in body order, so the backtracking search
           tries the earlier literal first and the witness substitution is
           deterministic. Pins the candidate-enumeration order that the
           cons-then-reverse accumulation in [prepare] produces. *)
        let c =
          Clause.make ~head:(rel "q" [ v "h" ]) [ rel "p" [ v "x" ] ]
        in
        let d =
          Clause.make ~head:(rel "q" [ s "a" ]) [ rel "p" [ s "b" ]; rel "p" [ s "c" ] ]
        in
        (match Subsumption.subsumes_target c (Subsumption.prepare d) with
        | Subsumption.Subsumed theta ->
            Alcotest.(check bool) "x binds the first p literal" true
              (Substitution.find theta "x" = Some (s "b"))
        | _ -> Alcotest.fail "expected subsumption");
        (* Same order through repair-atom buckets. *)
        let mk subject replacement =
          Literal.Repair
            {
              origin = Literal.From_md "m";
              group = 0;
              cond = [];
              subject;
              replacement;
              drops = [];
            }
        in
        let c =
          Clause.make ~head:(rel "q" [ v "h" ]) [ mk (v "u") (v "r") ]
        in
        let d =
          Clause.make
            ~head:(rel "q" [ s "a" ])
            [ mk (s "b") (s "vb"); mk (s "c") (s "vc") ]
        in
        match
          Subsumption.subsumes_target ~repair_connectivity:false c
            (Subsumption.prepare d)
        with
        | Subsumption.Subsumed theta ->
            Alcotest.(check bool) "u binds the first repair literal" true
              (Substitution.find theta "u" = Some (s "b")
              && Substitution.find theta "r" = Some (s "vb"))
        | _ -> Alcotest.fail "expected subsumption over repair atoms");
    Alcotest.test_case "budget exhaustion is reported" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "a"; v "b" ]; rel "R" [ v "c"; v "d" ] ]
        in
        let body =
          List.init 10 (fun i ->
              rel "R" [ s (string_of_int i); s (string_of_int (i + 1)) ])
        in
        let d = Clause.make ~head:(rel "T" [ s "0" ]) body in
        Alcotest.(check bool) "exhausted" true
          (Subsumption.subsumes ~budget:3 c d = Subsumption.Budget_exhausted));
    Alcotest.test_case "duplicate shared body literal expands twice" `Quick
      (fun () ->
        (* Regression: component solving used to drop EVERY physically
           shared occurrence of the selected literal, so a duplicated body
           literal cost one candidate expansion instead of two. Pin the
           budget spend: with 10 candidate facts per occurrence, a budget
           of 15 admits only the first expansion and must exhaust (both
           engines charge 10 per enumerated bucket), while 100 suffices to
           subsume. The buggy search returned Subsumed within 15. *)
        let l = rel "p" [ v "x"; v "y" ] in
        let c = Clause.make ~head:(rel "T" [ v "h" ]) [ l; l ] in
        let body =
          List.init 10 (fun i ->
              rel "p" [ s (string_of_int i); s (string_of_int (i + 1)) ])
        in
        let d = Clause.make ~head:(rel "T" [ s "k" ]) body in
        List.iter
          (fun engine ->
            let name = Subsumption.engine_name engine in
            Alcotest.(check bool)
              (name ^ ": budget 15 exhausts on the second occurrence") true
              (Subsumption.subsumes ~engine ~budget:15 c d
              = Subsumption.Budget_exhausted);
            Alcotest.(check bool)
              (name ^ ": budget 100 subsumes") true
              (match Subsumption.subsumes ~engine ~budget:100 c d with
              | Subsumption.Subsumed _ -> true
              | _ -> false))
          [ `Csp; `Backtrack ]);
    Alcotest.test_case "clause subsumes itself (with repairs)" `Quick (fun () ->
        let c = example_3_3 () in
        Alcotest.(check bool) "reflexive" true (Subsumption.subsumes_bool c c));
    Alcotest.test_case "connectivity failure backtracks into the search"
      `Quick (fun () ->
        (* Found by the four-engine differential (qcheck seed 6287191):
           C's only body atom maps onto p("a","d") first — an image the
           repair-connectivity condition rejects, because "d" is
           attached to an unmapped repair — but mapping onto p("e",mx)
           instead satisfies everything. The decomposed engines used to
           post-filter connectivity on their first witness and answer
           Not_subsumed; the condition must backtrack the search. *)
        let c =
          Clause.make
            ~head:(rel "t" [ v "my" ])
            [ Literal.Neq (v "mz", v "mx"); rel "p" [ v "mz"; v "mx" ] ]
        in
        let d =
          let sim = Literal.Sim (s "d", s "b") in
          let repair subject replacement =
            Literal.Repair
              {
                origin = Literal.From_md "gm";
                group = 9;
                cond = [ Cond.Csim (s "d", s "b") ];
                subject;
                replacement;
                drops = [ sim ];
              }
          in
          Clause.make
            ~head:(rel "t" [ v "mx" ])
            [
              rel "p" [ s "a"; s "d" ];
              rel "p" [ s "e"; v "mx" ];
              Literal.Neq (s "d", s "e");
              Literal.Eq (s "e", s "a");
              rel "p" [ v "my"; s "a" ];
              sim;
              repair (s "d") (v "gvx");
              repair (s "b") (v "gvy");
              Literal.Eq (v "gvx", v "gvy");
            ]
        in
        List.iter
          (fun engine ->
            let name = Subsumption.engine_name engine in
            Alcotest.(check bool)
              (name ^ ": subsumed despite first-witness rejection") true
              (match
                 Subsumption.subsumes ~engine ~repair_connectivity:true c d
               with
              | Subsumption.Subsumed _ -> true
              | _ -> false))
          [ `Csp; `Backtrack; `Sat ];
        Alcotest.(check bool) "naive agrees" true
          (match Subsumption.subsumes_naive ~repair_connectivity:true c d with
          | Subsumption.Subsumed _ -> true
          | _ -> false));
    Alcotest.test_case "equivalence modulo body order" `Quick (fun () ->
        let c1 =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "x"; v "y" ]; rel "S" [ v "y" ] ]
        in
        let c2 =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "S" [ v "y" ]; rel "R" [ v "x"; v "y" ] ]
        in
        Alcotest.(check bool) "equivalent" true (Subsumption.equivalent c1 c2));
    Alcotest.test_case "subsumption is not symmetric" `Quick (fun () ->
        let general =
          Clause.make ~head:(rel "T" [ v "x" ]) [ rel "R" [ v "x"; v "y" ] ]
        in
        let specific =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [ rel "R" [ v "x"; v "y" ]; rel "S" [ v "y" ] ]
        in
        Alcotest.(check bool) "general subsumes specific" true
          (Subsumption.subsumes_bool general specific);
        Alcotest.(check bool) "specific does not subsume general" false
          (Subsumption.subsumes_bool specific general));
  ]

let repair_tests =
  [
    Alcotest.test_case "example 3.2: one repaired clause" `Quick (fun () ->
        let repaired = Clause_repair.repaired_clauses (example_3_2 ()) in
        Alcotest.(check int) "1 repair" 1 (List.length repaired);
        let expected =
          Clause.make
            ~head:(rel "highGrossing" [ v "vx" ])
            [
              rel "movies" [ v "y"; v "vt"; v "z" ];
              rel "mov2genres" [ v "y"; s "comedy" ];
              rel "highBudgetMovies" [ v "vx" ];
              Literal.Eq (v "vx", v "vt");
            ]
        in
        Alcotest.(check bool) "matches paper" true
          (contains_clause repaired expected));
    Alcotest.test_case "example 3.3: two repaired clauses" `Quick (fun () ->
        let repaired = Clause_repair.repaired_clauses (example_3_3 ()) in
        Alcotest.(check int) "2 repairs" 2 (List.length repaired);
        let h1 =
          Clause.make
            ~head:(rel "T" [ v "vx" ])
            [ rel "R" [ v "vy" ]; Literal.Eq (v "vx", v "vy"); rel "S" [ v "z" ] ]
        in
        let h2 =
          Clause.make
            ~head:(rel "T" [ v "ux" ])
            [ rel "R" [ v "y" ]; rel "S" [ v "vz" ]; Literal.Eq (v "ux", v "vz") ]
        in
        Alcotest.(check bool) "H'1 produced" true (contains_clause repaired h1);
        Alcotest.(check bool) "H'2 produced" true (contains_clause repaired h2));
    Alcotest.test_case "repair-free clause repairs to itself" `Quick (fun () ->
        let c =
          Clause.make ~head:(rel "T" [ v "x" ]) [ rel "R" [ v "x"; v "y" ] ]
        in
        match Clause_repair.repaired_clauses c with
        | [ c' ] -> Alcotest.(check bool) "same" true (Clause.equal c c')
        | other -> Alcotest.failf "expected 1, got %d" (List.length other));
    Alcotest.test_case "md repair with false condition just disappears" `Quick
      (fun () ->
        (* No similarity literal in the clause: the condition x ~ t fails. *)
        let x = v "x" and t = v "t" in
        let c =
          Clause.make
            ~head:(rel "T" [ x ])
            ([ rel "R" [ t ] ]
            @ md_group ~md:"m" ~group:0 ~sims_of_left:[] ~sims_of_right:[]
                (x, v "vx") (t, v "vt")
                [ Cond.Csim (x, t) ])
        in
        match Clause_repair.repaired_clauses c with
        | [ c' ] ->
            Alcotest.(check int) "only R remains" 1 (Clause.body_size c');
            Alcotest.(check bool) "head unchanged" true
              (Literal.equal c'.Clause.head (rel "T" [ x ]))
        | other -> Alcotest.failf "expected 1, got %d" (List.length other));
    Alcotest.test_case "cfd group yields one repair per alternative" `Quick
      (fun () ->
        (* A violation of (title -> country): two alternatives for the RHS. *)
        let z = v "z" and t = v "t" in
        let cond = [ Cond.Cneq (z, t) ] in
        let mk subject replacement =
          Literal.Repair
            {
              origin = Literal.From_cfd "phi1";
              group = 0;
              cond;
              subject;
              replacement;
              drops = [];
            }
        in
        let c =
          Clause.make
            ~head:(rel "T" [ v "x" ])
            [
              rel "loc" [ v "x"; z ];
              rel "loc" [ v "x"; t ];
              mk z t;
              mk t z;
            ]
        in
        let repaired = Clause_repair.repaired_clauses c in
        Alcotest.(check int) "2 alternatives" 2 (List.length repaired);
        List.iter
          (fun c' ->
            Alcotest.(check bool) "violation resolved: both loc literals equal"
              true
              (match Clause.rel_body (Clause.canonical c') with
              | [ _one ] -> true
              | _ -> false))
          repaired);
    Alcotest.test_case "cfd_applications leaves md repairs in place" `Quick
      (fun () ->
        let c = example_3_3 () in
        match Clause_repair.cfd_applications c with
        | [ c' ] ->
            Alcotest.(check int) "md repairs kept" 4
              (List.length (Clause.repair_body c'))
        | other -> Alcotest.failf "expected 1, got %d" (List.length other));
    Alcotest.test_case "is_repaired" `Quick (fun () ->
        Alcotest.(check bool) "with repairs" false
          (Clause_repair.is_repaired (example_3_2 ()));
        List.iter
          (fun c ->
            Alcotest.(check bool) "repaired" true (Clause_repair.is_repaired c))
          (Clause_repair.repaired_clauses (example_3_2 ())));
  ]

let definition_tests =
  [
    Alcotest.test_case "add enforces target" `Quick (fun () ->
        let d = Definition.empty "T" in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Definition.add d
                  (Clause.make ~head:(rel "U" [ v "x" ]) []));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "repaired definitions take the product" `Quick (fun () ->
        let d = Definition.empty "T" in
        let d = Definition.add d (example_3_3 ()) in
        let d =
          Definition.add d
            (Clause.make ~head:(rel "T" [ v "x" ]) [ rel "R" [ v "x" ] ])
        in
        Alcotest.(check int) "2 x 1 repaired definitions" 2
          (List.length (Definition.repaired_definitions d)));
    Alcotest.test_case "to_string mentions every clause" `Quick (fun () ->
        let d = Definition.empty "T" in
        let d =
          Definition.add d (Clause.make ~head:(rel "T" [ v "x" ]) [ rel "R" [ v "x" ] ])
        in
        Alcotest.(check bool) "contains R" true
          (String.length (Definition.to_string d) > 0));
  ]

(* Random ground clause generator for property tests. *)
let clause_gen =
  let open QCheck.Gen in
  let const = map (fun c -> Term.str (String.make 1 c)) (char_range 'a' 'e') in
  let lit =
    oneof
      [
        map2 (fun t1 t2 -> rel "p" [ t1; t2 ]) const const;
        map (fun t -> rel "q" [ t ]) const;
        map2 (fun t1 t2 -> Literal.Sim (t1, t2)) const const;
      ]
  in
  let* body = list_size (0 -- 6) lit in
  let* head_arg = const in
  return (Clause.make ~head:(rel "t" [ head_arg ]) body)

let clause_arb = QCheck.make ~print:Clause.to_string clause_gen

(* Clauses with well-formed MD repair groups, for properties that need
   repair literals. *)
let repair_clause_gen =
  let open QCheck.Gen in
  let const = map (fun c -> Term.str (String.make 1 c)) (char_range 'a' 'e') in
  let* base = clause_gen in
  let* x = const and* y = const in
  let* add_group = bool in
  if (not add_group) || Term.equal x y then return base
  else begin
    let sim = Literal.Sim (x, y) in
    let vx = v "gvx" and vy = v "gvy" in
    let group =
      [ sim ]
      @ md_group ~md:"gm" ~group:99 ~sims_of_left:[ sim ] ~sims_of_right:[ sim ]
          (x, vx) (y, vy)
          [ Cond.Csim (x, y) ]
    in
    return { base with Clause.body = base.Clause.body @ group }
  end

let repair_clause_arb = QCheck.make ~print:Clause.to_string repair_clause_gen

(* Clauses mixing variable/constant schema atoms, constant-argument
   similarity literals, Eq/Neq check literals over variables and
   constants, and an optional well-formed MD repair group — the full
   literal grammar the subsumption engines must agree on. *)
let mixed_clause_gen =
  let open QCheck.Gen in
  let const = map (fun c -> Term.str (String.make 1 c)) (char_range 'a' 'e') in
  let term = oneof [ const; map Term.var (oneofl [ "mx"; "my"; "mz" ]) ] in
  let lit =
    frequency
      [
        (3, map2 (fun t1 t2 -> rel "p" [ t1; t2 ]) term term);
        (2, map (fun t -> rel "q" [ t ]) term);
        (1, map2 (fun t1 t2 -> Literal.Sim (t1, t2)) const const);
        (1, map2 (fun a b -> Literal.Eq (a, b)) term term);
        (1, map2 (fun a b -> Literal.Neq (a, b)) term term);
      ]
  in
  let* body = list_size (0 -- 6) lit in
  let* head_arg = term in
  let base = Clause.make ~head:(rel "t" [ head_arg ]) body in
  let* add_group = bool in
  let* x = const and* y = const in
  if (not add_group) || Term.equal x y then return base
  else begin
    let sim = Literal.Sim (x, y) in
    let group =
      [ sim ]
      @ md_group ~md:"gm" ~group:9 ~sims_of_left:[ sim ] ~sims_of_right:[ sim ]
          (x, v "gvx") (y, v "gvy")
          [ Cond.Csim (x, y) ]
    in
    return { base with Clause.body = base.Clause.body @ group }
  end

let mixed_clause_arb = QCheck.make ~print:Clause.to_string mixed_clause_gen

(* Repair-free clauses exercising the whole concrete grammar of
   lib/logic/parser.mli — which claims to be the inverse of
   Clause.to_string: multi-char identifiers with digits/underscores/primes,
   string constants containing quotes, backslashes and spaces, signed
   integers, and floats with a fractional part (integral floats print
   without a dot and would re-parse as ints). *)
let printable_clause_gen =
  let open QCheck.Gen in
  let ident =
    oneofl [ "x"; "y0"; "long_name"; "z'"; "V"; "_tmp" ] |> map Term.var
  in
  let string_const =
    let chars =
      oneofl [ 'a'; 'Z'; '0'; ' '; '"'; '\\'; '~'; '('; ','; '-' ]
    in
    map (fun s -> Term.str s) (string_size ~gen:chars (0 -- 8))
  in
  let int_const = map (fun i -> Term.const (Dlearn_relation.Value.Int i)) (-100 -- 100) in
  let float_const =
    map
      (fun k -> Term.const (Dlearn_relation.Value.Float (float_of_int ((2 * k) + 1) /. 4.)))
      (-20 -- 20)
  in
  let term = oneof [ ident; ident; string_const; int_const; float_const ] in
  let atom =
    let* pred = oneofl [ "p"; "q"; "rel_2" ] in
    let* arity = 1 -- 3 in
    let* args = list_repeat arity term in
    return (rel pred args)
  in
  let lit =
    frequency
      [
        (3, atom);
        (1, map2 (fun a b -> Literal.Sim (a, b)) term term);
        (1, map2 (fun a b -> Literal.Eq (a, b)) term term);
        (1, map2 (fun a b -> Literal.Neq (a, b)) term term);
      ]
  in
  let* body = list_size (0 -- 8) lit in
  let* head_args = list_size (1 -- 2) term in
  return (Clause.make ~head:(rel "head_pred" head_args) body)

let printable_clause_arb =
  QCheck.make ~print:Clause.to_string printable_clause_gen

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Parser.clause inverts Clause.to_string"
         ~count:1000 printable_clause_arb (fun c ->
           match Parser.clause (Clause.to_string c) with
           | Ok c' -> Clause.equal c c'
           | Error msg ->
               QCheck.Test.fail_reportf "re-parse failed: %s" msg));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"repaired clauses carry no repair literals"
         ~count:200 repair_clause_arb (fun c ->
           List.for_all Clause_repair.is_repaired
             (Clause_repair.repaired_clauses c)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"cfd_applications keep only MD repair literals" ~count:200
         repair_clause_arb (fun c ->
           Clause_repair.cfd_applications c
           |> List.for_all (fun c' ->
                  List.for_all
                    (function
                      | Literal.Repair { origin = Literal.From_cfd _; _ } ->
                          false
                      | _ -> true)
                    c'.Clause.body)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"subsumption engines agree on clauses with repairs" ~count:200
         (QCheck.pair repair_clause_arb repair_clause_arb) (fun (c, d) ->
           let norm = function
             | Subsumption.Subsumed _ -> `Yes
             | Subsumption.Not_subsumed -> `No
             | Subsumption.Budget_exhausted -> `Maybe
           in
           match
             ( norm (Subsumption.subsumes ~budget:500_000 c d),
               norm (Subsumption.subsumes_naive ~budget:500_000 c d) )
           with
           | `Maybe, _ | _, `Maybe -> true
           | a, b -> a = b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"clauses with repairs subsume themselves"
         ~count:200 repair_clause_arb (fun c -> Subsumption.subsumes_bool c c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"subsumption is reflexive" ~count:200 clause_arb
         (fun c -> Subsumption.subsumes_bool c c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"adding a body literal preserves subsumption"
         ~count:200 clause_arb (fun c ->
           let extra = rel "p" [ Term.str "zz1"; Term.str "zz2" ] in
           let d = { c with Clause.body = extra :: c.Clause.body } in
           Subsumption.subsumes_bool c d));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"head_connected is idempotent" ~count:200 clause_arb
         (fun c ->
           let once = Clause.head_connected c in
           Clause.equal once (Clause.head_connected once)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"canonical is idempotent" ~count:200 clause_arb
         (fun c ->
           let once = Clause.canonical c in
           Clause.equal once (Clause.canonical once)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"repair-free clauses are their own repair"
         ~count:200 clause_arb (fun c ->
           match Clause_repair.repaired_clauses c with
           | [ c' ] ->
               Clause.equal
                 (Clause.canonical (Clause.remove_dangling_restrictions c))
                 (Clause.canonical c')
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"decomposed search agrees with the naive oracle"
         ~count:300 (QCheck.pair clause_arb clause_arb) (fun (c, d) ->
           let norm = function
             | Subsumption.Subsumed _ -> `Yes
             | Subsumption.Not_subsumed -> `No
             | Subsumption.Budget_exhausted -> `Maybe
           in
           match
             ( norm (Subsumption.subsumes ~budget:500_000 c d),
               norm (Subsumption.subsumes_naive ~budget:500_000 c d) )
           with
           | `Maybe, _ | _, `Maybe -> true
           | a, b -> a = b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "csp, backtrack, sat and naive engines agree (budgets, \
            connectivity)"
         ~count:500
         (QCheck.triple mixed_clause_arb mixed_clause_arb QCheck.bool)
         (fun (c, d, rc) ->
           (* Every definite answer — any engine, full or tiny budget, with
              or without the repair-connectivity condition — must agree:
              budget exhaustion may differ between engines (they spend in
              different places), but a definite verdict never depends on
              the engine or the budget. *)
           let norm = function
             | Subsumption.Subsumed _ -> `Yes
             | Subsumption.Not_subsumed -> `No
             | Subsumption.Budget_exhausted -> `Maybe
           in
           let outcomes budget =
             [
               Subsumption.subsumes ~engine:`Csp ~budget
                 ~repair_connectivity:rc c d;
               Subsumption.subsumes ~engine:`Backtrack ~budget
                 ~repair_connectivity:rc c d;
               Subsumption.subsumes ~engine:`Sat ~budget
                 ~repair_connectivity:rc c d;
               Subsumption.subsumes_naive ~budget ~repair_connectivity:rc c d;
             ]
           in
           let verdicts =
             List.map norm (outcomes 500_000 @ outcomes 60)
             |> List.filter (fun o -> o <> `Maybe)
           in
           match verdicts with
           | [] -> true
           | first :: rest -> List.for_all (fun o -> o = first) rest));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"subsumption transitivity (sampled)" ~count:100
         (QCheck.pair clause_arb clause_arb) (fun (c, d) ->
           (* c vs c-with-extra vs d: if c <= d and d <= e then c <= e, where
              e extends d. *)
           let e = { d with Clause.body = rel "q" [ Term.str "k" ] :: d.Clause.body } in
           if Subsumption.subsumes_bool c d && Subsumption.subsumes_bool d e then
             Subsumption.subsumes_bool c e
           else true));
  ]


let armg_module_tests =
  let ground =
    Clause.make
      ~head:(rel "t" [ s "a" ])
      [
        rel "p" [ s "a"; s "b" ];
        rel "p" [ s "a"; s "c" ];
        rel "q" [ s "b" ];
        Literal.Sim (s "b", s "c");
      ]
  in
  let target = Subsumption.prepare ground in
  [
    Alcotest.test_case "head_unify binds head variables" `Quick (fun () ->
        match Subsumption.Armg.head_unify target (rel "t" [ v "x" ]) with
        | Some th ->
            Alcotest.(check bool) "x -> a" true
              (Term.equal (Substitution.apply_term th (v "x")) (s "a"))
        | None -> Alcotest.fail "expected unification");
    Alcotest.test_case "head_unify rejects wrong predicate" `Quick (fun () ->
        Alcotest.(check bool) "none" true
          (Subsumption.Armg.head_unify target (rel "u" [ v "x" ]) = None));
    Alcotest.test_case "extend enumerates matching literals" `Quick (fun () ->
        let th = Substitution.singleton "x" (s "a") in
        let exts =
          Subsumption.Armg.extend target th (rel "p" [ v "x"; v "y" ])
        in
        Alcotest.(check int) "two candidates" 2 (List.length exts));
    Alcotest.test_case "extend respects bound variables" `Quick (fun () ->
        let th = Substitution.of_list [ ("x", s "a"); ("y", s "b") ] in
        let exts =
          Subsumption.Armg.extend target th (rel "p" [ v "x"; v "y" ])
        in
        Alcotest.(check int) "one candidate" 1 (List.length exts));
    Alcotest.test_case "check evaluates bound restrictions" `Quick (fun () ->
        let th = Substitution.of_list [ ("x", s "b"); ("y", s "b") ] in
        Alcotest.(check bool) "eq sat" true
          (Subsumption.Armg.check target th (Literal.Eq (v "x", v "y")) = `Sat);
        Alcotest.(check bool) "neq unsat" true
          (Subsumption.Armg.check target th (Literal.Neq (v "x", v "y")) = `Unsat);
        Alcotest.(check bool) "unbound unknown" true
          (Subsumption.Armg.check target Substitution.empty
             (Literal.Eq (v "x", v "y"))
          = `Unknown));
  ]

let printing_tests =
  [
    Alcotest.test_case "terms print distinctly" `Quick (fun () ->
        Alcotest.(check string) "var" "x" (Term.to_string (v "x"));
        Alcotest.(check string) "string const quoted" "\"a\"" (Term.to_string (s "a")));
    Alcotest.test_case "literal printing is readable" `Quick (fun () ->
        Alcotest.(check string) "rel" "p(x, \"a\")"
          (Literal.to_string (rel "p" [ v "x"; s "a" ]));
        Alcotest.(check string) "sim" "x ~ y"
          (Literal.to_string (Literal.Sim (v "x", v "y"))));
    Alcotest.test_case "cond printing" `Quick (fun () ->
        Alcotest.(check string) "true" "true" (Cond.to_string []);
        Alcotest.(check string) "conjunction" "x = y & x != z"
          (Cond.to_string [ Cond.Ceq (v "x", v "y"); Cond.Cneq (v "x", v "z") ]));
    Alcotest.test_case "cond vars and map_terms" `Quick (fun () ->
        let c = [ Cond.Csim (v "x", v "y"); Cond.Ceq (v "x", s "k") ] in
        Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Cond.vars c);
        let c2 = Cond.map_terms (fun t -> if Term.equal t (v "x") then v "z" else t) c in
        Alcotest.(check bool) "renamed" true
          (Cond.equal c2 [ Cond.Csim (v "z", v "y"); Cond.Ceq (v "z", s "k") ]));
    Alcotest.test_case "literal map_terms reaches repair internals" `Quick
      (fun () ->
        let r =
          Literal.Repair
            {
              origin = Literal.From_md "m";
              group = 0;
              cond = [ Cond.Csim (v "x", v "y") ];
              subject = v "x";
              replacement = v "vx";
              drops = [ Literal.Sim (v "x", v "y") ];
            }
        in
        let renamed =
          Literal.map_terms (fun t -> if Term.equal t (v "x") then v "z" else t) r
        in
        match renamed with
        | Literal.Repair rr ->
            Alcotest.(check bool) "subject renamed" true (Term.equal rr.Literal.subject (v "z"));
            Alcotest.(check bool) "cond renamed" true
              (Cond.equal rr.Literal.cond [ Cond.Csim (v "z", v "y") ]);
            Alcotest.(check bool) "drops renamed" true
              (match rr.Literal.drops with
              | [ Literal.Sim (a, _) ] -> Term.equal a (v "z")
              | _ -> false)
        | _ -> Alcotest.fail "not a repair");
  ]


(* A CFD violation induced by an MD repair: locale(x, USA) and
   locale(y, Ireland) violate (id -> country) only once the MD unifies x
   and y. The repair literal's condition references the terms the MD
   replaces, so it stays inert unless the MD fires first — and in the
   repair where it does fire, the induced violation gets repaired too. *)
let induced_violation_clause () =
  let x = v "x" and y = v "y" in
  let vx = v "vx" and vy = v "vy" in
  let usa = s "USA" and irl = s "Ireland" in
  let sim = Literal.Sim (x, y) in
  Clause.make
    ~head:(rel "T" [ x ])
    ([
       rel "locale" [ x; usa ];
       rel "locale" [ y; irl ];
       sim;
     ]
    @ md_group ~md:"ids" ~group:0 ~sims_of_left:[ sim ] ~sims_of_right:[ sim ]
        (x, vx) (y, vy)
        [ Cond.Csim (x, y) ]
    @ [
        (* Induced CFD repairs: only applicable once x = y holds, which the
           MD's application establishes (vx = vy). *)
        Literal.Repair
          {
            origin = Literal.From_cfd "id_country";
            group = 1;
            cond = [ Cond.Ceq (x, y); Cond.Cneq (usa, irl) ];
            subject = usa;
            replacement = irl;
            drops = [];
          };
        Literal.Repair
          {
            origin = Literal.From_cfd "id_country";
            group = 1;
            cond = [ Cond.Ceq (x, y); Cond.Cneq (usa, irl) ];
            subject = irl;
            replacement = usa;
            drops = [];
          };
      ])

let induced_tests =
  [
    Alcotest.test_case "induced CFD repair fires only after the MD" `Quick
      (fun () ->
        let repaired = Clause_repair.repaired_clauses (induced_violation_clause ()) in
        (* The MD fires (condition holds), unifying x and y; then the CFD
           group offers two alternatives (country := USA or Ireland). *)
        Alcotest.(check int) "two repairs" 2 (List.length repaired);
        List.iter
          (fun c ->
            let countries =
              List.filter_map
                (function
                  | Literal.Rel { pred = "locale"; args } -> Some args.(1)
                  | _ -> None)
                c.Clause.body
            in
            match countries with
            | [ a; b ] ->
                Alcotest.(check bool) "countries unified" true (Term.equal a b)
            | _ -> Alcotest.fail "expected two locale literals")
          repaired);
    Alcotest.test_case "without the MD the induced repair never fires" `Quick
      (fun () ->
        (* Strip the MD group: the CFD condition x = y never holds, so the
           conflicting countries legitimately coexist (they belong to
           different ids). *)
        let c = induced_violation_clause () in
        let body =
          List.filter
            (fun l ->
              match l with
              | Literal.Repair { origin = Literal.From_md _; _ } -> false
              | Literal.Eq _ -> false
              | _ -> true)
            c.Clause.body
        in
        match Clause_repair.repaired_clauses { c with Clause.body } with
        | [ r ] ->
            let countries =
              List.filter_map
                (function
                  | Literal.Rel { pred = "locale"; args } -> Some args.(1)
                  | _ -> None)
                r.Clause.body
            in
            Alcotest.(check bool) "countries stay distinct" true
              (match countries with
              | [ a; b ] -> not (Term.equal a b)
              | _ -> false)
        | other -> Alcotest.failf "expected 1 repair, got %d" (List.length other));
  ]

let () =
  Alcotest.run "logic"
    [
      ("clause", clause_tests);
      ("clause_env", env_tests);
      ("substitution", substitution_tests);
      ("subsumption", subsumption_tests);
      ("clause_repair", repair_tests);
      ("definition", definition_tests);
      ("armg", armg_module_tests);
      ("induced_violations", induced_tests);
      ("printing", printing_tests);
      ("properties", qcheck_tests);
    ]
