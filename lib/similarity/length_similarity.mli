(** Length similarity: the second half of the paper's operator (§5).

    [similarity a b] divides the length of the shorter string by the length
    of the longer one; two empty strings are fully similar, one empty
    string against a non-empty one scores 0. *)

val similarity : string -> string -> float
