(** Database instances: a catalog of named relations.

    This is the paper's database instance [I] of schema [S] — the
    background knowledge over which definitions are learned. *)

type t

val create : unit -> t

(** [add_relation t r] registers [r] under its schema name.
    @raise Invalid_argument if a relation with that name exists. *)
val add_relation : t -> Relation.t -> unit

(** [create_relation t schema] creates, registers and returns an empty
    relation. *)
val create_relation : t -> Schema.t -> Relation.t

(** [find t name] returns the relation named [name].
    @raise Not_found when absent. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option

val mem : t -> string -> bool

(** [relations t] lists relations in registration order. *)
val relations : t -> Relation.t list

val relation_names : t -> string list

val total_tuples : t -> int

(** [copy t] deep-copies every relation — used when producing repairs. *)
val copy : t -> t

val pp_summary : Format.formatter -> t -> unit
