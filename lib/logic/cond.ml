type atom =
  | Ceq of Term.t * Term.t
  | Cneq of Term.t * Term.t
  | Csim of Term.t * Term.t

type t = atom list

let atom_equal a b =
  match a, b with
  | Ceq (x, y), Ceq (x', y')
  | Cneq (x, y), Cneq (x', y')
  | Csim (x, y), Csim (x', y') ->
      Term.equal x x' && Term.equal y y'
  | (Ceq _ | Cneq _ | Csim _), _ -> false

let equal a b = List.length a = List.length b && List.for_all2 atom_equal a b

let map_atom f = function
  | Ceq (x, y) -> Ceq (f x, f y)
  | Cneq (x, y) -> Cneq (f x, f y)
  | Csim (x, y) -> Csim (f x, f y)

let map_terms f c = List.map (map_atom f) c

let atom_terms = function
  | Ceq (x, y) | Cneq (x, y) | Csim (x, y) -> [ x; y ]

let vars c =
  List.concat_map atom_terms c
  |> List.filter_map (function Term.Var v -> Some v | Term.Const _ -> None)
  |> List.sort_uniq String.compare

let atom_to_string = function
  | Ceq (x, y) -> Printf.sprintf "%s = %s" (Term.to_string x) (Term.to_string y)
  | Cneq (x, y) ->
      Printf.sprintf "%s != %s" (Term.to_string x) (Term.to_string y)
  | Csim (x, y) -> Printf.sprintf "%s ~ %s" (Term.to_string x) (Term.to_string y)

let to_string = function
  | [] -> "true"
  | atoms -> String.concat " & " (List.map atom_to_string atoms)

let pp fmt c = Format.pp_print_string fmt (to_string c)

let eval ~eq ~neq ~sim c =
  List.for_all
    (function
      | Ceq (x, y) -> eq x y
      | Cneq (x, y) -> neq x y
      | Csim (x, y) -> sim x y)
    c
