(** Directory-based persistence for whole databases.

    A database is stored as one [manifest.txt] plus one CSV per relation.
    The manifest records each relation's name and schema, one line per
    relation: [name|attr1:domain,attr2:domain,...] with domain ∈
    {int, float, string}. Values round-trip through {!Value.to_string} /
    {!Value.of_string}, with the schema's domain used to keep strings that
    happen to look numeric as strings.

    Large datasets need not be materialized: {!scan} streams one
    relation's tuples straight off disk (through {!Csv.fold}'s chunked
    reader), and [load ~lazy_load:true] defers each relation's load to
    its first access. See docs/SCALE.md. *)

(** [save db dir] writes [dir/manifest.txt] and [dir/<relation>.csv] for
    every relation, creating [dir] if needed. *)
val save : Database.t -> string -> unit

(** [csv_path dir name] is the CSV file backing relation [name] — the
    path {!save} writes and {!scan} reads. *)
val csv_path : string -> string -> string

(** [mkdir_p dir] creates [dir] and any missing parents, tolerating
    directories that already exist (or appear concurrently — two racing
    writers both succeed).
    @raise Invalid_argument when [dir] exists and is not a directory. *)
val mkdir_p : string -> unit

(** [write_manifest dir schemas] writes just the manifest (creating
    [dir] recursively if needed) — for producers that stream their CSVs
    themselves, like the scale generator. *)
val write_manifest : string -> Schema.t list -> unit

(** [manifest dir] reads the schemas listed in [dir/manifest.txt], in
    manifest order, without touching any CSV. *)
val manifest : string -> Schema.t list

(** [scan ?delim dir name ~init ~f] folds [f] over every tuple of the
    relation [name], streaming from its CSV without building a
    relation. Tuples are re-typed against the manifest schema exactly
    as {!load} does.
    @raise Invalid_argument if [name] is not in the manifest. *)
val scan :
  ?delim:char ->
  string ->
  string ->
  init:'a ->
  f:('a -> Tuple.t -> 'a) ->
  'a

(** [load ?lazy_load dir] reads a database saved by {!save}. With
    [~lazy_load:true] (default false) each relation is registered
    pending ({!Database.add_lazy}) and loaded on first access.
    @raise Sys_error / [Invalid_argument] on missing or malformed files. *)
val load : ?lazy_load:bool -> string -> Database.t
