module Obs = Dlearn_obs.Obs
module StrSet = Set.Make (String)
module StrMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Counters ([normalize.*] on the process-wide registry, see
   docs/OBSERVABILITY.md). Hoisted handles; bumped only by [normalize],
   never by [plan] (the lint entry point must not pollute run stats).   *)

module Stats = struct
  let clauses = Obs.counter "normalize.clauses"
  let rounds = Obs.counter "normalize.rounds"
  let duplicates = Obs.counter "normalize.duplicates"
  let tautologies = Obs.counter "normalize.tautologies"
  let cond_atoms = Obs.counter "normalize.cond_atoms"
  let contradictions = Obs.counter "normalize.contradictions"
  let condensed = Obs.counter "normalize.condensed"
  let condense_capped = Obs.counter "normalize.condense_capped"
  let rename_fallbacks = Obs.counter "normalize.rename_fallbacks"
end

type rewrite =
  | Drop_duplicate of Literal.t
  | Drop_tautology of Literal.t
  | Drop_cond_atom of Literal.t * Cond.atom
  | Contradiction of Literal.t
  | Condense of {
      dropped : Literal.t;
      witness : Literal.t;
    }

let rewrite_to_string = function
  | Drop_duplicate l -> "duplicate " ^ Literal.to_string l
  | Drop_tautology l -> "tautology " ^ Literal.to_string l
  | Drop_cond_atom (l, a) ->
      Printf.sprintf "trivially true condition %s in %s" (Cond.to_string [ a ])
        (Literal.to_string l)
  | Contradiction l -> "contradiction " ^ Literal.to_string l
  | Condense { dropped; witness } ->
      Printf.sprintf "%s is subsumed by %s" (Literal.to_string dropped)
        (Literal.to_string witness)

(* ------------------------------------------------------------------ *)
(* Structural helpers. [Literal.terms]/[Literal.vars] skip the drops
   lists of repair literals; normalization must see those too (they are
   renamed by [map_terms] and matched by [Literal.equal] when a repair
   applies), so the deep variants below recurse into them.              *)

let rec deep_terms l =
  match l with
  | Literal.Repair r ->
      Literal.terms l @ List.concat_map deep_terms r.Literal.drops
  | Literal.Rel _ | Literal.Sim _ | Literal.Eq _ | Literal.Neq _ ->
      Literal.terms l

let deep_vars l =
  List.filter_map
    (function Term.Var v -> Some v | Term.Const _ -> None)
    (deep_terms l)
  |> List.sort_uniq String.compare

(* Variables bound by matching a generative literal: head and schema-atom
   arguments, and repair subjects/replacements (the engines unify exactly
   those against the target; a variable occurring only in restriction
   literals or repair conditions is never bound by the search). *)
let generative_vars (c : Clause.t) =
  let add_term acc = function
    | Term.Var v -> StrSet.add v acc
    | Term.Const _ -> acc
  in
  let add acc l =
    match l with
    | Literal.Rel { args; _ } -> Array.fold_left add_term acc args
    | Literal.Repair r ->
        add_term (add_term acc r.Literal.subject) r.Literal.replacement
    | Literal.Sim _ | Literal.Eq _ | Literal.Neq _ -> acc
  in
  List.fold_left add
    (List.fold_left add_term StrSet.empty (Literal.terms c.Clause.head))
    c.Clause.body

(* Literals recorded in some repair literal's drops list. Repair
   application deletes body literals by [Literal.equal] against those
   records *before* substituting (Clause_repair.apply_group), so a
   rewrite that removes or alters a recorded literal would silently
   change which literals a repair deletes. Every pass skips them. *)
let protected_literals (c : Clause.t) =
  let rec collect acc l =
    match l with
    | Literal.Repair r ->
        List.fold_left collect (r.Literal.drops @ acc) r.Literal.drops
    | Literal.Rel _ | Literal.Sim _ | Literal.Eq _ | Literal.Neq _ -> acc
  in
  List.fold_left collect [] c.Clause.body

let is_protected protected l = List.exists (Literal.equal l) protected

(* ------------------------------------------------------------------ *)
(* Pass 3: duplicate-literal and tautology elimination, mirroring the
   DL105/DL106 lints as rewrites — restricted to what the subsumption
   engines make sound:

   - [Eq (t, t)] is always satisfied: Clause_env.eq is reflexive and
     resolve_checks binds an unbound variable's class consistently, so
     the check can never fail. Dropped.
   - [Sim (t, t)] is satisfied through the environment closure only once
     both sides are ground; a variable the search never binds must
     instead match an explicit similarity literal of the target. Dropped
     only when [t] is a constant or a generatively-bound variable.
   - [Neq (t, t)] can never be satisfied (both engines resolve the two
     sides identically), and [map_terms] preserves the shape, so every
     repaired clause keeps a failing check: the clause covers nothing.
     The whole clause canonicalizes to the shared trivially-false form.
   - A repair condition atom [Ceq (t, t)] / [Csim (t, t)] is always true
     under Clause_env.eval_cond (eq and sim are reflexive there), so it
     is deleted from the condition.

   [Eq]/[Neq] over distinct constants are deliberately left alone: the
   target's closure can merge constants through repair-induced
   equalities, so their verdicts are not static. *)

let tautological_atom = function
  | Cond.Ceq (a, b) | Cond.Csim (a, b) -> Term.equal a b
  | Cond.Cneq _ -> false

type trivia_verdict =
  | Keep
  | Drop of rewrite
  | Rewrite of Literal.t * rewrite list
  | False of rewrite

let trivia_verdict ~bound ~protected l =
  if is_protected protected l then Keep
  else
    match l with
    | Literal.Eq (a, b) when Term.equal a b -> Drop (Drop_tautology l)
    | Literal.Sim (a, b)
      when Term.equal a b
           && (match a with
              | Term.Const _ -> true
              | Term.Var v -> StrSet.mem v bound) ->
        Drop (Drop_tautology l)
    | Literal.Neq (a, b) when Term.equal a b -> False (Contradiction l)
    | Literal.Repair r ->
        let true_atoms = List.filter tautological_atom r.Literal.cond in
        if true_atoms = [] then Keep
        else
          Rewrite
            ( Literal.Repair
                {
                  r with
                  Literal.cond =
                    List.filter
                      (fun a -> not (tautological_atom a))
                      r.Literal.cond;
                },
              List.map (fun a -> Drop_cond_atom (l, a)) true_atoms )
    | Literal.Rel _ | Literal.Sim _ | Literal.Eq _ | Literal.Neq _ -> Keep

(* One trivia sweep over the body. Returns the new body, the rewrites
   applied, and the first contradiction witness when the clause is
   trivially false. *)
let trivia_pass ~bound ~protected body =
  let rewrites = ref [] in
  let falsum = ref None in
  let body' =
    List.filter_map
      (fun l ->
        match trivia_verdict ~bound ~protected l with
        | Keep -> Some l
        | Drop rw ->
            rewrites := rw :: !rewrites;
            None
        | Rewrite (l', rws) ->
            rewrites := rws @ !rewrites;
            Some l'
        | False rw ->
            rewrites := rw :: !rewrites;
            if !falsum = None then falsum := Some l;
            Some l)
      body
  in
  (body', List.rev !rewrites, !falsum)

(* Duplicate elimination preserving first occurrences (the final
   canonical ordering happens after renaming). *)
let dedup_pass body =
  let rewrites = ref [] in
  let rec go seen acc = function
    | [] -> List.rev acc
    | l :: rest ->
        if List.exists (Literal.equal l) seen then begin
          rewrites := Drop_duplicate l :: !rewrites;
          go seen acc rest
        end
        else go (l :: seen) (l :: acc) rest
  in
  let body' = go [] [] body in
  (body', List.rev !rewrites)

(* ------------------------------------------------------------------ *)
(* Pass 4: condensation-lite. A non-repair body literal L with at least
   one strictly-local variable (occurring in no other literal of the
   clause, head included) is dropped when a substitution over exactly
   those local variables maps L onto another body literal L': any match
   theta of the rest extends to L through L''s match, and the repair
   enumeration commutes with the drop because a strictly-local variable
   is never a repair subject or replacement (those occur in the repair
   literal too). Both L and L' must be unprotected — if either is
   recorded in a drops list, a repair application would delete the
   witness (or expect the dropped literal), breaking the equivalence.
   Bodies longer than [condense_body_cap] skip the pass (counted): the
   quadratic scan must never dominate solve time. *)

let condense_body_cap = 64

let match_onto ~locals l l' =
  let sigma = Hashtbl.create 4 in
  let term t t' =
    Term.equal t t'
    ||
    match t with
    | Term.Var v when StrSet.mem v locals -> (
        match Hashtbl.find_opt sigma v with
        | Some u -> Term.equal u t'
        | None ->
            Hashtbl.add sigma v t';
            true)
    | Term.Var _ | Term.Const _ -> false
  in
  match l, l' with
  | Literal.Rel r, Literal.Rel r' ->
      String.equal r.pred r'.pred
      && Array.length r.args = Array.length r'.args
      && Array.for_all2 term r.args r'.args
  | Literal.Sim (a, b), Literal.Sim (a', b')
  | Literal.Eq (a, b), Literal.Eq (a', b')
  | Literal.Neq (a, b), Literal.Neq (a', b') ->
      term a a' && term b b'
  | (Literal.Rel _ | Literal.Sim _ | Literal.Eq _ | Literal.Neq _
    | Literal.Repair _), _ ->
      false

(* Find one condensation step, or None. The caller loops to fixpoint:
   dropping a literal can strand more variables as local. *)
let condense_step ~protected (c : Clause.t) =
  let body = Array.of_list c.Clause.body in
  let n = Array.length body in
  (* How many literals (head included) each variable occurs in. *)
  let occ = Hashtbl.create 16 in
  List.iter
    (fun l ->
      List.iter
        (fun v ->
          Hashtbl.replace occ v
            (1 + Option.value ~default:0 (Hashtbl.find_opt occ v)))
        (deep_vars l))
    (c.Clause.head :: c.Clause.body);
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < n do
    let l = body.(!i) in
    (if not (Literal.is_repair l || is_protected protected l) then
       let locals =
         List.filter (fun v -> Hashtbl.find occ v = 1) (deep_vars l)
         |> StrSet.of_list
       in
       if not (StrSet.is_empty locals) then begin
         let j = ref 0 in
         while !result = None && !j < n do
           (if !j <> !i then
              let l' = body.(!j) in
              if
                (not (is_protected protected l'))
                && match_onto ~locals l l'
              then begin
                let body' =
                  List.filteri (fun k _ -> k <> !i) c.Clause.body
                in
                result :=
                  Some
                    ( { c with Clause.body = body' },
                      Condense { dropped = l; witness = l' } )
              end);
           incr j
         done
       end);
    incr i
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Passes 1 and 2: canonical variable renumbering by iterative
   refinement over the variable-occurrence structure, then deterministic
   literal ordering.

   Each variable gets a color; a refinement round rehashes every color
   with the multiset of the variable's occurrence signatures (the
   literal's structure rendered with colors standing for names, the
   variable's own positions marked), so the partition only ever splits
   and depends on structure alone — never on names or body order. Color
   classes that refinement cannot split are broken by
   individualization: give one member the next canonical index, refine
   again, and keep the lexicographically smallest completed clause
   (McKay-style, bounded by [rename_completion_cap] completions; on
   overflow the remaining variables take a deterministic but
   name-dependent order and [normalize.rename_fallbacks] is bumped —
   the cache key stays sound, only alpha-variant sharing suffers). *)

let mix h x = (h * 1000003) lxor x
let mix_str h s = mix h (Hashtbl.hash s)

(* A literal flattened to a token stream: fixed structure hashes
   interleaved with variable-occurrence slots. Computed once per clause;
   each refinement round then re-renders the stream against the current
   coloring in a single fold, instead of re-walking the literal tree per
   (variable, literal) pair. A variable's occurrence signature is the
   rendered stream hash mixed with the (rename-invariant) hash of its
   slot positions — structure plus positions, never names. *)
type token =
  | Fixed of int
  | Slot of int  (* variable id *)

let lit_tokens id_of l =
  let acc = ref [] in
  let fixed h = acc := Fixed h :: !acc in
  let term t =
    match t with
    | Term.Const _ -> fixed (mix 1 (Term.hash t))
    | Term.Var u -> acc := Slot (Hashtbl.find id_of u) :: !acc
  in
  let rec walk l =
    match l with
    | Literal.Rel { pred; args } ->
        fixed (mix_str 10 pred);
        Array.iter term args
    | Literal.Sim (a, b) ->
        fixed 11;
        term a;
        term b
    | Literal.Eq (a, b) ->
        fixed 12;
        term a;
        term b
    | Literal.Neq (a, b) ->
        fixed 13;
        term a;
        term b
    | Literal.Repair r ->
        (* Group ids are clause-local structure (Literal.compare orders
           by them), not names: alpha-variants share them. *)
        fixed (mix_str 14 (Literal.origin_to_string r.Literal.origin));
        fixed r.Literal.group;
        term r.Literal.subject;
        term r.Literal.replacement;
        List.iter
          (fun a ->
            match a with
            | Cond.Ceq (x, y) ->
                fixed 15;
                term x;
                term y
            | Cond.Cneq (x, y) ->
                fixed 16;
                term x;
                term y
            | Cond.Csim (x, y) ->
                fixed 17;
                term x;
                term y)
          r.Literal.cond;
        List.iter
          (fun d ->
            fixed 18;
            walk d)
          r.Literal.drops
  in
  walk l;
  Array.of_list (List.rev !acc)

let combine hs = List.fold_left mix 0x9e3779b9 (List.sort Int.compare hs)

(* Each completion pays a full render (a map_terms copy plus the body
   sort), so on large symmetric bottom clauses the cap bounds the whole
   pass: 16 keeps renaming ≈1% of learn wall-clock while still covering
   every ambiguous cell observed in the generated workloads. *)
let rename_completion_cap = 16

(* Deterministic tie-break order on fully-renamed clauses. *)
let clause_compare (a : Clause.t) (b : Clause.t) =
  match Literal.compare a.Clause.head b.Clause.head with
  | 0 -> List.compare Literal.compare a.Clause.body b.Clause.body
  | c -> c

let cond_atom_rank = function
  | Cond.Ceq _ -> 0
  | Cond.Cneq _ -> 1
  | Cond.Csim _ -> 2

let cond_atom_compare a b =
  match Int.compare (cond_atom_rank a) (cond_atom_rank b) with
  | 0 -> (
      match a, b with
      | Cond.Ceq (x, y), Cond.Ceq (x', y')
      | Cond.Cneq (x, y), Cond.Cneq (x', y')
      | Cond.Csim (x, y), Cond.Csim (x', y') -> (
          match Term.compare x x' with 0 -> Term.compare y y' | c -> c)
      | (Cond.Ceq _ | Cond.Cneq _ | Cond.Csim _), _ -> assert false)
  | c -> c

(* Canonicalize the order-sensitive lists inside repair literals (their
   equality and evaluation are set-semantic: Cond.eval is a for_all and
   delete_literals matches elements individually). Applied uniformly to
   body literals and to the recorded drops, so [Literal.equal] matches
   between them are preserved exactly. *)
let rec canon_internals l =
  match l with
  | Literal.Repair r ->
      Literal.Repair
        {
          r with
          Literal.cond = List.sort_uniq cond_atom_compare r.Literal.cond;
          drops =
            List.sort_uniq Literal.compare
              (List.map canon_internals r.Literal.drops);
        }
  | Literal.Rel _ | Literal.Sim _ | Literal.Eq _ | Literal.Neq _ -> l

(* Pass 2: deterministic literal ordering (and the duplicate merge that
   renaming can never create — the renaming is a bijection — but that
   earlier passes feed in already-sorted duplicates of). *)
let order (c : Clause.t) =
  Clause.make
    ~head:(canon_internals c.Clause.head)
    (List.sort_uniq Literal.compare (List.map canon_internals c.Clause.body))

let rename_canonical ~count (c : Clause.t) =
  let lits = c.Clause.head :: c.Clause.body in
  let var_names =
    Array.of_list
      (List.sort_uniq String.compare (List.concat_map deep_vars lits))
  in
  let nvars = Array.length var_names in
  if nvars = 0 then order c
  else begin
    let id_of = Hashtbl.create (2 * nvars) in
    Array.iteri (fun i v -> Hashtbl.add id_of v i) var_names;
    let lit_arr = Array.of_list lits in
    let tokens = Array.map (lit_tokens id_of) lit_arr in
    (* literal indices containing each variable (deeply) *)
    let lits_of = Array.make nvars [] in
    Array.iteri
      (fun i l ->
        List.iter
          (fun v ->
            let v = Hashtbl.find id_of v in
            lits_of.(v) <- i :: lits_of.(v))
          (deep_vars l))
      lit_arr;
    (* Hash of each variable's slot positions in each literal —
       rename-invariant, computed once. *)
    let pos_hashes =
      Array.map
        (fun toks ->
          let tbl = Hashtbl.create 8 in
          Array.iteri
            (fun i tok ->
              match tok with
              | Slot v ->
                  let prev =
                    Option.value ~default:0x9e3779b9
                      (Hashtbl.find_opt tbl v)
                  in
                  Hashtbl.replace tbl v (mix prev i)
              | Fixed _ -> ())
            toks;
          tbl)
        tokens
    in
    (* The partition a coloring induces, as first-occurrence ranks, plus
       the number of classes. *)
    let ranks colors =
      let tbl = Hashtbl.create (2 * nvars) in
      let next = ref 0 in
      let part =
        Array.map
          (fun col ->
            match Hashtbl.find_opt tbl col with
            | Some r -> r
            | None ->
                let r = !next in
                Hashtbl.add tbl col r;
                incr next;
                r)
          colors
      in
      (part, !next)
    in
    (* Refine a copy of [colors] until the partition is stable or
       discrete. The partition only ever splits and depends on structure
       alone — never on names or body order. *)
    let refine colors =
      let colors = Array.copy colors in
      let part = ref (fst (ranks colors)) in
      let continue_ = ref (snd (ranks colors) < nvars) in
      let rounds = ref 0 in
      while !continue_ && !rounds <= nvars + 2 do
        incr rounds;
        let base =
          Array.map
            (fun toks ->
              Array.fold_left
                (fun h tok ->
                  match tok with
                  | Fixed x -> mix h x
                  | Slot v -> mix (mix h 3) colors.(v))
                0 toks)
            tokens
        in
        for v = 0 to nvars - 1 do
          let sigs =
            List.map
              (fun i -> mix base.(i) (Hashtbl.find pos_hashes.(i) v))
              lits_of.(v)
          in
          colors.(v) <- mix colors.(v) (combine sigs)
        done;
        let part', classes = ranks colors in
        if part' = !part || classes = nvars then continue_ := false;
        part := part'
      done;
      colors
    in
    let render assignment =
      let f t =
        match t with
        | Term.Var v ->
            Term.Var (Printf.sprintf "n%d" assignment.(Hashtbl.find id_of v))
        | Term.Const _ -> t
      in
      order (Clause.map_terms f c)
    in
    let completions = ref 0 in
    let fellback = ref false in
    let best = ref None in
    let consider rendered =
      incr completions;
      match !best with
      | None -> best := Some rendered
      | Some b -> if clause_compare rendered b < 0 then best := Some rendered
    in
    (* The color of an individualized variable: a function of its
       canonical index only, disjoint in practice from refinement
       hashes. *)
    let indiv_color i = mix 0x51ed270b i in
    let rec go colors assignment next =
      if next = nvars then consider (render assignment)
      else begin
        let colors = refine colors in
        let unassigned = ref [] in
        for v = nvars - 1 downto 0 do
          if assignment.(v) < 0 then unassigned := v :: !unassigned
        done;
        (* Fast path — the overwhelmingly common case: refinement already
           separates every remaining variable, so the color order is the
           canonical order and no further refinement rounds are needed. *)
        let by_color =
          List.sort
            (fun a b -> Int.compare colors.(a) colors.(b))
            !unassigned
        in
        let discrete =
          let rec distinct = function
            | a :: (b :: _ as rest) ->
                colors.(a) <> colors.(b) && distinct rest
            | _ -> true
          in
          distinct by_color
        in
        if discrete then begin
          let assignment = Array.copy assignment in
          List.iteri (fun k v -> assignment.(v) <- next + k) by_color;
          consider (render assignment)
        end
        else
          let target_color = colors.(List.hd by_color) in
          let cell =
            List.filter (fun v -> colors.(v) = target_color) by_color
          in
          match cell with
          | [] -> assert false
          | [ v ] ->
              colors.(v) <- indiv_color next;
              let assignment = Array.copy assignment in
              assignment.(v) <- next;
              go colors assignment (next + 1)
          | vs ->
              if !completions >= rename_completion_cap then begin
                (* Budget exhausted: finish deterministically by (color,
                   name). Name-dependent, so alpha-variants may diverge —
                   counted, never wrong (the result is still one fixed
                   representative of this clause). *)
                fellback := true;
                let remaining =
                  List.sort
                    (fun a b ->
                      match Int.compare colors.(a) colors.(b) with
                      | 0 -> String.compare var_names.(a) var_names.(b)
                      | c -> c)
                    !unassigned
                in
                let assignment = Array.copy assignment in
                List.iteri (fun k v -> assignment.(v) <- next + k) remaining;
                consider (render assignment)
              end
              else
                List.iter
                  (fun v ->
                    if !completions < rename_completion_cap then begin
                      let colors = Array.copy colors in
                      colors.(v) <- indiv_color next;
                      let assignment = Array.copy assignment in
                      assignment.(v) <- next;
                      go colors assignment (next + 1)
                    end
                    else
                      (* A branch cut mid-iteration is as name-dependent
                         as the explicit fallback: the explored prefix
                         follows name order. Count it so alpha-variant
                         tests know to skip. *)
                      fellback := true)
                  (List.sort
                     (fun a b ->
                       String.compare var_names.(a) var_names.(b))
                     vs)
      end
    in
    go (Array.make nvars 0) (Array.make nvars (-1)) 0;
    if count && !fellback then Obs.incr Stats.rename_fallbacks;
    match !best with Some r -> r | None -> order c
  end

(* ------------------------------------------------------------------ *)
(* The shared trivially-false form: the clause's head over a single
   unsatisfiable restriction literal, canonically renamed — every
   trivially-false clause with an isomorphic head shares one cover-cache
   entry (sound: they all cover nothing). *)

let falsum_body (c : Clause.t) =
  let used = StrSet.of_list (List.concat_map deep_vars (c.Clause.head :: c.Clause.body)) in
  let rec fresh i =
    let n = Printf.sprintf "_false%d" i in
    if StrSet.mem n used then fresh (i + 1) else n
  in
  let v = Term.var (fresh 0) in
  [ Literal.Neq (v, v) ]

let is_trivially_false (c : Clause.t) =
  let protected = protected_literals c in
  List.exists
    (function
      | Literal.Neq (a, b) as l ->
          Term.equal a b && not (is_protected protected l)
      | _ -> false)
    c.Clause.body

(* ------------------------------------------------------------------ *)
(* Fixpoint driver. Trivia, dedup and condensation run until no pass
   fires (each productive round strictly shrinks the body or a repair
   condition, so termination is immediate); renaming and ordering run
   once at the end — both are invariant under the simplification passes'
   outputs, and the whole pipeline is idempotent: a normalized clause
   has nothing left to drop and renames to itself. *)

let simplify_engine ~count (c : Clause.t) =
  let rewrites = ref [] in
  let note rws = rewrites := rws @ !rewrites in
  let rec loop c rounds =
    if rounds > Clause.body_size c + 4 then (c, false)
    else begin
      if count then Obs.incr Stats.rounds;
      let bound = generative_vars c in
      let protected = protected_literals c in
      let body, trws, falsum = trivia_pass ~bound ~protected c.Clause.body in
      note trws;
      if count then begin
        List.iter
          (function
            | Drop_tautology _ -> Obs.incr Stats.tautologies
            | Drop_cond_atom _ -> Obs.incr Stats.cond_atoms
            | Contradiction _ -> Obs.incr Stats.contradictions
            | Drop_duplicate _ | Condense _ -> ())
          trws
      end;
      match falsum with
      | Some _ -> (c, true)
      | None ->
          let body, drws = dedup_pass body in
          note drws;
          if count then Obs.add Stats.duplicates (List.length drws);
          let c' = { c with Clause.body = body } in
          let c', condensed =
            if Clause.body_size c' > condense_body_cap then begin
              if count then Obs.incr Stats.condense_capped;
              (c', false)
            end
            else
              match condense_step ~protected c' with
              | Some (c'', rw) ->
                  note [ rw ];
                  if count then Obs.incr Stats.condensed;
                  (c'', true)
              | None -> (c', false)
          in
          if condensed || trws <> [] || drws <> [] then loop c' (rounds + 1)
          else (c', false)
    end
  in
  let c', falsy = loop c 0 in
  (c', List.rev !rewrites, falsy)

let normalize c =
  Obs.incr Stats.clauses;
  let c', _rewrites, falsy =
    Obs.span "normalize.simplify" (fun () -> simplify_engine ~count:true c)
  in
  let c' =
    if falsy then Clause.make ~head:c'.Clause.head (falsum_body c') else c'
  in
  Obs.span "normalize.rename" (fun () -> rename_canonical ~count:true c')

(* What [normalize] would do, without doing it (and without touching the
   run counters): the lint layer turns these into DL4xx diagnostics, so
   lint and rewrite share one implementation and can never disagree. *)
let plan c =
  let _, rewrites, _ = simplify_engine ~count:false c in
  rewrites

(* Target-side preparation. A ground bottom clause's restriction
   literals are closure *data* (its Eq literals feed Clause_env, its Sim
   literals are match targets), not checks, so only exact duplicates —
   which add candidates without adding matches — are removed, in
   order-preserving fashion. *)
let dedup_target (c : Clause.t) =
  let body, _ = dedup_pass c.Clause.body in
  { c with Clause.body = body }
