(* A relation slot is either materialized or a pending loader thunk
   ([Storage.load ~lazy_load:true] registers these). The fast path —
   every lookup in a fully-loaded database — is the plain [Hashtbl.find]
   it always was: [pending] counts outstanding thunks, and only while it
   is non-zero does [find] take the lock to force. Forcing is
   serialized under [lock]; a lazily-loaded database is meant to be
   materialized (or fully forced) before multi-domain use. *)

type entry = Loaded of Relation.t | Pending of (unit -> Relation.t)

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  mutable pending : int;
  lock : Mutex.t;
}

let create () =
  {
    by_name = Hashtbl.create 16;
    order = [];
    pending = 0;
    lock = Mutex.create ();
  }

let register t name entry =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Database.add_relation: duplicate %s" name);
  Hashtbl.add t.by_name name entry;
  t.order <- name :: t.order

let add_relation t r = register t (Relation.name r) (Loaded r)

let add_lazy t name load =
  register t name (Pending load);
  t.pending <- t.pending + 1

let create_relation t schema =
  let r = Relation.create schema in
  add_relation t r;
  r

let force t name =
  Mutex.protect t.lock (fun () ->
      (* Re-check under the lock: another caller may have forced it. *)
      match Hashtbl.find_opt t.by_name name with
      | Some (Loaded r) -> r
      | Some (Pending load) ->
          let r = load () in
          if Relation.name r <> name then
            invalid_arg
              (Printf.sprintf "Database: lazy loader for %s produced %s" name
                 (Relation.name r));
          Hashtbl.replace t.by_name name (Loaded r);
          t.pending <- t.pending - 1;
          r
      | None -> raise Not_found)

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Loaded r) -> r
  | Some (Pending _) -> force t name
  | None -> raise Not_found

let find_opt t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Loaded r) -> Some r
  | Some (Pending _) -> Some (force t name)
  | None -> None

let mem t name = Hashtbl.mem t.by_name name

let is_loaded t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Loaded _) -> true
  | Some (Pending _) | None -> false

let pending_count t = t.pending
let relation_names t = List.rev t.order
let relations t = List.map (find t) (relation_names t)

let materialize t =
  List.iter (fun name -> ignore (find t name)) (relation_names t)

let total_tuples t =
  List.fold_left (fun acc r -> acc + Relation.cardinality r) 0 (relations t)

let copy t =
  let t' = create () in
  List.iter (fun r -> add_relation t' (Relation.copy r)) (relations t);
  t'

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>database: %d relations, %d tuples"
    (List.length t.order) (total_tuples t);
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  %a: %d tuples" Schema.pp (Relation.schema r)
        (Relation.cardinality r))
    (relations t);
  Format.fprintf fmt "@]"
