open Dlearn_relation
open Dlearn_logic
open Dlearn_query

let v = Term.var
let s = Term.str
let rel = Literal.rel

let movie_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db
      (Schema.string_attrs "movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "m1"; "Superbad (2007)"; "2007" ];
      Tuple.of_strings [ "m2"; "Zoolander (2001)"; "2001" ];
      Tuple.of_strings [ "m3"; "The Orphanage (2007)"; "2007" ];
    ];
  let genres =
    Database.create_relation db (Schema.string_attrs "genres" [ "id"; "genre" ])
  in
  Relation.insert_all genres
    [
      Tuple.of_strings [ "m1"; "comedy" ];
      Tuple.of_strings [ "m2"; "comedy" ];
      Tuple.of_strings [ "m3"; "drama" ];
    ];
  let ratings =
    Database.create_relation db
      (Schema.string_attrs "ratings" [ "title"; "rating" ])
  in
  Relation.insert_all ratings
    [
      Tuple.of_strings [ "Superbad [2007]"; "R" ];
      Tuple.of_strings [ "Zoolander [2001]"; "PG-13" ];
      Tuple.of_strings [ "The Orphanage [2007]"; "R" ];
    ];
  db

let oracle =
  Conjunctive.oracle_of_spec
    { Dlearn_constraints.Md.default_sim with Dlearn_constraints.Md.threshold = 0.7 }

let answers_of q = Conjunctive.answers (movie_db ()) oracle (Parser.clause_exn q)

let eval_tests =
  [
    Alcotest.test_case "single-atom projection" `Quick (fun () ->
        let rows = answers_of "q(x) <- movies(x, t, y)" in
        Alcotest.(check int) "3 ids" 3 (List.length rows));
    Alcotest.test_case "join on shared variable" `Quick (fun () ->
        let rows = answers_of "q(x) <- movies(x, t, y), genres(x, \"comedy\")" in
        Alcotest.(check int) "2 comedies" 2 (List.length rows));
    Alcotest.test_case "constants select" `Quick (fun () ->
        let rows = answers_of "q(t) <- movies(\"m3\", t, y)" in
        (match rows with
        | [ row ] ->
            Alcotest.(check string) "title" "(The Orphanage (2007))"
              (Tuple.to_string row)
        | _ -> Alcotest.fail "expected exactly one answer"));
    Alcotest.test_case "similarity join crosses formats" `Quick (fun () ->
        let rows =
          answers_of
            "q(x) <- movies(x, t, y), ratings(t2, \"R\"), t ~ t2"
        in
        Alcotest.(check int) "2 R-rated" 2 (List.length rows));
    Alcotest.test_case "equality literal filters" `Quick (fun () ->
        let rows = answers_of "q(x) <- movies(x, t, y), y = 2007" in
        Alcotest.(check int) "2 from 2007" 2 (List.length rows));
    Alcotest.test_case "inequality literal filters" `Quick (fun () ->
        let rows = answers_of "q(x) <- movies(x, t, y), y != 2007" in
        Alcotest.(check int) "1 not from 2007" 1 (List.length rows));
    Alcotest.test_case "one-sided equality propagates" `Quick (fun () ->
        let rows = answers_of "q(g) <- g = \"drama\", genres(x, g)" in
        Alcotest.(check int) "1 binding" 1 (List.length rows));
    Alcotest.test_case "entails binds the head to the example" `Quick (fun () ->
        let c =
          Parser.clause_exn
            "restricted(x) <- movies(x, t, y), ratings(t2, \"R\"), t ~ t2"
        in
        let db = movie_db () in
        Alcotest.(check bool) "m1 entailed" true
          (Conjunctive.entails db oracle c (Tuple.of_strings [ "m1" ]));
        Alcotest.(check bool) "m2 not entailed" false
          (Conjunctive.entails db oracle c (Tuple.of_strings [ "m2" ])));
    Alcotest.test_case "limit caps the answers" `Quick (fun () ->
        let rows =
          Conjunctive.answers ~limit:2 (movie_db ()) oracle
            (Parser.clause_exn "q(x) <- movies(x, t, y)")
        in
        Alcotest.(check int) "2 answers" 2 (List.length rows));
    Alcotest.test_case "unknown relation rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (answers_of "q(x) <- nothere(x)");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "repair literals rejected" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "q" [ v "x" ])
            [
              rel "movies" [ v "x"; v "t"; v "y" ];
              Literal.Repair
                {
                  origin = Literal.From_md "m";
                  group = 0;
                  cond = [];
                  subject = v "t";
                  replacement = v "r";
                  drops = [];
                };
            ]
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Conjunctive.answers (movie_db ()) oracle c);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "non-range-restricted sim yields nothing" `Quick
      (fun () ->
        let rows = answers_of "q(x) <- movies(x, t, y), t ~ z" in
        Alcotest.(check int) "no answers" 0 (List.length rows));
  ]

let parser_tests =
  [
    Alcotest.test_case "parses the full literal zoo" `Quick (fun () ->
        let c =
          Parser.clause_exn
            "h(x, \"k\") <- p(x, y), q(y, 3), x ~ y, y = \"a\", x != y"
        in
        Alcotest.(check int) "5 body literals" 5 (Clause.body_size c));
    Alcotest.test_case "fact with no body" `Quick (fun () ->
        let c = Parser.clause_exn "h(x)" in
        Alcotest.(check int) "empty body" 0 (Clause.body_size c));
    Alcotest.test_case "empty body marker" `Quick (fun () ->
        let c = Parser.clause_exn "h(x) <- true" in
        Alcotest.(check int) "empty body" 0 (Clause.body_size c));
    Alcotest.test_case ":- works like <-" `Quick (fun () ->
        Alcotest.(check bool) "equal" true
          (Clause.equal
             (Parser.clause_exn "h(x) :- p(x)")
             (Parser.clause_exn "h(x) <- p(x)")));
    Alcotest.test_case "numbers parse as numeric constants" `Quick (fun () ->
        let c = Parser.clause_exn "h(x) <- p(x, 42)" in
        match c.Clause.body with
        | [ Literal.Rel { args; _ } ] ->
            Alcotest.(check bool) "Int 42" true
              (Term.equal args.(1) (Term.Const (Value.Int 42)))
        | _ -> Alcotest.fail "unexpected body");
    Alcotest.test_case "string escapes" `Quick (fun () ->
        let c = Parser.clause_exn {|h(x) <- p(x, "say \"hi\"")|} in
        match c.Clause.body with
        | [ Literal.Rel { args; _ } ] ->
            Alcotest.(check bool) "escaped" true
              (Term.equal args.(1) (Term.Const (Value.String {|say "hi"|})))
        | _ -> Alcotest.fail "unexpected body");
    Alcotest.test_case "errors are reported, not raised" `Quick (fun () ->
        List.iter
          (fun input ->
            match Parser.clause input with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "expected a parse error for %S" input)
          [ ""; "h("; "h(x) <- "; "h(x) p(y)"; "h(x) <- p(x,)"; "h(x) <- x" ]);
    Alcotest.test_case "round-trips the printer" `Quick (fun () ->
        List.iter
          (fun input ->
            let c = Parser.clause_exn input in
            let reparsed = Parser.clause_exn (Clause.to_string c) in
            Alcotest.(check bool) ("round trip " ^ input) true
              (Clause.equal c reparsed))
          [
            "h(x) <- p(x, y), q(y, \"k\")";
            "h(x, y) <- p(x, z), z ~ y, x != z";
            "h(x) <- p(x, 7), q(x, -3)";
          ]);
  ]

(* Parse ∘ print round-trip on random repair-free clauses. *)
let qcheck_tests =
  let clause_gen =
    let open QCheck.Gen in
    let var = map (fun c -> Term.var (String.make 1 c)) (char_range 'x' 'z') in
    let const = map (fun c -> s (String.make 1 c)) (char_range 'a' 'e') in
    let term = oneof [ var; const ] in
    let lit =
      oneof
        [
          map2 (fun a b -> rel "p" [ a; b ]) term term;
          map (fun a -> rel "q" [ a ]) term;
          map2 (fun a b -> Literal.Sim (a, b)) term term;
          map2 (fun a b -> Literal.Eq (a, b)) term term;
          map2 (fun a b -> Literal.Neq (a, b)) term term;
        ]
    in
    let* body = list_size (0 -- 6) lit in
    let* harg = term in
    return (Clause.make ~head:(rel "h" [ harg ]) body)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parser round-trips the printer" ~count:300
         (QCheck.make ~print:Clause.to_string clause_gen) (fun c ->
           match Parser.clause (Clause.to_string c) with
           | Ok c' -> Clause.equal c c'
           | Error _ -> false));
  ]

(* Cross-check: on repair-free clauses, direct query evaluation agrees
   with the subsumption-based coverage of the learning engine. *)
let cross_check_tests =
  [
    Alcotest.test_case "query evaluation agrees with subsumption coverage"
      `Quick (fun () ->
        let open Dlearn_core in
        let db = movie_db () in
        let md =
          Dlearn_constraints.Md.make ~id:"t" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
        in
        let target = Schema.string_attrs "restricted" [ "id" ] in
        let config =
          {
            (Config.default ~target) with
            Config.constant_attrs = [ ("ratings", "rating"); ("genres", "genre") ];
            sim =
              {
                Dlearn_constraints.Md.default_sim with
                Dlearn_constraints.Md.threshold = 0.7;
              };
          }
        in
        let ctx = Context.create config db [ md ] [] in
        let clause =
          Parser.clause_exn
            "restricted(x) <- movies(x, t, y), ratings(t2, \"R\"), t ~ t2"
        in
        let prep = Coverage.prepare ctx clause in
        List.iter
          (fun id ->
            let e = Tuple.of_strings [ id ] in
            Alcotest.(check bool) ("agree on " ^ id)
              (Conjunctive.entails db oracle clause e)
              (Coverage.covers_positive ctx prep e))
          [ "m1"; "m2"; "m3" ]);
  ]


(* The ultimate semantic cross-check: Definition 3.4 coverage decided by
   the subsumption machinery must agree with literally materialising the
   stable instances and evaluating each repaired clause over each (the
   approach the paper argues is infeasible at scale — at toy scale it is
   the ground truth). *)
let materialized_tests =
  [
    Alcotest.test_case "subsumption coverage = materialise-and-query" `Quick
      (fun () ->
        let open Dlearn_core in
        let open Dlearn_constraints in
        let db = movie_db () in
        let md =
          Md.make ~id:"t" ~left:"movies" ~right:"ratings"
            ~compared:[ ("title", "title") ] ~unified:("title", "title") ()
        in
        let sim_spec = { Md.default_sim with Md.threshold = 0.7 } in
        let target = Schema.string_attrs "restricted" [ "id" ] in
        let config =
          {
            (Config.default ~target) with
            Config.constant_attrs = [ ("ratings", "rating"); ("genres", "genre") ];
            sim = sim_spec;
          }
        in
        let ctx = Context.create config db [ md ] [] in
        let clause =
          Parser.clause_exn
            "restricted(x) <- movies(x, t, y), ratings(t2, \"R\"), t ~ t2"
        in
        let prep = Coverage.prepare ctx clause in
        let instances = Stable_instance.stable_instances ~sim:sim_spec db [ md ] in
        Alcotest.(check bool) "at least one stable instance" true
          (instances <> []);
        (* Repaired clauses of a repair-free clause: itself; evaluate over
           every stable instance. Merged values are equal on both sides of
           the similarity literal, so the equality oracle suffices. *)
        let crs = Dlearn_parallel.Memo.force prep.Coverage.repairs in
        List.iter
          (fun id ->
            let e = Tuple.of_strings [ id ] in
            let materialized =
              List.for_all
                (fun cr ->
                  List.exists
                    (fun inst -> Conjunctive.entails inst oracle cr e)
                    instances)
                crs
            in
            Alcotest.(check bool)
              ("agree on " ^ id)
              materialized
              (Coverage.covers_positive ctx prep e))
          [ "m1"; "m2"; "m3" ]);
  ]


let aggregate_tests =
  [
    Alcotest.test_case "count by group" `Quick (fun () ->
        let rows =
          Aggregate.run (movie_db ()) oracle
            (Parser.clause_exn "q(g, x) <- genres(x, g)")
            ~group_by:[ 0 ] ~aggregate:Aggregate.Count
        in
        Alcotest.(check int) "two groups" 2 (List.length rows);
        let rendered =
          List.sort String.compare (List.map Tuple.to_string rows)
        in
        Alcotest.(check (list string)) "group counts"
          [ "(comedy, 2)"; "(drama, 1)" ] rendered);
    Alcotest.test_case "count distinct" `Quick (fun () ->
        let rows =
          Aggregate.run (movie_db ()) oracle
            (Parser.clause_exn "q(x, y) <- movies(x, t, y)")
            ~group_by:[] ~aggregate:(Aggregate.Count_distinct 1)
        in
        (match rows with
        | [ row ] ->
            Alcotest.(check string) "2 distinct years" "(2)"
              (Tuple.to_string row)
        | _ -> Alcotest.fail "expected one group"));
    Alcotest.test_case "min and max" `Quick (fun () ->
        let q = Parser.clause_exn "q(y) <- movies(x, t, y)" in
        let get f =
          match Aggregate.run (movie_db ()) oracle q ~group_by:[] ~aggregate:f with
          | [ row ] -> Tuple.to_string row
          | _ -> Alcotest.fail "expected one group"
        in
        Alcotest.(check string) "min year" "(2001)" (get (Aggregate.Min 0));
        Alcotest.(check string) "max year" "(2007)" (get (Aggregate.Max 0)));
    Alcotest.test_case "out-of-range position rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Aggregate.run (movie_db ()) oracle
                  (Parser.clause_exn "q(x) <- movies(x, t, y)")
                  ~group_by:[ 3 ] ~aggregate:Aggregate.Count);
             false
           with Invalid_argument _ -> true));
  ]


let sql_tests =
  [
    Alcotest.test_case "joins, constants and similarity render" `Quick
      (fun () ->
        let c =
          Parser.clause_exn
            "q(x) <- movies(x, t, y), ratings(t2, \"R\"), t ~ t2"
        in
        let sql = Sql.of_clause c in
        let has sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length sql && (String.sub sql i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "selects the head column" true
          (has "SELECT DISTINCT t0.c0");
        Alcotest.(check bool) "both atoms aliased" true
          (has "movies AS t0" && has "ratings AS t1");
        Alcotest.(check bool) "constant filter" true (has "t1.c1 = 'R'");
        Alcotest.(check bool) "similarity UDF" true
          (has "SIMILAR(t0.c1, t1.c0)"));
    Alcotest.test_case "shared variables become join equalities" `Quick
      (fun () ->
        let c = Parser.clause_exn "q(x) <- movies(x, t, y), genres(x, g)" in
        let sql = Sql.of_clause c in
        Alcotest.(check bool) "join condition" true
          (let sub = "t0.c0 = t1.c0" in
           let n = String.length sub in
           let rec go i =
             i + n <= String.length sql && (String.sub sql i n = sub || go (i + 1))
           in
           go 0));
    Alcotest.test_case "string constants are escaped" `Quick (fun () ->
        let c = Parser.clause_exn {|q(x) <- genres(x, "it's")|} in
        let sql = Sql.of_clause c in
        Alcotest.(check bool) "doubled quote" true
          (let sub = "'it''s'" in
           let n = String.length sub in
           let rec go i =
             i + n <= String.length sql && (String.sub sql i n = sub || go (i + 1))
           in
           go 0));
    Alcotest.test_case "repair literals are rejected" `Quick (fun () ->
        let c =
          Clause.make
            ~head:(rel "q" [ v "x" ])
            [
              rel "movies" [ v "x"; v "t"; v "y" ];
              Literal.Repair
                {
                  origin = Literal.From_md "m";
                  group = 0;
                  cond = [];
                  subject = v "t";
                  replacement = v "r";
                  drops = [];
                };
            ]
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sql.of_clause c);
             false
           with Invalid_argument _ -> true));
  ]

let () =
  Alcotest.run "query"
    [
      ("conjunctive", eval_tests);
      ("parser", parser_tests);
      ("cross_check", cross_check_tests);
      ("materialized", materialized_tests);
      ("aggregate", aggregate_tests);
      ("sql", sql_tests);
      ("properties", qcheck_tests);
    ]
