(** Work-stealing deque over a fixed integer range.

    A deque holds the chunk indexes [\[lo, hi)] it was created with and
    only shrinks: the owner takes from the high end with {!pop} (LIFO),
    thieves take from the low end with {!steal} (FIFO, lock-free CAS).
    Nothing is ever pushed after creation, which removes the circular
    buffer, growth, and ABA concerns of the general Chase–Lev deque while
    keeping its owner/thief protocol for the last-element race.

    Invariants:
    - every index in [\[lo, hi)] is handed out exactly once, across all
      {!pop} and {!steal} calls combined;
    - once {!is_empty} returns [true] the deque stays empty forever
      (emptiness is monotone), so a scanner that sees every deque empty
      in one clean pass may safely exit. *)

type t

type steal_result =
  | Stolen of int  (** Claimed this index. *)
  | Empty  (** Nothing left; permanently so. *)
  | Lost  (** CAS lost to a concurrent claimer — retry if still hungry. *)

val make : int -> int -> t
(** [make lo hi] is a deque holding [lo .. hi - 1]. [hi <= lo] makes an
    empty deque. *)

val pop : t -> int option
(** Owner-side LIFO removal. Must only be called from one thread at a
    time (the deque's owner); safe concurrently with any number of
    {!steal}s. *)

val steal : t -> steal_result
(** Thief-side FIFO removal; safe from any thread, including concurrently
    with {!pop} and other {!steal}s. *)

val is_empty : t -> bool
(** Snapshot emptiness test. [true] is stable (monotone); [false] may be
    stale by the time the caller acts on it. *)

val size : t -> int
(** Number of indexes not yet claimed (racy snapshot). *)
