let domain_to_string = function
  | Schema.Dint -> "int"
  | Schema.Dfloat -> "float"
  | Schema.Dstring -> "string"

let domain_of_string = function
  | "int" -> Schema.Dint
  | "float" -> Schema.Dfloat
  | "string" -> Schema.Dstring
  | other -> invalid_arg ("Storage: unknown domain " ^ other)

let manifest_path dir = Filename.concat dir "manifest.txt"
let csv_path dir name = Filename.concat dir (name ^ ".csv")

(* Recursive, race-tolerant mkdir: nested dataset directories must work,
   and two writers racing on the same directory must both succeed —
   [Sys.file_exists]-then-[mkdir] alone is a TOCTOU window where the
   loser crashes on EEXIST. Errors other than "already there" (e.g. a
   file occupying the path, permission denied) still raise. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Storage: %s exists and is not a directory" dir)

let write_manifest dir schemas =
  mkdir_p dir;
  let oc = open_out (manifest_path dir) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun schema ->
          let attrs =
            Array.to_list (Schema.attributes schema)
            |> List.map (fun (a : Schema.attribute) ->
                   Printf.sprintf "%s:%s" a.attr_name (domain_to_string a.domain))
          in
          Printf.fprintf oc "%s|%s\n" (Schema.name schema)
            (String.concat "," attrs))
        schemas)

let save db dir =
  write_manifest dir (List.map Relation.schema (Database.relations db));
  List.iter
    (fun r -> Csv.save r (csv_path dir (Relation.name r)))
    (Database.relations db)

let read_manifest dir =
  let ic = open_in (manifest_path dir) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.length line > 0 then begin
             match String.index_opt line '|' with
             | None -> invalid_arg ("Storage: malformed manifest line " ^ line)
             | Some i ->
                 let name = String.sub line 0 i in
                 let attrs =
                   String.sub line (i + 1) (String.length line - i - 1)
                   |> String.split_on_char ','
                   |> List.map (fun spec ->
                          match String.split_on_char ':' spec with
                          | [ attr_name; domain ] ->
                              {
                                Schema.attr_name;
                                domain = domain_of_string domain;
                              }
                          | _ ->
                              invalid_arg
                                ("Storage: malformed attribute " ^ spec))
                 in
                 entries := Schema.make name attrs :: !entries
           end
         done
       with End_of_file -> ());
      List.rev !entries)

let manifest dir = read_manifest dir

(* Re-type a parsed value according to the declared domain: strings that
   look numeric must stay strings when the domain says so. *)
let coerce domain v =
  match domain, v with
  | Schema.Dstring, Value.Null -> Value.Null
  | Schema.Dstring, other -> Value.String (Value.to_string other)
  | (Schema.Dint | Schema.Dfloat), other -> other

let retype schema tu =
  Tuple.make
    (List.init (Tuple.arity tu) (fun i ->
         coerce (Schema.domain schema i) (Tuple.get tu i)))

let scan ?delim dir name ~init ~f =
  let schema =
    match
      List.find_opt (fun s -> Schema.name s = name) (read_manifest dir)
    with
    | Some s -> s
    | None -> invalid_arg ("Storage.scan: no relation " ^ name ^ " in " ^ dir)
  in
  Csv.fold ?delim schema (csv_path dir name) ~init ~f:(fun acc tu ->
      f acc (retype schema tu))

let load_relation dir schema =
  let rel = Relation.create schema in
  Csv.iter schema (csv_path dir (Schema.name schema)) ~f:(fun tu ->
      ignore (Relation.insert rel (retype schema tu)));
  rel

let load ?(lazy_load = false) dir =
  let db = Database.create () in
  List.iter
    (fun schema ->
      if lazy_load then
        Database.add_lazy db (Schema.name schema) (fun () ->
            load_relation dir schema)
      else Database.add_relation db (load_relation dir schema))
    (read_manifest dir);
  db
