open Dlearn_relation
open Dlearn_constraints

let sv s = Value.String s

let movies_db () =
  let db = Database.create () in
  let movies =
    Database.create_relation db (Schema.string_attrs "movies" [ "id"; "title"; "year" ])
  in
  Relation.insert_all movies
    [
      Tuple.of_strings [ "10"; "Star Wars: Episode IV - 1977"; "1977" ];
      Tuple.of_strings [ "40"; "Star Wars: Episode III - 2005"; "2005" ];
    ];
  let hbm =
    Database.create_relation db (Schema.string_attrs "highBudgetMovies" [ "title" ])
  in
  Relation.insert_all hbm [ Tuple.of_strings [ "Star Wars" ] ];
  db

let md_title =
  Md.make ~id:"s1" ~left:"movies" ~right:"highBudgetMovies"
    ~compared:[ ("title", "title") ] ~unified:("title", "title") ()

let sim = Md.default_sim

let md_tests =
  [
    Alcotest.test_case "similar accepts heterogeneous titles" `Quick (fun () ->
        Alcotest.(check bool) "similar" true
          (Md.similar sim (sv "Star Wars") (sv "Star Wars: Episode IV - 1977")));
    Alcotest.test_case "similar rejects unrelated titles" `Quick (fun () ->
        Alcotest.(check bool) "dissimilar" false
          (Md.similar sim (sv "Superbad") (sv "The Deep Blue Sea")));
    Alcotest.test_case "nulls are never similar" `Quick (fun () ->
        Alcotest.(check bool) "null" false (Md.similar sim Value.Null Value.Null));
    Alcotest.test_case "merged values only match equal values" `Quick (fun () ->
        let m = Md.Merge.merge (sv "Star Wars") (sv "Star Wars IV") in
        Alcotest.(check bool) "merged vs similar base" false
          (Md.similar sim m (sv "Star Wars"));
        Alcotest.(check bool) "merged vs itself" true (Md.similar sim m m));
    Alcotest.test_case "merge is commutative and idempotent" `Quick (fun () ->
        let a = sv "x" and b = sv "y" in
        Alcotest.(check bool) "commutative" true
          (Value.equal (Md.Merge.merge a b) (Md.Merge.merge b a));
        Alcotest.(check bool) "idempotent" true
          (Value.equal (Md.Merge.merge a a) (Md.Merge.merge a (Md.Merge.merge a a))));
    Alcotest.test_case "merge flattens nested merges" `Quick (fun () ->
        let a = sv "a" and b = sv "b" and c = sv "c" in
        let left = Md.Merge.merge (Md.Merge.merge a b) c in
        let right = Md.Merge.merge a (Md.Merge.merge b c) in
        Alcotest.(check bool) "associative" true (Value.equal left right);
        Alcotest.(check (list string)) "components" [ "a"; "b"; "c" ]
          (Md.Merge.components left));
    Alcotest.test_case "empty compared list rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Md.make ~id:"m" ~left:"a" ~right:"b" ~compared:[]
                  ~unified:("x", "x") ());
             false
           with Invalid_argument _ -> true));
  ]

let mov2locale () =
  let r =
    Relation.create (Schema.string_attrs "mov2locale" [ "title"; "language"; "country" ])
  in
  Relation.insert_all r
    [
      Tuple.of_strings [ "Bait"; "English"; "USA" ];
      Tuple.of_strings [ "Bait"; "English"; "Ireland" ];
      Tuple.of_strings [ "Roma"; "Spanish"; "Mexico" ];
      Tuple.of_strings [ "Roma"; "Spanish"; "Mexico" ];
    ];
  r

(* The paper's phi1: (title, language -> country, (-, English || -)). *)
let phi1 =
  Cfd.make ~id:"phi1" ~relation:"mov2locale"
    ~lhs:[ ("title", Cfd.Wildcard); ("language", Cfd.Const (sv "English")) ]
    ~rhs:("country", Cfd.Wildcard)

let cfd_tests =
  [
    Alcotest.test_case "pair_violates on the paper's example" `Quick (fun () ->
        let r = mov2locale () in
        let schema = Relation.schema r in
        Alcotest.(check bool) "bait pair violates" true
          (Cfd.pair_violates phi1 schema (Relation.get r 0) (Relation.get r 1));
        Alcotest.(check bool) "roma pair satisfies (language not English)" false
          (Cfd.pair_violates phi1 schema (Relation.get r 2) (Relation.get r 3)));
    Alcotest.test_case "rhs attribute cannot appear in lhs" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Cfd.make ~id:"bad" ~relation:"r"
                  ~lhs:[ ("a", Cfd.Wildcard) ]
                  ~rhs:("a", Cfd.Wildcard));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "plain FD constructor" `Quick (fun () ->
        let f = Cfd.fd ~id:"f" ~relation:"r" [ "a"; "b" ] "c" in
        Alcotest.(check int) "two lhs attrs" 2 (List.length f.Cfd.lhs));
    Alcotest.test_case "matches implements the paper's asymmetric predicate"
      `Quick (fun () ->
        Alcotest.(check bool) "value vs wildcard" true
          (Cfd.matches Cfd.Wildcard (sv "anything"));
        Alcotest.(check bool) "value vs equal const" true
          (Cfd.matches (Cfd.Const (sv "x")) (sv "x"));
        Alcotest.(check bool) "value vs different const" false
          (Cfd.matches (Cfd.Const (sv "x")) (sv "y")));
  ]

let violation_tests =
  [
    Alcotest.test_case "find reports the violating pair" `Quick (fun () ->
        let r = mov2locale () in
        Alcotest.(check (list (pair int int))) "one pair" [ (0, 1) ]
          (Violation.find phi1 r));
    Alcotest.test_case "single-tuple violation of constant rhs" `Quick (fun () ->
        let r = Relation.create (Schema.string_attrs "r" [ "a"; "b" ]) in
        ignore (Relation.insert r (Tuple.of_strings [ "k"; "wrong" ]));
        let cfd =
          Cfd.make ~id:"c" ~relation:"r"
            ~lhs:[ ("a", Cfd.Const (sv "k")) ]
            ~rhs:("b", Cfd.Const (sv "right"))
        in
        Alcotest.(check (list (pair int int))) "self pair" [ (0, 0) ]
          (Violation.find cfd r));
    Alcotest.test_case "wrong relation rejected" `Quick (fun () ->
        let r = Relation.create (Schema.string_attrs "other" [ "a"; "b"; "c" ]) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Violation.find phi1 r);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "satisfies after manual fix" `Quick (fun () ->
        let r = mov2locale () in
        let fixed =
          Relation.map_tuples
            (fun t ->
              if Value.equal (Tuple.get t 2) (sv "Ireland") then
                Tuple.set t 2 (sv "USA")
              else t)
            r
        in
        let db = Database.create () in
        Database.add_relation db fixed;
        Alcotest.(check bool) "satisfied" true (Violation.satisfies [ phi1 ] db));
  ]

let consistency_tests =
  [
    Alcotest.test_case "conflicting constant rhs on wildcard lhs is inconsistent"
      `Quick (fun () ->
        (* (A -> B, - || b1) and (A -> B, - || b2): every tuple would need
           B = b1 and B = b2 simultaneously. *)
        let c1 =
          Cfd.make ~id:"c1" ~relation:"R"
            ~lhs:[ ("A", Cfd.Wildcard) ]
            ~rhs:("B", Cfd.Const (sv "b1"))
        in
        let c2 =
          Cfd.make ~id:"c2" ~relation:"R"
            ~lhs:[ ("A", Cfd.Wildcard) ]
            ~rhs:("B", Cfd.Const (sv "b2"))
        in
        Alcotest.(check bool) "inconsistent" false (Consistency.consistent [ c1; c2 ]));
    Alcotest.test_case
      "paper's prose example is satisfiable under standard semantics" `Quick
      (fun () ->
        (* §2.3 calls (A -> B, a1 || b1), (B -> A, b1 || a2) unsatisfiable,
           but a tuple matching neither pattern (e.g. A = a2, B = b2)
           satisfies both vacuously under the standard CFD semantics the
           same section defines; the single-tuple criterion of Bohannon et
           al. agrees. We follow the standard semantics. *)
        let c1 =
          Cfd.make ~id:"c1" ~relation:"R"
            ~lhs:[ ("A", Cfd.Const (sv "a1")) ]
            ~rhs:("B", Cfd.Const (sv "b1"))
        in
        let c2 =
          Cfd.make ~id:"c2" ~relation:"R"
            ~lhs:[ ("B", Cfd.Const (sv "b1")) ]
            ~rhs:("A", Cfd.Const (sv "a2"))
        in
        Alcotest.(check bool) "consistent" true (Consistency.consistent [ c1; c2 ]));
    Alcotest.test_case "plain FDs are consistent" `Quick (fun () ->
        let f1 = Cfd.fd ~id:"f1" ~relation:"R" [ "A" ] "B" in
        let f2 = Cfd.fd ~id:"f2" ~relation:"R" [ "B" ] "C" in
        Alcotest.(check bool) "consistent" true (Consistency.consistent [ f1; f2 ]));
    Alcotest.test_case "constant rhs alone is consistent" `Quick (fun () ->
        let c =
          Cfd.make ~id:"c" ~relation:"R"
            ~lhs:[ ("A", Cfd.Const (sv "a1")) ]
            ~rhs:("B", Cfd.Const (sv "b1"))
        in
        Alcotest.(check bool) "consistent" true (Consistency.consistent [ c ]));
    Alcotest.test_case "CFDs over different relations never clash" `Quick
      (fun () ->
        let c1 =
          Cfd.make ~id:"c1" ~relation:"R"
            ~lhs:[ ("A", Cfd.Const (sv "a1")) ]
            ~rhs:("B", Cfd.Const (sv "b1"))
        in
        let c2 =
          Cfd.make ~id:"c2" ~relation:"S"
            ~lhs:[ ("B", Cfd.Const (sv "b1")) ]
            ~rhs:("A", Cfd.Const (sv "a2"))
        in
        Alcotest.(check bool) "consistent" true (Consistency.consistent [ c1; c2 ]));
    Alcotest.test_case "empty set is consistent" `Quick (fun () ->
        Alcotest.(check bool) "consistent" true (Consistency.consistent []));
  ]

let stable_tests =
  [
    Alcotest.test_case "example 2.3: two stable instances" `Quick (fun () ->
        let db = movies_db () in
        let instances = Stable_instance.stable_instances ~sim db [ md_title ] in
        Alcotest.(check int) "two instances" 2 (List.length instances);
        List.iter
          (fun i ->
            Alcotest.(check bool) "each is stable" true
              (Stable_instance.is_stable ~sim i [ md_title ]))
          instances);
    Alcotest.test_case "enforcement merges both sides" `Quick (fun () ->
        let db = movies_db () in
        match Stable_instance.unresolved_matches ~sim db [ md_title ] with
        | [] -> Alcotest.fail "expected at least one site"
        | site :: _ ->
            let db' = Stable_instance.enforce db site in
            let movies = Database.find db' "movies" in
            let hbm = Database.find db' "highBudgetMovies" in
            let merged_in_movies =
              Relation.fold
                (fun _ t acc -> acc || Md.Merge.is_merged (Tuple.get t 1))
                movies false
            in
            let merged_in_hbm =
              Relation.fold
                (fun _ t acc -> acc || Md.Merge.is_merged (Tuple.get t 0))
                hbm false
            in
            Alcotest.(check bool) "movies side merged" true merged_in_movies;
            Alcotest.(check bool) "hbm side merged" true merged_in_hbm);
    Alcotest.test_case "already-stable database has one instance: itself" `Quick
      (fun () ->
        let db = Database.create () in
        let movies =
          Database.create_relation db (Schema.string_attrs "movies" [ "id"; "title"; "year" ])
        in
        ignore (Relation.insert movies (Tuple.of_strings [ "1"; "Alien"; "1979" ]));
        let hbm =
          Database.create_relation db (Schema.string_attrs "highBudgetMovies" [ "title" ])
        in
        ignore (Relation.insert hbm (Tuple.of_strings [ "Alien" ]));
        Alcotest.(check bool) "stable" true
          (Stable_instance.is_stable ~sim db [ md_title ]);
        Alcotest.(check int) "one instance" 1
          (List.length (Stable_instance.stable_instances ~sim db [ md_title ])));
    Alcotest.test_case "original database untouched by enforcement" `Quick
      (fun () ->
        let db = movies_db () in
        (match Stable_instance.unresolved_matches ~sim db [ md_title ] with
        | site :: _ -> ignore (Stable_instance.enforce db site)
        | [] -> Alcotest.fail "expected a site");
        let hbm = Database.find db "highBudgetMovies" in
        Alcotest.(check bool) "still original title" true
          (Relation.contains hbm (Tuple.of_strings [ "Star Wars" ])));
  ]

let repair_tests =
  [
    Alcotest.test_case "repairing removes all violations" `Quick (fun () ->
        let r = mov2locale () in
        let r' = Minimal_repair.repair_relation [ phi1 ] r in
        Alcotest.(check (list (pair int int))) "clean" [] (Violation.find phi1 r'));
    Alcotest.test_case "repair cost is minimal for the 2-1 split" `Quick
      (fun () ->
        let r =
          Relation.create (Schema.string_attrs "mov2locale" [ "title"; "language"; "country" ])
        in
        Relation.insert_all r
          [
            Tuple.of_strings [ "Bait"; "English"; "USA" ];
            Tuple.of_strings [ "Bait"; "English"; "USA" ];
            Tuple.of_strings [ "Bait"; "English"; "Ireland" ];
          ];
        let r' = Minimal_repair.repair_relation [ phi1 ] r in
        (* Majority value USA wins: exactly one modification. *)
        Alcotest.(check int) "one change" 1 (Minimal_repair.modifications r r');
        Alcotest.(check int) "no violations" 0 (List.length (Violation.find phi1 r')));
    Alcotest.test_case "constant rhs pattern forces the constant" `Quick
      (fun () ->
        let cfd =
          Cfd.make ~id:"c" ~relation:"r"
            ~lhs:[ ("a", Cfd.Const (sv "k")) ]
            ~rhs:("b", Cfd.Const (sv "right"))
        in
        let r = Relation.create (Schema.string_attrs "r" [ "a"; "b" ]) in
        Relation.insert_all r
          [ Tuple.of_strings [ "k"; "wrong" ]; Tuple.of_strings [ "k"; "right" ] ];
        let r' = Minimal_repair.repair_relation [ cfd ] r in
        Relation.iter
          (fun _ t ->
            Alcotest.(check bool) "forced to constant" true
              (Value.equal (Tuple.get t 1) (sv "right")))
          r');
    Alcotest.test_case "clean relation is returned unchanged" `Quick (fun () ->
        let r = mov2locale () in
        let clean =
          Relation.filter (fun t -> not (Value.equal (Tuple.get t 2) (sv "Ireland"))) r
        in
        let clean' = Minimal_repair.repair_relation [ phi1 ] clean in
        Alcotest.(check int) "no modifications" 0
          (Minimal_repair.modifications clean clean'));
    Alcotest.test_case "database-level repair covers every relation" `Quick
      (fun () ->
        let db = Database.create () in
        Database.add_relation db (mov2locale ());
        let db' = Minimal_repair.repair [ phi1 ] db in
        Alcotest.(check bool) "satisfied" true (Violation.satisfies [ phi1 ] db');
        Alcotest.(check int) "original still dirty" 1
          (Violation.count [ phi1 ] db));
  ]

let qcheck_tests =
  let word =
    QCheck.make
      ~print:(fun s -> s)
      QCheck.Gen.(string_size ~gen:(char_range 'a' 'd') (1 -- 6))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is commutative" ~count:200
         (QCheck.pair word word) (fun (a, b) ->
           Value.equal (Md.Merge.merge (sv a) (sv b)) (Md.Merge.merge (sv b) (sv a))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is associative" ~count:200
         (QCheck.triple word word word) (fun (a, b, c) ->
           Value.equal
             (Md.Merge.merge (Md.Merge.merge (sv a) (sv b)) (sv c))
             (Md.Merge.merge (sv a) (Md.Merge.merge (sv b) (sv c)))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merged values are recognisable" ~count:200
         (QCheck.pair word word) (fun (a, b) ->
           Md.Merge.is_merged (Md.Merge.merge (sv a) (sv b))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"repair always eliminates violations of one CFD"
         ~count:100
         (QCheck.list_of_size (QCheck.Gen.int_range 0 12) (QCheck.pair word word))
         (fun rows ->
           let r = Relation.create (Schema.string_attrs "r" [ "a"; "b" ]) in
           List.iter
             (fun (a, b) -> ignore (Relation.insert r (Tuple.of_strings [ a; b ])))
             rows;
           let cfd = Cfd.fd ~id:"f" ~relation:"r" [ "a" ] "b" in
           let r' = Minimal_repair.repair_relation [ cfd ] r in
           Violation.find cfd r' = []));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"stable instances are stable" ~count:40
         (QCheck.list_of_size (QCheck.Gen.int_range 1 4) word) (fun titles ->
           let db = Database.create () in
           let movies =
             Database.create_relation db (Schema.string_attrs "movies" [ "id"; "title"; "year" ])
           in
           List.iteri
             (fun i t ->
               ignore
                 (Relation.insert movies
                    (Tuple.of_strings [ string_of_int i; t ^ " (2000)"; "2000" ])))
             titles;
           let hbm =
             Database.create_relation db (Schema.string_attrs "highBudgetMovies" [ "title" ])
           in
           List.iter
             (fun t -> ignore (Relation.insert hbm (Tuple.of_strings [ t ])))
             titles;
           Stable_instance.stable_instances ~sim db [ md_title ]
           |> List.for_all (fun i -> Stable_instance.is_stable ~sim i [ md_title ])));
  ]

let () =
  Alcotest.run "constraints"
    [
      ("md", md_tests);
      ("cfd", cfd_tests);
      ("violation", violation_tests);
      ("consistency", consistency_tests);
      ("stable_instance", stable_tests);
      ("minimal_repair", repair_tests);
      ("properties", qcheck_tests);
    ]
