(** The DBLP + Google Scholar workload (§6.1.1).

    Bibliographic records: Scholar entries carry noisy titles, abbreviated
    venues and author names, and {e no} publication year; DBLP carries the
    clean year. The target [gsPaperYear(gsId, year)] augments Scholar with
    the year as indicated by DBLP — the paper's binary-arity target. Two
    MDs match titles and venues across sources. *)

(** [generate ?n ?seed ()] builds the workload over [n] papers (default
    160); there is one positive per paper and one negative with a wrong
    year. *)
val generate : ?n:int -> ?seed:int -> unit -> Workload.t
